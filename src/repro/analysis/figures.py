"""Figure-series assembly and plain-text rendering.

The original paper ships Jupyter notebooks that turn per-evaluation CSV files
into Figures 3, 4 and 5.  This module is the equivalent for the reproduction:
it turns :class:`~repro.analysis.campaign.CampaignResult` objects into the
exact series each figure plots and renders them as plain-text tables (the
benchmark harness prints these, and they are easy to diff against
EXPERIMENTS.md).

The campaign mappings can come from live runs, CSV directories
(:func:`~repro.analysis.csvio.load_campaign`) or — the cold-start fast path —
a :class:`~repro.analysis.store.CampaignStore` over journaled campaigns
(:func:`fig3_table_from_store`), in which case every series is computed
straight off memory-mapped columns.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.campaign import AggregatedMetrics, CampaignResult

__all__ = [
    "format_table",
    "fig3_series",
    "fig3_table",
    "fig3_table_from_store",
    "fig4_rows",
    "fig4_table",
    "fig5_rows",
    "fig5_table",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a list of rows as a fixed-width text table."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, AggregatedMetrics):
        return f"{value.mean:.1f} [{value.min:.1f}, {value.max:.1f}]"
    if isinstance(value, float):
        return "nan" if not np.isfinite(value) else f"{value:.2f}"
    return str(value)


# --------------------------------------------------------------------- Fig. 3
def fig3_series(
    chain: Mapping[str, Mapping[str, CampaignResult]],
    num_points: int = 60,
) -> Dict[str, Dict[str, Dict[str, np.ndarray]]]:
    """Incumbent-trajectory series for every setup (Fig. 3 a-e).

    Returns ``setup → {"no_tl"/"tl" → {"time", "mean", "min", "max"}}``.
    """
    series: Dict[str, Dict[str, Dict[str, np.ndarray]]] = {}
    for setup, entry in chain.items():
        series[setup] = {
            variant: campaign.trajectory(num_points=num_points)
            for variant, campaign in entry.items()
        }
    return series


def fig3_table(
    chain: Mapping[str, Mapping[str, CampaignResult]],
    sample_times: Sequence[float] = (300.0, 900.0, 1800.0, 3600.0),
) -> str:
    """Text table of the best-known run time at a few search times (Fig. 3).

    Each repetition's incumbent is resolved at every sample time with one
    vectorised :meth:`~repro.core.history.SearchHistory.incumbent_at` call
    (times clipped to the campaign budget) instead of one
    ``best_runtime_at`` scan per (repetition, time) pair.
    """
    headers = ["setup", "variant"] + [f"best@{int(t)}s" for t in sample_times]
    rows: List[List[object]] = []
    for setup, entry in chain.items():
        for variant, campaign in entry.items():
            per_rep = campaign.incumbent_at(sample_times)
            row: List[object] = [setup, variant]
            row.extend(
                AggregatedMetrics.from_values(per_rep[:, j])
                for j in range(len(sample_times))
            )
            rows.append(row)
    return format_table(headers, rows)


def fig3_table_from_store(
    store,
    sample_times: Sequence[float] = (300.0, 900.0, 1800.0, 3600.0),
) -> str:
    """The Fig. 3 table over a whole :class:`~repro.analysis.store.CampaignStore`.

    Groups the stored campaigns by their journal meta's ``setup``/``label``
    fields and renders :func:`fig3_table` — all incumbent resolution happens
    on the journals' memory-mapped metadata columns, so this is the
    cold-start analysis entry point over thousands of stored campaigns.
    """
    return fig3_table(store.grouped(), sample_times=sample_times)


# --------------------------------------------------------------------- Fig. 4
def fig4_rows(
    campaigns: Mapping[str, Mapping[str, CampaignResult]],
    random_label: str = "RAND",
) -> List[Dict[str, object]]:
    """Rows of the Fig. 4 bar charts.

    ``campaigns`` maps ``setup → {method_label → CampaignResult}``.  Each
    returned row carries the five per-method metrics for one (setup, method).
    """
    rows: List[Dict[str, object]] = []
    for setup, methods in campaigns.items():
        random_campaign = methods.get(random_label)
        for label, campaign in methods.items():
            row: Dict[str, object] = {
                "setup": setup,
                "method": label,
                "best": campaign.best(),
                "mean_best": campaign.mean_best(),
                "evaluations": campaign.evaluations(),
                "utilization": campaign.utilization(),
            }
            if random_campaign is not None and label != random_label:
                row["speedup"] = campaign.speedup_over(random_campaign)
            else:
                row["speedup"] = AggregatedMetrics(float("nan"), float("nan"), float("nan"))
            rows.append(row)
    return rows


def fig4_table(campaigns: Mapping[str, Mapping[str, CampaignResult]]) -> str:
    """Text rendering of the Fig. 4 metrics."""
    rows = fig4_rows(campaigns)
    headers = ["setup", "method", "best (s)", "mean best (s)", "#evals", "utilization", "speedup"]
    table_rows = [
        [
            r["setup"],
            r["method"],
            r["best"],
            r["mean_best"],
            r["evaluations"],
            r["utilization"],
            r["speedup"],
        ]
        for r in rows
    ]
    return format_table(headers, table_rows)


# --------------------------------------------------------------------- Fig. 5
def fig5_rows(
    campaigns: Mapping[str, Mapping[str, CampaignResult]],
) -> List[Dict[str, object]]:
    """Rows of the Fig. 5 bar charts (best, mean best, number of evaluations)."""
    rows: List[Dict[str, object]] = []
    for setup, methods in campaigns.items():
        for label, campaign in methods.items():
            rows.append(
                {
                    "setup": setup,
                    "method": label,
                    "best": campaign.best(),
                    "mean_best": campaign.mean_best(),
                    "evaluations": campaign.evaluations(),
                }
            )
    return rows


def fig5_table(campaigns: Mapping[str, Mapping[str, CampaignResult]]) -> str:
    """Text rendering of the Fig. 5 metrics."""
    rows = fig5_rows(campaigns)
    headers = ["setup", "method", "best (s)", "mean best (s)", "#evals"]
    table_rows = [
        [r["setup"], r["method"], r["best"], r["mean_best"], r["evaluations"]] for r in rows
    ]
    return format_table(headers, table_rows)
