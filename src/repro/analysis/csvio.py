"""Campaign-level persistence: CSV interchange and the journal fast path.

The paper publishes its results as a collection of CSV files — one per
one-hour experiment, 115 files in total — plus scripts that aggregate them
into the figures.  This module reproduces that workflow for the reproduction's
campaigns: every repetition of a campaign is written to its own CSV file (the
same one-row-per-evaluation layout as
:meth:`repro.core.history.SearchHistory.to_csv`) together with a small JSON
manifest describing the campaign, and the whole directory can be loaded back
for analysis without re-running anything.

Two storage formats share the same load entry points:

* **CSV** (``format="csv"``, the default and the interchange escape hatch) —
  loading is served by a **parsed-history cache** keyed by the file's path,
  modification time and size: the typed columnar parse
  (:meth:`~repro.core.history.SearchHistory.from_csv`) runs once per file
  even when several analysis entry points (:func:`load_campaign`,
  :func:`load_histories`, repeated figure builds) read the same CSV, and
  every caller receives its own independent
  :meth:`~repro.core.history.SearchHistory.copy` of the cached columns.  A
  rewritten file (new mtime/size) re-parses; :func:`clear_history_cache`
  drops the cache explicitly.  The cache is bounded and truly
  least-recently-*used*: every hit refreshes its entry, so a bulk sweep that
  revisits a working set larger than the cap evicts the files it is done
  with, not the ones it is about to read again
  (:func:`set_history_cache_limit` adjusts the cap).
* **journal** (``format="journal"``) — one
  :mod:`repro.core.journal` sidecar directory per repetition.  Loading
  memory-maps the binary columns at their checkpoint watermark
  (:class:`~repro.core.journal.JournalReader`) instead of parsing text: a
  cold process serves ``fig3_table``/metric sweeps straight off disk pages,
  which is what makes analysis over thousands of stored campaigns cheap
  (see :class:`~repro.analysis.store.CampaignStore`).

:func:`load_campaign` and :func:`load_histories` auto-detect the format:
a directory that *is* a campaign journal, a manifest whose entries name
journal subdirectories, and a manifest-less directory of journal
subdirectories all take the memory-mapped path; everything else parses CSV.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.history import SearchHistory
from repro.core.journal import CampaignJournal, open_journal_reader
from repro.core.objective import Objective
from repro.core.space import SearchSpace
from repro.analysis.campaign import CampaignResult, result_from_history

__all__ = [
    "save_campaign",
    "load_campaign",
    "load_histories",
    "clear_history_cache",
    "set_history_cache_limit",
]

MANIFEST_NAME = "campaign.json"

#: Parsed-history cache: (resolved path, mtime_ns, size) → [(space, objective,
#: parsed history), ...], in least-recently-used order (oldest first).  The
#: short value list (almost always length 1) guards against the same file
#: being parsed against different spaces.
_HISTORY_CACHE: "OrderedDict[Tuple[str, int, int], List[Tuple[SearchSpace, Objective, SearchHistory]]]" = OrderedDict()

#: Cache bound: beyond this many distinct files the least-recently-used
#: entries are evicted, so bulk sweeps over hundreds of campaign directories
#: still reuse parses within a directory pass without retaining every history
#: ever loaded for the life of the process.
_HISTORY_CACHE_MAX_FILES = 256

#: Guards every mutation of ``_HISTORY_CACHE``.  Re-entrant because eviction
#: runs inside ``_load_history_cached`` which already holds it.  Without it,
#: concurrent loads (parallel shard stepping, threaded analysis sweeps) can
#: corrupt the ``OrderedDict`` mid-reorder.
_HISTORY_CACHE_LOCK = threading.RLock()


def clear_history_cache() -> None:
    """Drop every cached parsed history (tests, or bulk directory rewrites)."""
    with _HISTORY_CACHE_LOCK:
        _HISTORY_CACHE.clear()


def set_history_cache_limit(max_files: int) -> int:
    """Set the parsed-history cache bound; returns the previous bound.

    Shrinking evicts least-recently-used entries immediately; ``0`` disables
    caching (every load re-parses).
    """
    global _HISTORY_CACHE_MAX_FILES
    if max_files < 0:
        raise ValueError("max_files must be >= 0")
    with _HISTORY_CACHE_LOCK:
        previous = _HISTORY_CACHE_MAX_FILES
        _HISTORY_CACHE_MAX_FILES = int(max_files)
        _evict_history_cache()
    return previous


def _evict_history_cache() -> None:
    with _HISTORY_CACHE_LOCK:
        while len(_HISTORY_CACHE) > _HISTORY_CACHE_MAX_FILES:
            _HISTORY_CACHE.popitem(last=False)


def _load_history_cached(
    path: Path, space: SearchSpace, objective: Optional[Objective] = None
) -> SearchHistory:
    """Load one history CSV through the parsed-column cache (thread-safe).

    Returns an independent copy of the cached parse, so callers can extend
    the history without corrupting later loads.  Hits move the entry to the
    most-recently-used end, so eviction order follows *use*, not insertion.
    The whole lookup/parse/insert is one critical section: parsing outside
    the lock would let two threads parse the same file concurrently — the
    exact work the cache exists to save.
    """
    stat = path.stat()
    resolved = str(path.resolve())
    key = (resolved, stat.st_mtime_ns, stat.st_size)
    wanted = objective or Objective()
    with _HISTORY_CACHE_LOCK:
        entries = _HISTORY_CACHE.get(key)
        if entries is None:
            # A rewritten file invalidates its old entry; drop it so the cache
            # does not accumulate one stale parse per overwrite.
            for stale in [k for k in _HISTORY_CACHE if k[0] == resolved]:
                del _HISTORY_CACHE[stale]
            entries = _HISTORY_CACHE[key] = []
        else:
            _HISTORY_CACHE.move_to_end(key)
        for cached_space, cached_objective, history in entries:
            if cached_space == space and cached_objective == wanted:
                return history.copy()
        history = SearchHistory.from_csv(path, space, objective=objective)
        entries.append((space, wanted, history))
        _evict_history_cache()
        return history.copy()


def save_campaign(
    campaign: CampaignResult,
    directory: Union[str, Path],
    format: str = "csv",
) -> Path:
    """Write a campaign to ``directory`` (one file/subdir per repetition).

    ``format="csv"`` (default) writes one CSV file per repetition — the
    paper's interchange layout.  ``format="journal"`` writes one binary
    campaign-journal sidecar directory per repetition instead, which
    :func:`load_campaign`/:func:`load_histories` serve back through the
    zero-copy memory-mapped read path; the CSVs remain the bit-identical
    escape hatch (both formats round-trip the same histories).  A manifest
    (``campaign.json``) describing the campaign is written either way.

    Returns the directory path.  Existing files with the same names are
    overwritten; other files in the directory are left untouched.
    """
    if format not in ("csv", "journal"):
        raise ValueError(f"unknown campaign format {format!r} ('csv' or 'journal')")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {
        "label": campaign.label,
        "setup": campaign.setup,
        "max_time": campaign.max_time,
        "num_workers": campaign.num_workers,
        "repetitions": len(campaign.results),
        "format": format,
        "files": [],
    }
    safe_label = campaign.label.replace("/", "_")
    for index, result in enumerate(campaign.results):
        entry = {
            "best_runtime": result.best_runtime,
            "num_evaluations": result.num_evaluations,
            "worker_utilization": result.worker_utilization,
        }
        if format == "journal":
            name = f"{safe_label}-rep{index:02d}"
            _write_history_journal(
                directory / name,
                result.history,
                result.busy_intervals,
                {
                    "label": campaign.label,
                    "setup": campaign.setup,
                    "max_time": campaign.max_time,
                    "num_workers": campaign.num_workers,
                    "worker_utilization": result.worker_utilization,
                },
            )
            entry["journal"] = name
        else:
            name = f"{safe_label}-rep{index:02d}.csv"
            result.history.to_csv(directory / name)
            entry["file"] = name
        manifest["files"].append(entry)
    (directory / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
    return directory


def _write_history_journal(
    directory: Path,
    history: SearchHistory,
    intervals,
    meta: Dict,
) -> None:
    """Export one finished history as a campaign-journal sidecar directory."""
    journal = CampaignJournal.create(directory, history.space, fsync=False)
    try:
        journal.write_meta(dict(meta))
        journal.append_rows(history)
        journal.append_intervals([(float(s), float(e)) for s, e in intervals])
        journal.checkpoint({"finished": True})
    finally:
        journal.close()


def _journal_repetitions(directory: Path) -> List[Path]:
    """Journal subdirectories of a manifest-less campaign directory, sorted."""
    if not directory.is_dir():
        return []
    return sorted(
        child
        for child in directory.iterdir()
        if child.is_dir() and CampaignJournal.exists(child)
    )


def load_histories(
    directory: Union[str, Path], space: SearchSpace
) -> List[SearchHistory]:
    """Load every per-repetition history from ``directory`` (format-detected).

    CSV entries parse through the parsed-history cache; journal entries are
    served as read-only zero-copy views through the memory-mapped reader
    cache (:func:`repro.core.journal.open_journal_reader`) — call
    ``history.copy()`` on those if you need to mutate one.
    """
    directory = Path(directory)
    if CampaignJournal.exists(directory):
        # The directory *is* a single journaled campaign (e.g. one study of
        # a registry root): one repetition.
        return [open_journal_reader(directory, space).history()]
    manifest_path = directory / MANIFEST_NAME
    if manifest_path.exists():
        manifest = json.loads(manifest_path.read_text())
        return [
            _load_entry_history(directory, entry, space)
            for entry in manifest["files"]
        ]
    repetitions = _journal_repetitions(directory)
    if repetitions:
        return [open_journal_reader(rep, space).history() for rep in repetitions]
    raise FileNotFoundError(
        f"{manifest_path} not found and {directory} holds no campaign "
        "journals — is it a saved campaign directory?"
    )


def _load_entry_history(
    directory: Path, entry: Dict, space: SearchSpace
) -> SearchHistory:
    if "journal" in entry:
        return open_journal_reader(directory / entry["journal"], space).history()
    return _load_history_cached(directory / entry["file"], space)


def load_campaign(directory: Union[str, Path], space: SearchSpace) -> CampaignResult:
    """Reconstruct a :class:`CampaignResult` from a saved directory.

    The per-repetition :class:`~repro.core.search.SearchResult` objects are
    rebuilt from the stored histories and manifest metadata (busy intervals
    are approximated by the evaluations' own intervals, which is exactly what
    the utilisation metrics use).  Journal-format directories — manifest
    entries naming journal subdirectories, a manifest-less directory of
    journals, or a directory that is itself one journal — load through the
    memory-mapped read path, including the journal's exact busy intervals.
    """
    directory = Path(directory)
    if CampaignJournal.exists(directory):
        return _campaign_from_journal_dirs(
            [directory], space, label=directory.name
        )
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        repetitions = _journal_repetitions(directory)
        if repetitions:
            return _campaign_from_journal_dirs(
                repetitions, space, label=directory.name
            )
        raise FileNotFoundError(
            f"{manifest_path} not found and {directory} holds no campaign "
            "journals — is it a saved campaign directory?"
        )
    manifest = json.loads(manifest_path.read_text())
    campaign = CampaignResult(
        label=manifest["label"],
        setup=manifest["setup"],
        max_time=float(manifest["max_time"]),
        num_workers=int(manifest["num_workers"]),
    )
    for entry in manifest["files"]:
        history = _load_entry_history(directory, entry, space)
        busy_intervals = None
        if "journal" in entry:
            busy_intervals = open_journal_reader(
                directory / entry["journal"], space
            ).intervals()
        campaign.results.append(
            result_from_history(
                history,
                max_time=float(manifest["max_time"]),
                num_workers=int(manifest["num_workers"]),
                busy_intervals=busy_intervals,
                worker_utilization=float(
                    entry.get("worker_utilization", float("nan"))
                ),
            )
        )
    return campaign


def _campaign_from_journal_dirs(
    repetitions: List[Path], space: SearchSpace, label: str
) -> CampaignResult:
    """Build a :class:`CampaignResult` straight from journal directories.

    Campaign-level fields come from the first repetition's journal meta
    (service-written journals record ``max_time``/``num_workers``; ``label``
    and ``setup`` fall back to the directory name / empty string).
    """
    metas = [CampaignJournal.read_meta(rep) for rep in repetitions]
    first = metas[0]
    max_time = float(first.get("max_time") or 0.0)
    num_workers = int(first.get("num_workers") or 1)
    campaign = CampaignResult(
        label=str(first.get("label") or label),
        setup=str(first.get("setup") or ""),
        max_time=max_time,
        num_workers=num_workers,
    )
    for rep, meta in zip(repetitions, metas):
        reader = open_journal_reader(rep, space)
        history = reader.history()
        recorded = meta.get("worker_utilization")
        campaign.results.append(
            result_from_history(
                history,
                max_time=float(meta.get("max_time") or max_time),
                num_workers=int(meta.get("num_workers") or num_workers),
                busy_intervals=reader.intervals(),
                worker_utilization=None if recorded is None else float(recorded),
            )
        )
    return campaign


def _read_manifest(directory: Path) -> Dict:
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(
            f"{manifest_path} not found — is {directory} a saved campaign directory?"
        )
    return json.loads(manifest_path.read_text())
