"""Campaign-level CSV persistence.

The paper publishes its results as a collection of CSV files — one per
one-hour experiment, 115 files in total — plus scripts that aggregate them
into the figures.  This module reproduces that workflow for the reproduction's
campaigns: every repetition of a campaign is written to its own CSV file (the
same one-row-per-evaluation layout as
:meth:`repro.core.history.SearchHistory.to_csv`) together with a small JSON
manifest describing the campaign, and the whole directory can be loaded back
for analysis without re-running anything.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.history import SearchHistory
from repro.core.search import SearchResult
from repro.core.space import SearchSpace
from repro.analysis.campaign import CampaignResult

__all__ = ["save_campaign", "load_campaign", "load_histories"]

MANIFEST_NAME = "campaign.json"


def save_campaign(campaign: CampaignResult, directory: Union[str, Path]) -> Path:
    """Write a campaign to ``directory`` (one CSV per repetition + manifest).

    Returns the directory path.  Existing files with the same names are
    overwritten; other files in the directory are left untouched.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {
        "label": campaign.label,
        "setup": campaign.setup,
        "max_time": campaign.max_time,
        "num_workers": campaign.num_workers,
        "repetitions": len(campaign.results),
        "files": [],
    }
    for index, result in enumerate(campaign.results):
        name = f"{campaign.label.replace('/', '_')}-rep{index:02d}.csv"
        result.history.to_csv(directory / name)
        manifest["files"].append(
            {
                "file": name,
                "best_runtime": result.best_runtime,
                "num_evaluations": result.num_evaluations,
                "worker_utilization": result.worker_utilization,
            }
        )
    (directory / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
    return directory


def load_histories(
    directory: Union[str, Path], space: SearchSpace
) -> List[SearchHistory]:
    """Load every per-repetition history CSV from ``directory``."""
    directory = Path(directory)
    manifest = _read_manifest(directory)
    histories = []
    for entry in manifest["files"]:
        histories.append(SearchHistory.from_csv(directory / entry["file"], space))
    return histories


def load_campaign(directory: Union[str, Path], space: SearchSpace) -> CampaignResult:
    """Reconstruct a :class:`CampaignResult` from a saved directory.

    The per-repetition :class:`~repro.core.search.SearchResult` objects are
    rebuilt from the stored histories and manifest metadata (busy intervals
    are approximated by the evaluations' own intervals, which is exactly what
    the utilisation metrics use).
    """
    directory = Path(directory)
    manifest = _read_manifest(directory)
    campaign = CampaignResult(
        label=manifest["label"],
        setup=manifest["setup"],
        max_time=float(manifest["max_time"]),
        num_workers=int(manifest["num_workers"]),
    )
    for entry in manifest["files"]:
        history = SearchHistory.from_csv(directory / entry["file"], space)
        best = history.best()
        campaign.results.append(
            SearchResult(
                history=history,
                best_configuration=best.configuration if best else None,
                best_runtime=best.runtime if best else float("nan"),
                best_objective=best.objective if best else float("nan"),
                num_evaluations=len(history),
                worker_utilization=float(entry.get("worker_utilization", float("nan"))),
                search_time=float(manifest["max_time"]),
                num_workers=int(manifest["num_workers"]),
                busy_intervals=list(
                    zip(
                        history.submitted_times().tolist(),
                        history.completed_times().tolist(),
                    )
                ),
            )
        )
    return campaign


def _read_manifest(directory: Path) -> Dict:
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(
            f"{manifest_path} not found — is {directory} a saved campaign directory?"
        )
    return json.loads(manifest_path.read_text())
