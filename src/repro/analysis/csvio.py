"""Campaign-level CSV persistence.

The paper publishes its results as a collection of CSV files — one per
one-hour experiment, 115 files in total — plus scripts that aggregate them
into the figures.  This module reproduces that workflow for the reproduction's
campaigns: every repetition of a campaign is written to its own CSV file (the
same one-row-per-evaluation layout as
:meth:`repro.core.history.SearchHistory.to_csv`) together with a small JSON
manifest describing the campaign, and the whole directory can be loaded back
for analysis without re-running anything.

Loading is served by a **parsed-history cache** keyed by the file's path,
modification time and size: the typed columnar parse
(:meth:`~repro.core.history.SearchHistory.from_csv`) runs once per file even
when several analysis entry points (:func:`load_campaign`,
:func:`load_histories`, repeated figure builds) read the same CSV, and every
caller receives its own independent
:meth:`~repro.core.history.SearchHistory.copy` of the cached columns.  A
rewritten file (new mtime/size) re-parses; :func:`clear_history_cache` drops
the cache explicitly.  The cache is bounded and truly least-recently-*used*:
every hit refreshes its entry, so a bulk sweep that revisits a working set
larger than the cap evicts the files it is done with, not the ones it is
about to read again (:func:`set_history_cache_limit` adjusts the cap).
"""

from __future__ import annotations

import json
from collections import OrderedDict
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.core.history import SearchHistory
from repro.core.objective import Objective
from repro.core.search import SearchResult
from repro.core.space import SearchSpace
from repro.analysis.campaign import CampaignResult

__all__ = [
    "save_campaign",
    "load_campaign",
    "load_histories",
    "clear_history_cache",
    "set_history_cache_limit",
]

MANIFEST_NAME = "campaign.json"

#: Parsed-history cache: (resolved path, mtime_ns, size) → [(space, objective,
#: parsed history), ...], in least-recently-used order (oldest first).  The
#: short value list (almost always length 1) guards against the same file
#: being parsed against different spaces.
_HISTORY_CACHE: "OrderedDict[Tuple[str, int, int], List[Tuple[SearchSpace, Objective, SearchHistory]]]" = OrderedDict()

#: Cache bound: beyond this many distinct files the least-recently-used
#: entries are evicted, so bulk sweeps over hundreds of campaign directories
#: still reuse parses within a directory pass without retaining every history
#: ever loaded for the life of the process.
_HISTORY_CACHE_MAX_FILES = 256


def clear_history_cache() -> None:
    """Drop every cached parsed history (tests, or bulk directory rewrites)."""
    _HISTORY_CACHE.clear()


def set_history_cache_limit(max_files: int) -> int:
    """Set the parsed-history cache bound; returns the previous bound.

    Shrinking evicts least-recently-used entries immediately; ``0`` disables
    caching (every load re-parses).
    """
    global _HISTORY_CACHE_MAX_FILES
    if max_files < 0:
        raise ValueError("max_files must be >= 0")
    previous = _HISTORY_CACHE_MAX_FILES
    _HISTORY_CACHE_MAX_FILES = int(max_files)
    _evict_history_cache()
    return previous


def _evict_history_cache() -> None:
    while len(_HISTORY_CACHE) > _HISTORY_CACHE_MAX_FILES:
        _HISTORY_CACHE.popitem(last=False)


def _load_history_cached(
    path: Path, space: SearchSpace, objective: Optional[Objective] = None
) -> SearchHistory:
    """Load one history CSV through the parsed-column cache.

    Returns an independent copy of the cached parse, so callers can extend
    the history without corrupting later loads.  Hits move the entry to the
    most-recently-used end, so eviction order follows *use*, not insertion.
    """
    stat = path.stat()
    resolved = str(path.resolve())
    key = (resolved, stat.st_mtime_ns, stat.st_size)
    wanted = objective or Objective()
    entries = _HISTORY_CACHE.get(key)
    if entries is None:
        # A rewritten file invalidates its old entry; drop it so the cache
        # does not accumulate one stale parse per overwrite.
        for stale in [k for k in _HISTORY_CACHE if k[0] == resolved]:
            del _HISTORY_CACHE[stale]
        entries = _HISTORY_CACHE[key] = []
    else:
        _HISTORY_CACHE.move_to_end(key)
    for cached_space, cached_objective, history in entries:
        if cached_space == space and cached_objective == wanted:
            return history.copy()
    history = SearchHistory.from_csv(path, space, objective=objective)
    entries.append((space, wanted, history))
    _evict_history_cache()
    return history.copy()


def save_campaign(campaign: CampaignResult, directory: Union[str, Path]) -> Path:
    """Write a campaign to ``directory`` (one CSV per repetition + manifest).

    Returns the directory path.  Existing files with the same names are
    overwritten; other files in the directory are left untouched.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {
        "label": campaign.label,
        "setup": campaign.setup,
        "max_time": campaign.max_time,
        "num_workers": campaign.num_workers,
        "repetitions": len(campaign.results),
        "files": [],
    }
    for index, result in enumerate(campaign.results):
        name = f"{campaign.label.replace('/', '_')}-rep{index:02d}.csv"
        result.history.to_csv(directory / name)
        manifest["files"].append(
            {
                "file": name,
                "best_runtime": result.best_runtime,
                "num_evaluations": result.num_evaluations,
                "worker_utilization": result.worker_utilization,
            }
        )
    (directory / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
    return directory


def load_histories(
    directory: Union[str, Path], space: SearchSpace
) -> List[SearchHistory]:
    """Load every per-repetition history CSV from ``directory``."""
    directory = Path(directory)
    manifest = _read_manifest(directory)
    histories = []
    for entry in manifest["files"]:
        histories.append(_load_history_cached(directory / entry["file"], space))
    return histories


def load_campaign(directory: Union[str, Path], space: SearchSpace) -> CampaignResult:
    """Reconstruct a :class:`CampaignResult` from a saved directory.

    The per-repetition :class:`~repro.core.search.SearchResult` objects are
    rebuilt from the stored histories and manifest metadata (busy intervals
    are approximated by the evaluations' own intervals, which is exactly what
    the utilisation metrics use).
    """
    directory = Path(directory)
    manifest = _read_manifest(directory)
    campaign = CampaignResult(
        label=manifest["label"],
        setup=manifest["setup"],
        max_time=float(manifest["max_time"]),
        num_workers=int(manifest["num_workers"]),
    )
    for entry in manifest["files"]:
        history = _load_history_cached(directory / entry["file"], space)
        best = history.best()
        campaign.results.append(
            SearchResult(
                history=history,
                best_configuration=best.configuration if best else None,
                best_runtime=best.runtime if best else float("nan"),
                best_objective=best.objective if best else float("nan"),
                num_evaluations=len(history),
                worker_utilization=float(entry.get("worker_utilization", float("nan"))),
                search_time=float(manifest["max_time"]),
                num_workers=int(manifest["num_workers"]),
                busy_intervals=list(
                    zip(
                        history.submitted_times().tolist(),
                        history.completed_times().tolist(),
                    )
                ),
            )
        )
    return campaign


def _read_manifest(directory: Path) -> Dict:
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(
            f"{manifest_path} not found — is {directory} a saved campaign directory?"
        )
    return json.loads(manifest_path.read_text())
