"""Campaign runner: repeated searches and paper-style aggregation.

The paper repeats every experiment 5 times and reports the mean with min/max
error bars.  This module provides:

* :func:`run_repeated_search` — run one (setup, method) combination several
  times with different seeds and collect the per-repetition
  :class:`~repro.core.search.SearchResult`;
* :class:`CampaignResult` / :class:`AggregatedMetrics` — the aggregation used
  by the Fig. 3/4/5 benchmarks (best configuration, mean best, number of
  evaluations, worker utilisation, search speedup, incumbent trajectories);
* :func:`run_transfer_chain` — the paper's transfer-learning protocol: tune a
  setup, then use its history as the source for the next setup in the chain
  (11p → 16p → 20p → 8 nodes → 16 nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.history import SearchHistory
from repro.core.search import CBOSearch, SearchResult, VAEABOSearch
from repro.core.space import SearchSpace
from repro.analysis.metrics import (
    best_runtime,
    mean_best_runtime,
    search_speedup,
)

__all__ = [
    "AggregatedMetrics",
    "CampaignResult",
    "result_from_history",
    "run_repeated_search",
    "run_transfer_chain",
    "aggregate_trajectories",
]

RunFunction = Callable[[dict], float]


def result_from_history(
    history: SearchHistory,
    max_time: float,
    num_workers: int,
    busy_intervals: Optional[List[Tuple[float, float]]] = None,
    worker_utilization: Optional[float] = None,
) -> SearchResult:
    """Rebuild a :class:`~repro.core.search.SearchResult` from a stored history.

    The shared reconstruction used by every load path (CSV directories,
    journal directories, :class:`~repro.analysis.store.CampaignStore`):
    best configuration/runtime come from the history, busy intervals default
    to the evaluations' own ``(submitted, completed)`` windows, and the
    utilisation — when not recorded — is recomputed from those intervals
    clipped to the budget (the same definition the live evaluator uses).
    Caller-provided ``busy_intervals`` are stored as given — every load path
    hands over ``(float, float)`` pairs already, so re-normalising them here
    would cost a per-row pass per campaign for nothing.
    """
    best = history.best()
    if busy_intervals is None:
        busy_intervals = list(
            zip(
                history.submitted_times().tolist(),
                history.completed_times().tolist(),
            )
        )
    if worker_utilization is None:
        if max_time > 0 and num_workers >= 1:
            busy = sum(
                max(0.0, min(float(end), max_time) - min(float(start), max_time))
                for start, end in busy_intervals
                if np.isfinite(end)
            )
            worker_utilization = busy / (num_workers * max_time)
        else:
            worker_utilization = float("nan")
    return SearchResult(
        history=history,
        best_configuration=best.configuration if best else None,
        best_runtime=best.runtime if best else float("nan"),
        best_objective=best.objective if best else float("nan"),
        num_evaluations=len(history),
        worker_utilization=float(worker_utilization),
        search_time=float(max_time),
        num_workers=int(num_workers),
        busy_intervals=list(busy_intervals),
    )


@dataclass(frozen=True)
class AggregatedMetrics:
    """Mean / min / max of one metric over the repetitions."""

    mean: float
    min: float
    max: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "AggregatedMetrics":
        """Aggregate a sequence (NaN values are ignored; all-NaN gives NaN)."""
        arr = np.asarray(list(values), dtype=float)
        finite = arr[np.isfinite(arr)]
        if finite.size == 0:
            return cls(float("nan"), float("nan"), float("nan"))
        return cls(float(finite.mean()), float(finite.min()), float(finite.max()))


@dataclass
class CampaignResult:
    """All repetitions of one (setup, method) combination."""

    label: str
    setup: str
    max_time: float
    num_workers: int
    results: List[SearchResult] = field(default_factory=list)

    # ------------------------------------------------------------- aggregates
    def best(self) -> AggregatedMetrics:
        """Best-configuration run time across repetitions (Fig. 4a / 5a)."""
        return AggregatedMetrics.from_values([best_runtime(r) for r in self.results])

    def mean_best(self) -> AggregatedMetrics:
        """Mean best-configuration run time across repetitions (Fig. 4b / 5b)."""
        return AggregatedMetrics.from_values(
            [mean_best_runtime(r, self.max_time) for r in self.results]
        )

    def evaluations(self) -> AggregatedMetrics:
        """Number of evaluations across repetitions (Fig. 4c / 5c)."""
        return AggregatedMetrics.from_values([r.num_evaluations for r in self.results])

    def utilization(self) -> AggregatedMetrics:
        """Worker utilisation across repetitions (Fig. 4d)."""
        return AggregatedMetrics.from_values(
            [r.worker_utilization for r in self.results]
        )

    def speedup_over(self, random_campaign: "CampaignResult") -> AggregatedMetrics:
        """Search speedup relative to a random-sampling campaign (Fig. 4e).

        Following the paper, the random baseline's best run time is averaged
        over its repetitions before computing each repetition's speedup.
        """
        baseline = random_campaign.best().mean
        return AggregatedMetrics.from_values(
            [search_speedup(r, baseline, self.max_time) for r in self.results]
        )

    def histories(self) -> List[SearchHistory]:
        """The per-repetition histories."""
        return [r.history for r in self.results]

    def trajectory(self, num_points: int = 120) -> Dict[str, np.ndarray]:
        """Mean/min/max incumbent trajectory on a regular time grid (Fig. 3)."""
        return aggregate_trajectories(self.results, self.max_time, num_points)

    def incumbent_at(self, times: Sequence[float]) -> np.ndarray:
        """Best-known run time of every repetition at every sample time.

        Returns a ``(repetitions, len(times))`` matrix; each repetition's row
        is resolved with a single vectorised
        :meth:`~repro.core.history.SearchHistory.incumbent_at` call over the
        whole grid (times clipped to the campaign budget, entries before the
        first success are ``inf``) instead of one per-row
        ``best_runtime_at`` scan per (repetition, time) pair — the columnar
        path the Fig. 3 convergence benchmarks aggregate from.
        """
        grid = np.minimum(np.asarray(times, dtype=float), self.max_time)
        return np.asarray(
            [r.history.incumbent_at(grid) for r in self.results], dtype=float
        ).reshape(len(self.results), grid.shape[0])


def aggregate_trajectories(
    results: Sequence[SearchResult],
    max_time: float,
    num_points: int = 120,
) -> Dict[str, np.ndarray]:
    """Aggregate incumbent trajectories over repetitions.

    Returns a dict with keys ``time``, ``mean``, ``min``, ``max``; times before
    a repetition's first successful evaluation contribute NaN (ignored by the
    nan-aware aggregation).

    Each repetition's curve is resolved in one vectorised
    :meth:`~repro.core.history.SearchHistory.incumbent_at` call over the whole
    grid (a ``searchsorted`` against the incumbent trajectory) instead of one
    linear history scan per grid point.
    """
    grid = np.linspace(0.0, max_time, num_points)
    curves = []
    for result in results:
        values = result.history.incumbent_at(grid)
        curves.append(np.where(np.isfinite(values), values, np.nan))
    arr = np.asarray(curves, dtype=float)
    with np.errstate(all="ignore"):
        return {
            "time": grid,
            "mean": np.nanmean(arr, axis=0),
            "min": np.nanmin(arr, axis=0),
            "max": np.nanmax(arr, axis=0),
        }


def run_repeated_search(
    space: SearchSpace,
    run_function: RunFunction,
    label: str,
    setup: str = "",
    surrogate: str = "RF",
    source_history: Optional[SearchHistory] = None,
    repetitions: int = 5,
    max_time: float = 3600.0,
    num_workers: int = 128,
    random_sampling: bool = False,
    refit_interval: int = 1,
    quantile: float = 0.10,
    vae_epochs: int = 300,
    seed: int = 0,
    search_kwargs: Optional[dict] = None,
    runner: str = "sequential",
) -> CampaignResult:
    """Run one (setup, method) combination ``repetitions`` times.

    Parameters mirror :class:`~repro.core.search.CBOSearch` /
    :class:`~repro.core.search.VAEABOSearch`; ``source_history`` switches the
    method to VAE-ABO transfer learning.

    ``runner`` selects how the repetitions execute: ``"sequential"`` (one
    ``run`` after another) or ``"batched"`` — all repetitions advanced
    concurrently by a :class:`~repro.service.CampaignRunner`, which batches
    their surrogate refits and candidate scoring into per-tick fleet passes.
    With a deterministic (stateless) ``run_function`` both modes produce
    bit-identical per-repetition results; a run function carrying hidden
    state (e.g. a shared noise generator) would see its calls interleaved
    differently, so the batched mode is opt-in.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    if runner not in ("sequential", "batched"):
        raise ValueError(f"unknown runner {runner!r} (expected 'sequential' or 'batched')")
    campaign = CampaignResult(
        label=label, setup=setup, max_time=max_time, num_workers=num_workers
    )
    extra = dict(search_kwargs or {})
    searches: List[CBOSearch] = []
    for rep in range(repetitions):
        rep_seed = seed + 1000 * rep
        if source_history is not None:
            search: CBOSearch = VAEABOSearch(
                space,
                run_function,
                source_history=source_history,
                quantile=quantile,
                vae_epochs=vae_epochs,
                num_workers=num_workers,
                surrogate=surrogate,
                random_sampling=random_sampling,
                refit_interval=refit_interval,
                seed=rep_seed,
                **extra,
            )
        else:
            search = CBOSearch(
                space,
                run_function,
                num_workers=num_workers,
                surrogate=surrogate,
                random_sampling=random_sampling,
                refit_interval=refit_interval,
                seed=rep_seed,
                **extra,
            )
        searches.append(search)
    if runner == "batched":
        from repro.service import CampaignRunner, CampaignSpec

        specs = [
            CampaignSpec(search=search, max_time=max_time, label=f"{label}/rep{rep}")
            for rep, search in enumerate(searches)
        ]
        campaign.results.extend(CampaignRunner(specs).run())
    else:
        for search in searches:
            campaign.results.append(search.run(max_time=max_time))
    return campaign


def run_transfer_chain(
    problems: Sequence[Tuple[str, SearchSpace, RunFunction]],
    repetitions: int = 5,
    max_time: float = 3600.0,
    num_workers: int = 128,
    surrogate: str = "RF",
    refit_interval: int = 1,
    quantile: float = 0.10,
    vae_epochs: int = 300,
    seed: int = 0,
) -> Dict[str, Dict[str, CampaignResult]]:
    """Run the paper's transfer chain over a sequence of setups.

    Parameters
    ----------
    problems:
        Ordered ``(setup_name, space, run_function)`` triples, e.g. the chain
        4n-1s-11p → 4n-2s-16p → 4n-2s-20p → 8n-2s-20p → 16n-2s-20p.

    Returns
    -------
    Mapping ``setup_name → {"no_tl": CampaignResult, "tl": CampaignResult}``;
    the first setup only has the ``no_tl`` entry (there is nothing to
    transfer from).  The TL source of setup *k* is the first repetition of
    setup *k−1*'s no-TL campaign, exactly as the paper transfers from one
    setup type to the next.
    """
    chain: Dict[str, Dict[str, CampaignResult]] = {}
    previous_history: Optional[SearchHistory] = None
    for name, space, run_function in problems:
        entry: Dict[str, CampaignResult] = {}
        entry["no_tl"] = run_repeated_search(
            space,
            run_function,
            label=f"{surrogate}",
            setup=name,
            surrogate=surrogate,
            repetitions=repetitions,
            max_time=max_time,
            num_workers=num_workers,
            refit_interval=refit_interval,
            seed=seed,
        )
        if previous_history is not None:
            entry["tl"] = run_repeated_search(
                space,
                run_function,
                label=f"TL-{surrogate}",
                setup=name,
                surrogate=surrogate,
                source_history=previous_history,
                repetitions=repetitions,
                max_time=max_time,
                num_workers=num_workers,
                refit_interval=refit_interval,
                quantile=quantile,
                vae_epochs=vae_epochs,
                seed=seed,
            )
        chain[name] = entry
        previous_history = entry["no_tl"].results[0].history
    return chain
