"""The paper's effectiveness metrics (§IV-A1).

Five metrics are used throughout the evaluation:

* **Best-performing configuration** — run time of the best configuration
  found within the search budget.
* **Mean best-performing configuration** — the time average of the
  best-known run time over the search,
  ``E[R] = (1/t_max) ∫_0^{t_max} R(t) dt``: the expected best run time if the
  search were stopped at a uniformly random time.
* **Number of evaluations** — completed workflow instances within the budget.
* **Worker utilisation** — fraction of worker time spent running workflow
  instances.
* **Search speedup** — how much sooner a method reaches the best run time a
  random search attains in the full budget:
  ``S = t_max / argmin_t (R(t) < R_rand_best)``.

All functions accept either a :class:`~repro.core.history.SearchHistory` or a
:class:`~repro.core.search.SearchResult`.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.core.history import SearchHistory
from repro.core.search import SearchResult

__all__ = [
    "best_runtime",
    "mean_best_runtime",
    "num_evaluations",
    "worker_utilization",
    "search_speedup",
    "time_to_reach",
    "utilization_timeline",
]

HistoryLike = Union[SearchHistory, SearchResult]


def _history(obj: HistoryLike) -> SearchHistory:
    # SearchResult, FrameworkResult and anything else carrying a ``history``
    # attribute are accepted; plain histories pass through.
    history = getattr(obj, "history", None)
    return history if isinstance(history, SearchHistory) else obj


def best_runtime(obj: HistoryLike) -> float:
    """Run time of the best configuration found (NaN if nothing succeeded)."""
    return _history(obj).best_runtime()


def num_evaluations(obj: HistoryLike) -> int:
    """Number of completed evaluations."""
    return len(_history(obj))


def worker_utilization(result: SearchResult) -> float:
    """Fraction of worker time spent evaluating (only defined on results)."""
    return result.worker_utilization


def mean_best_runtime(obj: HistoryLike, max_time: float) -> float:
    """Time-averaged best-known run time ``E[R]`` over ``[0, max_time]``.

    Before the first successful evaluation the best-known run time is
    undefined; following the paper's analysis we extend the first incumbent
    value backwards to time 0 (stopping the search before the first result
    would force the user to fall back on that first configuration anyway).
    Returns NaN when no evaluation succeeded.
    """
    if max_time <= 0:
        raise ValueError("max_time must be positive")
    trajectory = _history(obj).incumbent_trajectory()
    if not trajectory:
        return float("nan")
    times = np.asarray([t for t, _ in trajectory], dtype=float)
    values = np.asarray([v for _, v in trajectory], dtype=float)
    # Integrate the incumbent step function over [0, max_time]: segment i
    # carries values[i-1] (with the first incumbent extended back to t = 0)
    # between consecutive clipped improvement times.
    edges = np.concatenate(([0.0], np.minimum(times, max_time), [max_time]))
    weights = np.concatenate(([values[0]], values))
    widths = np.maximum(np.diff(edges), 0.0)
    return float(np.dot(weights, widths) / max_time)


def time_to_reach(obj: HistoryLike, target_runtime: float) -> float:
    """Earliest search time at which the incumbent run time is below ``target``.

    Returns ``inf`` when the target is never reached.
    """
    trajectory = _history(obj).incumbent_trajectory()
    if not trajectory:
        return float("inf")
    values = np.asarray([v for _, v in trajectory], dtype=float)
    below = np.flatnonzero(values < target_runtime)
    if below.size == 0:
        return float("inf")
    return trajectory[int(below[0])][0]


def search_speedup(
    obj: HistoryLike,
    random_best_runtime: float,
    max_time: float,
) -> float:
    """Search speedup over random sampling (§IV-A1).

    ``S = max_time / t*`` where ``t*`` is the earliest time the method's
    incumbent beats the best run time random sampling found in the whole
    budget.  By construction the speedup is at least 1 when the method reaches
    the target within the budget; it is defined as 1.0 when it never does
    (no speedup), and NaN when the random baseline itself never succeeded.
    """
    if max_time <= 0:
        raise ValueError("max_time must be positive")
    if not math.isfinite(random_best_runtime):
        return float("nan")
    t_star = time_to_reach(obj, random_best_runtime)
    if not math.isfinite(t_star) or t_star <= 0:
        return 1.0 if not math.isfinite(t_star) else float(max_time / max(t_star, 1e-9))
    return float(max_time / t_star)


def utilization_timeline(
    busy_intervals: Sequence[Tuple[float, float]],
    num_workers: int,
    max_time: float,
    window: float = 60.0,
) -> List[Tuple[float, float]]:
    """Worker utilisation per time window (the series of Fig. 4 (f)).

    Parameters
    ----------
    busy_intervals:
        ``(start, end)`` intervals during which a worker was evaluating.
    num_workers:
        Number of workers.
    max_time:
        Search budget (the timeline covers ``[0, max_time]``).
    window:
        Width of each averaging window in seconds.

    Returns
    -------
    List of ``(window_center, utilisation)`` points.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if window <= 0 or max_time <= 0:
        raise ValueError("window and max_time must be positive")
    edges = np.arange(0.0, max_time + window, window)
    if busy_intervals:
        starts = np.asarray([s for s, _ in busy_intervals], dtype=float)
        ends = np.asarray([e for _, e in busy_intervals], dtype=float)
    else:
        starts = ends = np.empty(0, dtype=float)
    points: List[Tuple[float, float]] = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        hi = min(hi, max_time)
        if hi <= lo:
            break
        # Vectorised overlap of every interval with this window: negative
        # overlaps clip to zero, so only genuinely intersecting intervals
        # contribute — same result as the former per-interval Python loop,
        # one array pass per window instead.
        overlap = np.minimum(ends, hi) - np.maximum(starts, lo)
        busy = float(np.clip(overlap, 0.0, None).sum())
        points.append(((lo + hi) / 2.0, busy / (num_workers * (hi - lo))))
    return points
