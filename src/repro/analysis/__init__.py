"""Analysis: effectiveness metrics, campaign runner and figure-series generation.

* :mod:`repro.analysis.metrics` — the five effectiveness metrics of §IV-A1
  (best configuration, mean best configuration, number of evaluations, worker
  utilisation, search speedup) plus the utilisation-over-time series of
  Fig. 4 (f).
* :mod:`repro.analysis.campaign` — runs repeated searches (with and without
  transfer learning, across surrogate models and setups) and aggregates the
  metrics the way the paper's bar charts do (mean with min/max error bars
  over 5 repetitions).
* :mod:`repro.analysis.figures` — produces the data series behind every
  figure of the evaluation section; the benchmark harness prints these as
  tables.
* :mod:`repro.analysis.csvio` / :mod:`repro.analysis.store` — campaign
  persistence: CSV interchange plus the memory-mapped journal read path, and
  the :class:`~repro.analysis.store.CampaignStore` catalog for cold-start
  analysis over a root of thousands of journaled campaigns.
"""

from repro.analysis.metrics import (
    best_runtime,
    mean_best_runtime,
    num_evaluations,
    search_speedup,
    utilization_timeline,
    worker_utilization,
)
from repro.analysis.campaign import (
    AggregatedMetrics,
    CampaignResult,
    result_from_history,
    run_repeated_search,
    run_transfer_chain,
)
from repro.analysis.store import CampaignStore

__all__ = [
    "AggregatedMetrics",
    "CampaignResult",
    "CampaignStore",
    "best_runtime",
    "mean_best_runtime",
    "num_evaluations",
    "result_from_history",
    "run_repeated_search",
    "run_transfer_chain",
    "search_speedup",
    "utilization_timeline",
    "worker_utilization",
]
