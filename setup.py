"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``.  This file
exists so that ``pip install -e .`` works in fully offline environments where
the ``wheel`` package (needed for PEP 660 editable wheels with older
setuptools) is unavailable: pip then falls back to the legacy
``setup.py develop`` code path.
"""

from setuptools import setup

setup()
