#!/usr/bin/env python
"""Framework comparison on a learned run-time surrogate (the Fig. 5 experiment).

The paper compares its DeepHyper-based approach against GPtune and HiPerBOt on
a laptop by replacing the real workflow with a random-forest surrogate of its
run time.  This example does the same against the simulated workflow:

1. collect random-sampling data on the simulated workflow,
2. train the run-time surrogate,
3. run every framework — RAND, DH1W, DH10W, GPTUNE, HIPERBOT — with and
   without transfer learning, all starting from the same initial samples, and
4. print the Fig. 5 metrics (best configuration, mean best, #evaluations).

Usage::

    python examples/compare_frameworks.py [--setup 4n-2s-20p] [--budget 3600]
"""

import argparse

import numpy as np

from repro.core import CBOSearch
from repro.hep import HEPWorkflowProblem, SurrogateRuntime
from repro.frameworks import DeepHyperSearch, GPTuneLike, HiPerBOtLike, RandomSearch
from repro.analysis.metrics import mean_best_runtime


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--setup", default="4n-2s-20p")
    parser.add_argument("--budget", type=float, default=3600.0)
    parser.add_argument("--train-samples", type=int, default=300,
                        help="random workflow evaluations used to train the surrogate")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    problem = HEPWorkflowProblem.from_setup(args.setup, seed=args.seed)
    print(f"training the run-time surrogate on {args.train_samples} random "
          f"evaluations of {args.setup} ...")
    surrogate = SurrogateRuntime.train(problem, num_samples=args.train_samples, seed=args.seed)

    # Source data for the transfer-learning variants: a previous (smaller
    # budget) DeepHyper-style search against the same surrogate.
    source_search = CBOSearch(
        problem.space, surrogate, num_workers=10, surrogate="RF",
        refit_interval=4, seed=args.seed,
    )
    source_history = source_search.run(max_time=args.budget).history
    print(f"source search for TL: {len(source_history)} evaluations, "
          f"best {source_history.best_runtime():.1f} s")

    # The same 10 initial samples for every framework, as in the paper.
    initial = problem.space.sample(10, np.random.default_rng(args.seed + 7))

    frameworks = {
        "RAND": RandomSearch(problem.space, surrogate, num_workers=1, seed=args.seed),
        "DH1W": DeepHyperSearch(problem.space, surrogate, num_workers=1, seed=args.seed),
        "DH10W": DeepHyperSearch(problem.space, surrogate, num_workers=10, seed=args.seed),
        "GPTUNE": GPTuneLike(problem.space, surrogate, seed=args.seed),
        "HIPERBOT": HiPerBOtLike(problem.space, surrogate, seed=args.seed),
    }

    print(f"\n{'method':14s} {'best (s)':>10s} {'mean best (s)':>14s} {'#evals':>8s}")
    for with_tl in (False, True):
        for name, framework in frameworks.items():
            if with_tl and name == "RAND":
                continue  # random sampling has no transfer-learning mode
            result = framework.run(
                args.budget,
                initial_configurations=initial,
                source_history=source_history if with_tl else None,
            )
            label = result.name
            print(
                f"{label:14s} {result.best_runtime:10.1f} "
                f"{mean_best_runtime(result.history, args.budget):14.1f} "
                f"{result.num_evaluations:8d}"
            )


if __name__ == "__main__":
    main()
