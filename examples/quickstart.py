#!/usr/bin/env python
"""Quickstart: autotune the HEP data-loading step with asynchronous BO.

This is the smallest end-to-end use of the library:

1. build the autotuning problem for the paper's ``4n-1s-11p`` setup
   (4 nodes, data-loading step only, 11 tunable parameters),
2. run the asynchronous Bayesian-optimization search on a virtual-time pool of
   workers for a short search budget, and
3. print the best configuration found and a few summary metrics.

Run time: roughly half a minute on a laptop.

Usage::

    python examples/quickstart.py [--budget SECONDS] [--workers N]
"""

import argparse

from repro.core import CBOSearch
from repro.hep import HEPWorkflowProblem
from repro.analysis.metrics import mean_best_runtime


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=float, default=600.0,
                        help="search-time budget in (virtual) seconds")
    parser.add_argument("--workers", type=int, default=16,
                        help="number of parallel evaluation workers")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # The problem bundles the Fig. 1 search space with the simulated workflow.
    problem = HEPWorkflowProblem.from_setup("4n-1s-11p", seed=args.seed)
    print(f"setup: {problem.setup.name}  "
          f"({problem.setup.num_nodes} nodes, {len(problem.space)} parameters, "
          f"{problem.setup.num_files} input files)")

    search = CBOSearch(
        problem.space,
        problem.evaluate,          # configuration -> run time in seconds
        num_workers=args.workers,
        surrogate="RF",            # the paper's default surrogate
        refit_interval=4,          # refit the forest every 4 new results
        seed=args.seed,
    )
    result = search.run(max_time=args.budget)

    print(f"\ncompleted evaluations : {result.num_evaluations}")
    print(f"worker utilization    : {result.worker_utilization:.1%}")
    print(f"best run time         : {result.best_runtime:.1f} s")
    print(f"mean best run time    : {mean_best_runtime(result, args.budget):.1f} s")
    print("\nbest configuration:")
    for name, value in sorted(result.best_configuration.items()):
        print(f"  {name:32s} = {value}")


if __name__ == "__main__":
    main()
