#!/usr/bin/env python
"""Autotune a Mochi service straight from its configuration schema.

The paper's conclusion sketches a generic autotuning framework for Mochi-based
services in which the tunable parameters are *discovered* from a schema of the
service's configuration file, together with a set of feasibility constraints.
This example demonstrates that extension:

1. write a Bedrock-like schema in which the knobs to tune are marked with
   ``{"__param__": {...}}`` descriptors,
2. discover the corresponding search space and attach constraints,
3. run the asynchronous BO search with a constraint-aware prior, and
4. instantiate the best configuration back into a concrete service document.

Usage::

    python examples/schema_autotuning.py [--budget 600] [--workers 8]
"""

import argparse
import json

from repro.core import CBOSearch
from repro.hep import HEPWorkflowProblem
from repro.hep.parameters import complete_configuration
from repro.mochi.schema import Constraint, ConstrainedPrior, discover_space, instantiate

#: A schema of the HEPnOS-side knobs (subset of Fig. 1), written the way a
#: Mochi service operator would annotate their Bedrock JSON file.
SCHEMA = {
    "margo": {
        "progress_mode": {
            "__param__": {"name": "busy_spin", "type": "boolean"}
        },
        "dedicated_progress_thread": {
            "__param__": {"name": "hepnos_progress_thread", "type": "boolean"}
        },
    },
    "providers": {
        "count": {"__param__": {"name": "hepnos_num_providers", "type": "integer",
                                 "low": 1, "high": 32}},
        "pool": {
            "kind": {"__param__": {"name": "hepnos_pool_type", "type": "categorical",
                                    "choices": ["fifo", "fifo_wait", "prio_wait"]}},
            "num_xstreams": {"__param__": {"name": "hepnos_num_rpc_threads",
                                            "type": "integer", "low": 0, "high": 63}},
        },
    },
    "databases": {
        "events": {"__param__": {"name": "hepnos_num_event_databases", "type": "integer",
                                  "low": 1, "high": 16}},
        "products": {"__param__": {"name": "hepnos_num_product_databases", "type": "integer",
                                    "low": 1, "high": 16}},
    },
}

#: Feasibility constraints an operator would attach to the schema.
CONSTRAINTS = [
    Constraint(
        name="providers_have_databases",
        predicate=lambda c: c["hepnos_num_providers"]
        <= c["hepnos_num_event_databases"] + c["hepnos_num_product_databases"],
        description="a provider without any database would be idle",
    ),
    Constraint(
        name="threads_cover_providers",
        predicate=lambda c: c["hepnos_num_rpc_threads"] == 0
        or c["hepnos_num_rpc_threads"] >= c["hepnos_num_providers"] // 4,
        description="avoid starving providers of RPC execution streams",
    ),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=float, default=600.0)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    space, constraints = discover_space(SCHEMA, constraints=CONSTRAINTS, name="hepnos-schema")
    print(f"discovered {len(space)} tunable parameters from the schema:")
    for param in space:
        print(f"  - {param!r}")

    # The discovered parameters are a subset of the HEP workflow's Fig. 1
    # space, so the simulated workflow evaluates them directly (the remaining
    # parameters keep their defaults).
    problem = HEPWorkflowProblem.from_setup("4n-2s-16p", seed=args.seed)

    def evaluate(config):
        return problem.workflow.run(complete_configuration(config)).runtime

    prior = ConstrainedPrior.uniform(space, constraints)
    search = CBOSearch(
        space,
        evaluate,
        prior=prior,
        num_workers=args.workers,
        surrogate="RF",
        refit_interval=4,
        seed=args.seed,
    )
    result = search.run(max_time=args.budget)

    print(f"\nbest run time: {result.best_runtime:.1f} s "
          f"({result.num_evaluations} evaluations)")
    print("violated constraints of the best configuration:",
          prior.violated(result.best_configuration) or "none")

    document = instantiate(SCHEMA, result.best_configuration)
    print("\nconcrete service document for the best configuration:")
    print(json.dumps(document, indent=2))


if __name__ == "__main__":
    main()
