#!/usr/bin/env python
"""Drive the HEPnOS/Mochi substrate directly (no autotuning involved).

The storage-service simulator is a usable library on its own.  This example:

1. builds a Bedrock service configuration from HEPnOS tuning parameters and
   prints the resulting JSON document (what the real HEPnOS would be started
   with),
2. deploys the simulated service on a small node allocation,
3. runs the data-loading step and the parallel-event-processing step for one
   hand-written configuration, and
4. prints per-step timings and service-side statistics (RPCs handled, bytes
   stored, database occupancy).

Usage::

    python examples/explore_hepnos_substrate.py [--files 20] [--nodes 4]
"""

import argparse

from repro.sim import Environment
from repro.mochi.bedrock import ServiceConfig
from repro.platform import THETA, NodeAllocation
from repro.hepnos.service import HEPnOSService
from repro.hep.costs import DEFAULT_COSTS
from repro.hep.dataloader import DataLoaderConfig, DataLoaderRun
from repro.hep.hdf5 import SyntheticEventFiles
from repro.hep.pep import PEPConfig, PEPRun


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--files", type=int, default=20)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # --- 1. the Bedrock configuration ------------------------------------
    service_config = ServiceConfig.from_tuning_parameters(
        num_event_dbs=4,
        num_product_dbs=4,
        num_providers=4,
        num_rpc_threads=16,
        pool_type="fifo_wait",
        progress_thread=True,
        busy_spin=False,
    )
    print("Bedrock service configuration (JSON):")
    print(service_config.to_json())

    # --- 2. deploy the simulated service ----------------------------------
    env = Environment()
    allocation = NodeAllocation.create(env, THETA, args.nodes)
    service = HEPnOSService(env, allocation.hepnos_nodes, service_config)
    files = SyntheticEventFiles(args.files, seed=args.seed)
    print(f"\ndeployment: {len(allocation.hepnos_nodes)} HEPnOS node(s), "
          f"{len(allocation.app_nodes)} application node(s)")
    print(f"input: {len(files)} files, {files.total_events} events, "
          f"{files.total_bytes / 2**30:.2f} GiB")

    # --- 3. run the data loader -------------------------------------------
    loader = DataLoaderRun(
        env,
        allocation.app_nodes,
        service,
        list(files),
        DataLoaderConfig(pes_per_node=8, batch_size=512, use_async=True, async_threads=4),
        DEFAULT_COSTS,
    )
    env.process(loader.run())
    env.run()
    print(f"\ndata loading finished at t={loader.stats.elapsed:.1f} s "
          f"({loader.stats.events_stored} events, "
          f"{loader.stats.bytes_stored / 2**30:.2f} GiB, "
          f"{loader.stats.rpcs_issued} store RPCs)")

    # --- 4. run the parallel event processing ------------------------------
    for node in allocation.app_nodes:
        node.reset_accounting()
    pep = PEPRun(
        env,
        allocation.app_nodes,
        service,
        PEPConfig(pes_per_node=8, num_threads=8, input_batch_size=256, use_preloading=True),
        DEFAULT_COSTS,
    )
    env.process(pep.run())
    env.run()
    print(f"event processing finished in {pep.stats.elapsed:.1f} s "
          f"({pep.stats.events_processed} events, "
          f"{pep.stats.remote_blocks} blocks exchanged between processes)")

    # --- 5. service-side statistics ----------------------------------------
    print("\nper-database occupancy (event databases):")
    for idx, (server, db) in enumerate(service.event_databases):
        print(f"  event db {idx} on server {server.server_id}: "
              f"{db.puts} puts, {db.gets} gets, {len(db)} records")
    total_rpcs = sum(server.engine.rpcs_handled for server in service.servers)
    print(f"total RPCs handled by the service: {total_rpcs}")


if __name__ == "__main__":
    main()
