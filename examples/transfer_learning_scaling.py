#!/usr/bin/env python
"""Transfer learning across workflow setups (the paper's headline result).

Reproduces the §IV-B protocol at a reduced scale: tune a small setup, then use
its history as the VAE-ABO transfer-learning source for the next setup in the
chain (adding a workflow step, adding parameters, scaling up the node count),
and compare the convergence of the transfer-learning search against a cold
search on each target setup.

Usage::

    python examples/transfer_learning_scaling.py \
        [--budget 900] [--workers 16] [--chain 4n-1s-11p 4n-2s-16p 4n-2s-20p]
"""

import argparse

from repro.core import CBOSearch, VAEABOSearch
from repro.hep import HEPWorkflowProblem
from repro.analysis.metrics import mean_best_runtime, search_speedup


def run_stage(problem, budget, workers, seed, source_history=None):
    """Run one search (transfer-learning when a source history is given)."""
    common = dict(
        num_workers=workers,
        surrogate="RF",
        refit_interval=4,
        seed=seed,
    )
    if source_history is None:
        search = CBOSearch(problem.space, problem.evaluate, **common)
    else:
        search = VAEABOSearch(
            problem.space,
            problem.evaluate,
            source_history=source_history,
            vae_epochs=150,
            quantile=0.10,
            **common,
        )
    return search.run(max_time=budget)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=float, default=900.0)
    parser.add_argument("--workers", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--chain",
        nargs="+",
        default=["4n-1s-11p", "4n-2s-16p", "4n-2s-20p"],
        help="ordered list of setups; each transfers from the previous one",
    )
    args = parser.parse_args()

    previous_history = None
    for stage, setup_name in enumerate(args.chain):
        problem = HEPWorkflowProblem.from_setup(setup_name, seed=args.seed)
        print(f"\n=== stage {stage + 1}: {setup_name} "
              f"({len(problem.space)} parameters) ===")

        cold = run_stage(problem, args.budget, args.workers, args.seed)
        line = (f"  no-TL : best={cold.best_runtime:7.1f} s   "
                f"mean-best={mean_best_runtime(cold, args.budget):7.1f} s   "
                f"evals={cold.num_evaluations}")
        print(line)

        if previous_history is not None:
            tl = run_stage(
                problem, args.budget, args.workers, args.seed,
                source_history=previous_history,
            )
            speedup_tl = search_speedup(tl, cold.best_runtime, args.budget)
            print(f"  TL    : best={tl.best_runtime:7.1f} s   "
                  f"mean-best={mean_best_runtime(tl, args.budget):7.1f} s   "
                  f"evals={tl.num_evaluations}   "
                  f"(reaches the no-TL best {speedup_tl:.1f}x sooner)")
            # The next stage transfers from the richer of the two runs.
            previous_history = tl.history
        else:
            previous_history = cold.history

        print("  convergence (best run time after t seconds of search):")
        for fraction in (0.1, 0.25, 0.5, 1.0):
            t = fraction * args.budget
            best = previous_history.best_runtime_at(t)
            print(f"    t={t:7.1f} s   best={best:7.1f} s")


if __name__ == "__main__":
    main()
