#!/usr/bin/env python
"""Autotune the full two-step HEP workflow and save the search history.

This mirrors the paper's main experiments (§IV-B): the full 20-parameter
space of the data loader + HEPnOS + parallel event processing is explored by
asynchronous Bayesian optimization on a pool of virtual-time workers, and the
per-evaluation history is written to a CSV file in the same one-row-per-
evaluation layout the authors published for their Theta runs.

Usage::

    python examples/autotune_hep_workflow.py \
        [--setup 4n-2s-20p] [--budget 1800] [--workers 32] \
        [--surrogate RF|GP|RAND] [--output history.csv]
"""

import argparse
import math

from repro.core import CBOSearch
from repro.hep import HEPWorkflowProblem, get_setup
from repro.analysis.metrics import mean_best_runtime, utilization_timeline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--setup", default="4n-2s-20p",
                        help="workflow setup (e.g. 4n-2s-20p, 8n-2s-20p)")
    parser.add_argument("--budget", type=float, default=1800.0)
    parser.add_argument("--workers", type=int, default=32)
    parser.add_argument("--surrogate", default="RF", choices=["RF", "GP", "RAND"])
    parser.add_argument("--output", default="hep_autotuning_history.csv")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    setup = get_setup(args.setup)
    problem = HEPWorkflowProblem.from_setup(setup.name, seed=args.seed)
    print(f"autotuning {setup.name}: {setup.num_nodes} nodes, "
          f"{setup.num_steps} workflow step(s), {setup.num_parameters} parameters")

    search = CBOSearch(
        problem.space,
        problem.evaluate,
        num_workers=args.workers,
        surrogate=args.surrogate,
        random_sampling=(args.surrogate == "RAND"),
        refit_interval=4,
        seed=args.seed,
    )
    result = search.run(max_time=args.budget)

    # Save the per-evaluation history (the format the paper's analysis uses).
    result.history.to_csv(args.output)
    print(f"\nwrote {result.num_evaluations} evaluations to {args.output}")

    failures = result.history.num_failures()
    print(f"best run time      : {result.best_runtime:.1f} s")
    print(f"mean best run time : {mean_best_runtime(result, args.budget):.1f} s")
    print(f"failed evaluations : {failures} "
          f"({failures / max(result.num_evaluations, 1):.0%} of all runs)")
    print(f"worker utilization : {result.worker_utilization:.1%}")

    print("\nincumbent trajectory (search time -> best run time):")
    for t, best in result.history.incumbent_trajectory():
        print(f"  {t:8.1f} s   {best:8.1f} s")

    print("\nworker utilization over time:")
    for center, utilization in utilization_timeline(
        result.busy_intervals, args.workers, args.budget, window=args.budget / 10
    ):
        bar = "#" * int(round(40 * utilization))
        print(f"  t={center:7.1f} s  {utilization:6.1%}  {bar}")

    print("\nbest configuration:")
    for name, value in sorted(result.best_configuration.items()):
        print(f"  {name:32s} = {value}")


if __name__ == "__main__":
    main()
