"""Fig. 4 (a)-(e): surrogate-model comparison (RAND, RF, GP, TL-RF, TL-GP).

The paper's Fig. 4 compares random sampling with random-forest and
Gaussian-process surrogates, with and without VAE-ABO transfer learning, on
the five effectiveness metrics of §IV-A1: best configuration, mean best
configuration, number of evaluations, worker utilisation and search speedup
over random sampling.

Expected shape (paper):

* every model beats random sampling on the best configuration (Fig. 4a);
* TL variants converge fastest (lowest mean best, Fig. 4b);
* RF completes far more evaluations than GP and keeps near-100 % worker
  utilisation, while GP's utilisation collapses (Fig. 4c/d);
* TL achieves the largest search speedups — the paper reports >40× with TL
  vs 2.5–10× without (Fig. 4e).
"""

import pytest

from repro.analysis.figures import fig4_rows, fig4_table
from common import SCALE, get_campaign, print_block

#: The method labels of Fig. 4, in plotting order.
METHODS = ("RAND", "RF", "GP", "TL-RF", "TL-GP")


def _source_for(setup):
    """TL source: the previous setup in the Fig. 3 chain (None for the first)."""
    idx = SCALE.setups_fig4.index(setup)
    return SCALE.setups_fig4[idx - 1] if idx > 0 else None


def _run_fig4():
    campaigns = {}
    for setup in SCALE.setups_fig4:
        source = _source_for(setup)
        methods = {}
        for method in METHODS:
            if method.startswith("TL-") and source is None:
                continue  # the first setup has nothing to transfer from
            methods[method] = get_campaign(setup, method, source_setup=source)
        campaigns[setup] = methods
    return campaigns


@pytest.mark.benchmark(group="fig4")
def test_fig4_model_comparison(benchmark):
    """Regenerate the Fig. 4 metric bars and check their qualitative shape."""
    campaigns = benchmark.pedantic(_run_fig4, rounds=1, iterations=1)

    print_block(
        f"Fig. 4 — surrogate model comparison ({SCALE.name} scale, "
        f"{SCALE.num_workers} workers, {SCALE.max_time:.0f}s, "
        f"{SCALE.repetitions} repetitions)",
        fig4_table(campaigns),
    )
    rows = {(r["setup"], r["method"]): r for r in fig4_rows(campaigns)}

    for setup, methods in campaigns.items():
        rand_best = rows[(setup, "RAND")]["best"].mean
        rf_best = rows[(setup, "RF")]["best"].mean
        # Fig. 4a: the model-based searches find configurations at least as
        # good as random sampling.  With the reduced small-scale budgets and
        # repetition counts a little noise is tolerated; the strict ordering
        # is asserted at the full "paper" scale.
        margin = 1.1 if SCALE.name == "paper" else 1.3
        assert rf_best <= rand_best * margin

        # Fig. 4c/d: RF utilises the workers at least as well as GP.  The
        # paper's large gap in the *number of evaluations* only appears once
        # enough observations accumulate for the O(n^3) GP update to dominate
        # (hundreds to thousands of points), so that ordering is only asserted
        # at the full "paper" scale.
        if "GP" in methods:
            assert (
                rows[(setup, "RF")]["utilization"].mean
                >= rows[(setup, "GP")]["utilization"].mean - 0.05
            )
            if SCALE.name == "paper":
                assert (
                    rows[(setup, "RF")]["evaluations"].mean
                    >= rows[(setup, "GP")]["evaluations"].mean
                )

        # Fig. 4b/4e: transfer learning converges at least as fast as the
        # corresponding cold search.
        if (setup, "TL-RF") in rows:
            assert (
                rows[(setup, "TL-RF")]["mean_best"].mean
                <= rows[(setup, "RF")]["mean_best"].mean * 1.15
            )
            assert (
                rows[(setup, "TL-RF")]["speedup"].mean
                >= rows[(setup, "RF")]["speedup"].mean * 0.75
            )
