"""Batched fleet ask vs. solo per-campaign proposal — wall-clock speedup.

Each :class:`~repro.service.CampaignRunner` tick used to run one
``prepare_ask`` per campaign: a per-member prior draw, candidate encoding,
dedup-key pass and unit-cube projection, each paying NumPy dispatch overhead
on a few hundred rows.  The fleet ask (`prepare_ask_fleet` behind
``batch_asks=True``) stacks the candidate sheets of all same-space campaigns
and runs those passes once per tick.  This benchmark measures the effect two
ways, at 8 and 32 campaigns:

* **ask phase** — K model-phase RF optimizers over one shared space driven
  through rounds of proposals, fused (one stacked ``prepare_ask_fleet``
  call per round) vs sequential ``prepare_ask`` loops.  The resulting
  proposals and every optimizer's RNG state are asserted **bitwise
  identical**.
* **campaigns** — the acceptance measurement end to end: the same cohort
  through the batched runner with ``batch_asks=True`` vs the
  ``batch_asks=False`` escape hatch (all other fusion stages on in both, so
  the difference isolates the fleet ask).  Per-campaign results are
  asserted bit-identical at full size — only wall-clock changes.

The fused pass amortises fixed per-member costs, so its advantage is
largest at moderate candidate-sheet sizes (the default 128 rows); at very
large sheets the member-local dedup loop dominates both paths and the
speedup tends to 1.  Results are written to ``BENCH_fleet_ask.json`` (repo
root by default); timings take the best of ``--reps`` repetitions.

Run with::

    PYTHONPATH=src python benchmarks/bench_fleet_ask.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import math
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.core.optimizer import BayesianOptimizer, prepare_ask_fleet
from repro.core.search import CBOSearch, SearchResult
from repro.core.space import (
    CategoricalParameter,
    IntegerParameter,
    RealParameter,
    SearchSpace,
)
from repro.core.surrogate import RandomForestSurrogate
from repro.service import CampaignRunner, CampaignSpec

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_fleet_ask.json"

NUM_CANDIDATES = 128
ASK_ROUNDS = 20
MAX_EVALUATIONS = 90


def make_space() -> SearchSpace:
    return SearchSpace(
        [
            IntegerParameter("batch", 1, 2048, log=True),
            RealParameter("rate", 0.1, 50.0, log=True),
            IntegerParameter("threads", 1, 31),
            CategoricalParameter("pool", ("fifo", "fifo_wait", "prio_wait")),
            CategoricalParameter.boolean("busy"),
        ]
    )


def run_function(config) -> float:
    value = abs(math.log(config["batch"]) - 5.0) + 0.3 * math.log(config["rate"])
    value += 0.05 * abs(config["threads"] - 16)
    value += 1.0 if config["pool"] == "prio_wait" else 0.0
    return 30.0 + 12.0 * value


# ------------------------------------------------------------------ ask phase
def make_optimizers(
    fleet_size: int, num_candidates: int
) -> List[BayesianOptimizer]:
    """K model-phase optimizers over one shared space, ragged histories."""
    space = make_space()
    optimizers = []
    for k in range(fleet_size):
        optimizer = BayesianOptimizer(
            space,
            surrogate=RandomForestSurrogate(n_estimators=6, seed=k),
            num_candidates=num_candidates,
            n_initial_points=4,
            seed=k,
        )
        configs = space.sample(10 + k % 5, np.random.default_rng(100 + k))
        optimizer.tell(configs, [run_function(c) for c in configs])
        optimizers.append(optimizer)
    return optimizers


def assert_asks_identical(
    solo: List[BayesianOptimizer], fleet: List[BayesianOptimizer]
) -> None:
    """One more proposal round from both cohorts must match bit for bit."""
    prepared_solo = [optimizer.prepare_ask(4) for optimizer in solo]
    prepared_fleet = prepare_ask_fleet([(optimizer, 4) for optimizer in fleet])
    for k, (a, b) in enumerate(zip(prepared_solo, prepared_fleet)):
        assert a.proposals == b.proposals, f"member {k}: proposals"
        assert a.fresh_configs == b.fresh_configs, f"member {k}: shortfall"
        if a.fresh is not None:
            assert (
                a.fresh.to_configurations() == b.fresh.to_configurations()
            ), f"member {k}: fresh candidates"
            assert a.encoded.tobytes() == b.encoded.tobytes(), f"member {k}: encoding"
            assert a.unit.tobytes() == b.unit.tobytes(), f"member {k}: unit sheet"
    for k, (a, b) in enumerate(zip(solo, fleet)):
        assert (
            a.rng.bit_generator.state == b.rng.bit_generator.state
        ), f"member {k}: RNG state"


def measure_ask_phase(
    reps: int,
    fleet_size: int,
    rounds: int = ASK_ROUNDS,
    num_candidates: int = NUM_CANDIDATES,
) -> Dict[str, object]:
    seq_times, fused_times = [], []
    solo = fleet = None
    for _ in range(reps):
        solo = make_optimizers(fleet_size, num_candidates)
        start = time.perf_counter()
        for _ in range(rounds):
            for optimizer in solo:
                optimizer.prepare_ask(4)
        seq_times.append(time.perf_counter() - start)
        fleet = make_optimizers(fleet_size, num_candidates)
        requests = [(optimizer, 4) for optimizer in fleet]
        start = time.perf_counter()
        for _ in range(rounds):
            prepare_ask_fleet(requests)
        fused_times.append(time.perf_counter() - start)
    assert_asks_identical(solo, fleet)
    t_seq, t_fused = min(seq_times), min(fused_times)
    return {
        "fleet_size": fleet_size,
        "rounds": rounds,
        "num_candidates": num_candidates,
        "sequential_s": t_seq,
        "fused_s": t_fused,
        "speedup": t_seq / max(t_fused, 1e-12),
        "bit_identical": True,
    }


# ----------------------------------------------------------------- campaigns
def make_campaigns(
    space: SearchSpace, num_campaigns: int, num_candidates: int
) -> List[CBOSearch]:
    return [
        CBOSearch(
            space,
            run_function,
            num_workers=6,
            surrogate=RandomForestSurrogate(n_estimators=6, seed=seed),
            num_candidates=num_candidates,
            n_initial_points=5,
            seed=seed,
        )
        for seed in range(num_campaigns)
    ]


def assert_results_identical(seq: List[SearchResult], bat: List[SearchResult]) -> None:
    for i, (a, b) in enumerate(zip(seq, bat)):
        assert len(a.history) == len(b.history), f"campaign {i}: history length"
        for ev_a, ev_b in zip(a.history, b.history):
            assert ev_a.configuration == ev_b.configuration, f"campaign {i}: configuration"
            assert ev_a.submitted == ev_b.submitted, f"campaign {i}: submitted"
            assert ev_a.completed == ev_b.completed, f"campaign {i}: completed"
            assert (ev_a.objective == ev_b.objective) or (
                math.isnan(ev_a.objective) and math.isnan(ev_b.objective)
            ), f"campaign {i}: objective"
        assert a.busy_intervals == b.busy_intervals, f"campaign {i}: busy intervals"
        assert a.worker_utilization == b.worker_utilization, f"campaign {i}: utilization"
        assert a.best_configuration == b.best_configuration, f"campaign {i}: incumbent"


def measure_campaigns(
    reps: int,
    num_campaigns: int,
    max_evaluations: int = MAX_EVALUATIONS,
    num_candidates: int = NUM_CANDIDATES,
) -> Dict[str, object]:
    space = make_space()
    solo_times, bat_times = [], []
    solo_results = bat_results = runner = None
    for _ in range(reps):
        def specs():
            return [
                CampaignSpec(
                    search=search,
                    max_time=float("inf"),
                    max_evaluations=max_evaluations,
                    label=f"ask-{i}",
                )
                for i, search in enumerate(
                    make_campaigns(space, num_campaigns, num_candidates)
                )
            ]

        solo_runner = CampaignRunner(specs(), batch_asks=False)
        start = time.perf_counter()
        solo_results = solo_runner.run()
        solo_times.append(time.perf_counter() - start)
        runner = CampaignRunner(specs(), batch_asks=True)
        start = time.perf_counter()
        bat_results = runner.run()
        bat_times.append(time.perf_counter() - start)
    assert_results_identical(solo_results, bat_results)
    assert runner.num_ask_fleet_passes > 0, "no ask was fused"
    t_solo, t_bat = min(solo_times), min(bat_times)
    return {
        "num_campaigns": num_campaigns,
        "max_evaluations": max_evaluations,
        "num_candidates": num_candidates,
        "evaluations_per_campaign": [r.num_evaluations for r in bat_results],
        "ask_fleet_passes": runner.num_ask_fleet_passes,
        "ask_fleet_members": runner.num_ask_fleet_members,
        "escape_hatch_s": t_solo,
        "batched_s": t_bat,
        "speedup": t_solo / max(t_bat, 1e-12),
        "bit_identical": True,
    }


def run_benchmark(reps: int = 3, output: Path = DEFAULT_OUTPUT, quick: bool = False):
    if quick:
        ask_8 = measure_ask_phase(1, fleet_size=4, rounds=6)
        ask_32 = measure_ask_phase(1, fleet_size=8, rounds=6)
        campaigns_8 = measure_campaigns(1, num_campaigns=4, max_evaluations=30)
        campaigns_32 = measure_campaigns(1, num_campaigns=8, max_evaluations=24)
    else:
        ask_8 = measure_ask_phase(reps, fleet_size=8)
        ask_32 = measure_ask_phase(reps, fleet_size=32)
        campaigns_8 = measure_campaigns(reps, num_campaigns=8)
        campaigns_32 = measure_campaigns(reps, num_campaigns=32, max_evaluations=45)
    for label, entry in (("ask  x8", ask_8), ("ask x32", ask_32)):
        print(
            f"{label}      seq {entry['sequential_s']*1e3:7.1f}ms  "
            f"fused {entry['fused_s']*1e3:7.1f}ms  "
            f"speedup {entry['speedup']:.2f}x  (bit-identical)"
        )
    for label, entry in (("camp x8", campaigns_8), ("camp x32", campaigns_32)):
        print(
            f"{label}      hatch {entry['escape_hatch_s']:6.2f}s  "
            f"batched {entry['batched_s']:6.2f}s  "
            f"speedup {entry['speedup']:.2f}x  "
            f"({entry['ask_fleet_passes']} fused passes covering "
            f"{entry['ask_fleet_members']} member asks, bit-identical)"
        )
    target = 1.0 if quick else 1.3
    payload = {
        "benchmark": "fleet_ask",
        "reps": 1 if quick else reps,
        "quick": quick,
        "description": (
            "Stacked prepare_ask_fleet proposal passes (one fused prior "
            "draw, shared dedup-key/unit/one-hot encoding, member-local "
            "dedup) vs sequential prepare_ask loops at 8 and 32 campaigns, "
            "and the same cohorts end to end through CampaignRunner with "
            "batch_asks on vs the escape hatch (results asserted "
            "bit-identical at full size). Times are best-of-reps on a "
            "1-CPU box."
        ),
        "ask_phase_8": ask_8,
        "ask_phase_32": ask_32,
        "campaigns_8": campaigns_8,
        "campaigns_32": campaigns_32,
        "acceptance": {
            "criterion": (
                "ask-phase >=1.3x fused vs sequential at 8+ campaigns on "
                "this box, with proposals, dedup decisions and RNG states "
                "asserted bitwise identical, and end-to-end runner results "
                "bit-identical to the batch_asks=False escape hatch"
            ),
            "ask_phase_8_speedup": ask_8["speedup"],
            "ask_phase_32_speedup": ask_32["speedup"],
            "campaigns_8_speedup": campaigns_8["speedup"],
            "campaigns_32_speedup": campaigns_32["speedup"],
            "bit_identical": bool(
                ask_8["bit_identical"]
                and ask_32["bit_identical"]
                and campaigns_8["bit_identical"]
                and campaigns_32["bit_identical"]
            ),
            "passed": bool(
                campaigns_8["bit_identical"]
                and max(ask_8["speedup"], ask_32["speedup"]) >= target
            ),
        },
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")
    status = "PASS" if payload["acceptance"]["passed"] else "FAIL"
    print(
        f"acceptance ({payload['acceptance']['criterion']}): "
        f"{ask_8['speedup']:.2f}x at 8, {ask_32['speedup']:.2f}x at 32 -> {status}"
    )
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="one rep at reduced size")
    parser.add_argument("--reps", type=int, default=3, help="repetitions per mode (best-of)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT, help="JSON output path")
    args = parser.parse_args(argv)
    return run_benchmark(reps=args.reps, output=args.output, quick=args.quick)


if __name__ == "__main__":
    main()
