"""Ablation: constant-liar strategy (exact refit vs. kernel-penalty approximation).

The paper uses the constant-liar strategy to generate multiple configurations
per batch.  The reproduction offers the literal algorithm (refit the surrogate
with a lie after every pick) and a fast approximation (a kernel penalty on the
acquisition scores around already-picked candidates); DESIGN.md documents the
substitution.  This benchmark verifies that the two produce searches of
comparable quality, and also quantifies the single-point baseline (no
multi-point proposal at all — the batch is filled with prior samples), which
is what the liar strategy is meant to improve on.
"""

import numpy as np
import pytest

from repro.analysis.figures import format_table
from repro.analysis.metrics import mean_best_runtime
from repro.core.search import CBOSearch
from common import SCALE, get_problem, print_block


def _run_variant(liar_strategy, num_candidates=256):
    problem = get_problem(SCALE.setups_fig3[0])
    search = CBOSearch(
        problem.space,
        problem.evaluate,
        num_workers=max(4, SCALE.num_workers // 2),
        surrogate="RF",
        liar_strategy=liar_strategy,
        num_candidates=num_candidates,
        refit_interval=SCALE.refit_interval,
        seed=17,
    )
    budget = SCALE.max_time / 2
    return search.run(max_time=budget), budget


def _run_all():
    results = {}
    for strategy in ("kernel_penalty", "refit"):
        results[strategy] = _run_variant(strategy)
    return results


@pytest.mark.benchmark(group="ablation")
def test_ablation_constant_liar_strategies(benchmark):
    """Exact constant liar vs. kernel-penalty approximation."""
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = []
    for strategy, (result, budget) in results.items():
        rows.append(
            [
                strategy,
                f"{result.best_runtime:.1f}",
                f"{mean_best_runtime(result, budget):.1f}",
                result.num_evaluations,
                f"{result.worker_utilization:.2f}",
            ]
        )
    print_block(
        "Ablation — constant-liar strategy",
        format_table(
            ["strategy", "best (s)", "mean best (s)", "#evals", "utilisation"], rows
        ),
    )

    exact, _ = results["refit"]
    approx, _ = results["kernel_penalty"]
    assert np.isfinite(exact.best_runtime) and np.isfinite(approx.best_runtime)
    # The approximation must not meaningfully degrade the search outcome.
    assert approx.best_runtime <= exact.best_runtime * 1.25
    assert exact.best_runtime <= approx.best_runtime * 1.25
