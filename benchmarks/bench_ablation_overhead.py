"""Ablation: manager-overhead model (analytic vs. measured).

The virtual-time search charges the manager for surrogate updates and
candidate generation.  The default is a calibrated analytic model (so results
do not depend on the speed of the machine running the reproduction); a
"measured" model that charges the actual wall-clock time of this repository's
own NumPy models is also available.  This benchmark runs the same search under
both models and confirms the qualitative conclusions (utilisation, number of
evaluations, best configuration) do not depend on the choice.
"""

import numpy as np
import pytest

from repro.analysis.figures import format_table
from repro.core.search import CBOSearch
from common import SCALE, get_problem, print_block


def _run(overhead):
    problem = get_problem(SCALE.setups_fig3[0])
    search = CBOSearch(
        problem.space,
        problem.evaluate,
        num_workers=SCALE.num_workers,
        surrogate="RF",
        overhead=overhead,
        refit_interval=SCALE.refit_interval,
        seed=13,
    )
    return search.run(max_time=SCALE.max_time / 2)


def _run_both():
    return {name: _run(name) for name in ("analytic", "measured")}


@pytest.mark.benchmark(group="ablation")
def test_ablation_overhead_models(benchmark):
    """Analytic vs. measured manager-overhead accounting."""
    results = benchmark.pedantic(_run_both, rounds=1, iterations=1)

    rows = [
        [
            name,
            f"{result.best_runtime:.1f}",
            result.num_evaluations,
            f"{result.worker_utilization:.2f}",
        ]
        for name, result in results.items()
    ]
    print_block(
        "Ablation — manager-overhead model",
        format_table(["overhead model", "best (s)", "#evals", "utilisation"], rows),
    )

    analytic = results["analytic"]
    measured = results["measured"]
    assert np.isfinite(analytic.best_runtime) and np.isfinite(measured.best_runtime)
    # Conclusions should agree across the two accounting schemes.
    assert abs(analytic.worker_utilization - measured.worker_utilization) < 0.25
    assert measured.best_runtime <= analytic.best_runtime * 1.3
    assert analytic.best_runtime <= measured.best_runtime * 1.3
