"""Fig. 4 (f): worker utilisation over time for one RF job and one GP job.

The paper's Fig. 4 (f) shows that a random-forest-driven search keeps the 128
workers busy close to 100 % of the time for the whole hour, while the
Gaussian-process-driven search degrades as the number of collected evaluations
grows (each GP update is O(n³) and eventually takes minutes, starving the
workers).

The benchmark runs one job of each on the full 20-parameter setup and prints
the utilisation per time window.
"""

import numpy as np
import pytest

from repro.analysis.figures import format_table
from repro.analysis.metrics import utilization_timeline
from repro.core.search import CBOSearch
from common import SCALE, get_problem, print_block


def _run_one(surrogate):
    problem = get_problem(SCALE.setups_fig4[-1])
    search = CBOSearch(
        problem.space,
        problem.evaluate,
        num_workers=SCALE.num_workers,
        surrogate=surrogate,
        refit_interval=SCALE.refit_interval,
        seed=11,
    )
    return search.run(max_time=SCALE.max_time)


def _run_both():
    return {"RF": _run_one("RF"), "GP": _run_one("GP")}


@pytest.mark.benchmark(group="fig4")
def test_fig4_utilization_over_time(benchmark):
    """Regenerate the Fig. 4 (f) utilisation timelines for RF and GP."""
    results = benchmark.pedantic(_run_both, rounds=1, iterations=1)

    window = SCALE.max_time / 10.0
    timelines = {
        name: utilization_timeline(
            result.busy_intervals, SCALE.num_workers, SCALE.max_time, window=window
        )
        for name, result in results.items()
    }
    headers = ["window center (s)", "RF utilisation", "GP utilisation"]
    rows = [
        [f"{rf_point[0]:.0f}", f"{rf_point[1]:.2f}", f"{gp_point[1]:.2f}"]
        for rf_point, gp_point in zip(timelines["RF"], timelines["GP"])
    ]
    body = format_table(headers, rows) + (
        f"\n\noverall: RF={results['RF'].worker_utilization:.2f} "
        f"({results['RF'].num_evaluations} evals), "
        f"GP={results['GP'].worker_utilization:.2f} "
        f"({results['GP'].num_evaluations} evals)"
    )
    print_block("Fig. 4 (f) — worker utilisation over time (RF vs GP)", body)

    # Paper shape: RF stays near full utilisation; the GP never does better.
    # The dramatic GP collapse (and its far smaller evaluation count) needs
    # hundreds of accumulated observations, i.e. the "paper" scale.
    rf_mean = np.mean([u for _, u in timelines["RF"]])
    assert rf_mean > 0.75
    assert results["GP"].worker_utilization <= results["RF"].worker_utilization + 0.05
    if SCALE.name == "paper":
        assert results["GP"].num_evaluations <= results["RF"].num_evaluations
        gp_values = [u for _, u in timelines["GP"]]
        assert np.mean(gp_values[-3:]) <= np.mean(gp_values[:3]) + 0.05
