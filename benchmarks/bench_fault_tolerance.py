"""Crash-safe journaling overhead on the fault-free path — and resume checks.

The campaign journal (:mod:`repro.core.journal`) exists for the unhappy path:
a crashed campaign resumes from its sidecar directory bit-identical to an
uninterrupted run.  The cost it is allowed to impose on the *happy* path is
bounded: this benchmark runs the same fault-free campaign unjournaled and
journaled (per-tick checkpoints) and measures the wall-clock overhead, in two
durability modes:

* **buffered** (``journal_fsync=False``) — data files are flushed but not
  fsynced at each checkpoint; safe against process crashes, not power loss.
* **fsync** (``journal_fsync=True``, the default) — every checkpoint fsyncs
  the data files before atomically replacing ``checkpoint.json``.

Both journaled runs are asserted **bit-identical** to the unjournaled
baseline, and a crash-at-arbitrary-tick resume is asserted bit-identical as
well (the correctness contract, measured here so a perf regression cannot
silently trade it away).  Times are best-of-``--reps``.

Results are written to ``BENCH_fault_tolerance.json`` (repo root by default).
Acceptance bar: buffered journaling overhead < 5% on the fault-free path,
all bit-identity checks green.

Run with::

    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).parent))  # for `common` when run directly

from repro.core.search import CBOSearch, SearchResult
from repro.core.surrogate import RandomForestSurrogate
from repro.hep import HEPWorkflowProblem

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_fault_tolerance.json"

SETUP = "4n-2s-20p"
KNOBS = dict(
    num_workers=16,
    max_evaluations=96,
    num_candidates=128,
    n_initial_points=10,
    n_estimators=12,
)


def fresh_problem() -> HEPWorkflowProblem:
    """A fresh problem per campaign, with run-to-run noise disabled.

    ``evaluate`` would otherwise advance an internal noise RNG per call —
    external state the journal deliberately does not capture (a real
    application's noise does not replay either).  The resume bit-identity
    contract covers deterministic run functions, so the benchmark pins it
    with one."""
    return HEPWorkflowProblem.from_setup(SETUP, seed=1, noise=0.0)


def make_search(problem: HEPWorkflowProblem, seed: int = 0) -> CBOSearch:
    return CBOSearch(
        problem.space,
        problem.evaluate,
        num_workers=KNOBS["num_workers"],
        surrogate=RandomForestSurrogate(n_estimators=KNOBS["n_estimators"], seed=seed),
        num_candidates=KNOBS["num_candidates"],
        n_initial_points=KNOBS["n_initial_points"],
        seed=seed,
    )


def run_campaign(journal_dir=None, journal_fsync=True) -> SearchResult:
    execution = make_search(fresh_problem()).start(
        max_time=float("inf"),
        max_evaluations=KNOBS["max_evaluations"],
        journal_dir=journal_dir,
        journal_fsync=journal_fsync,
    )
    while execution.advance():
        pass
    return execution.result()


def assert_bit_identical(a: SearchResult, b: SearchResult, what: str) -> None:
    assert len(a.history) == len(b.history), f"{what}: history length"
    for ev_a, ev_b in zip(a.history, b.history):
        assert ev_a.configuration == ev_b.configuration, f"{what}: configuration"
        assert ev_a.submitted == ev_b.submitted, f"{what}: submitted"
        assert ev_a.completed == ev_b.completed, f"{what}: completed"
        assert (ev_a.objective == ev_b.objective) or (
            math.isnan(ev_a.objective) and math.isnan(ev_b.objective)
        ), f"{what}: objective"
    assert a.busy_intervals == b.busy_intervals, f"{what}: busy intervals"
    assert a.best_configuration == b.best_configuration, f"{what}: best"


def check_resume(baseline: SearchResult, kill_tick: int, workdir: Path) -> None:
    """Kill a journaled campaign at ``kill_tick`` and resume it to the end."""
    journal = workdir / f"resume-{kill_tick}"
    execution = make_search(fresh_problem()).start(
        max_time=float("inf"),
        max_evaluations=KNOBS["max_evaluations"],
        journal_dir=journal,
    )
    for _ in range(kill_tick):
        if not execution.advance():
            break
    resumed = make_search(fresh_problem()).resume(journal)
    while resumed.advance():
        pass
    assert_bit_identical(baseline, resumed.result(), f"resume@{kill_tick}")


def measure(reps: int, workdir: Path) -> Dict[str, object]:
    base_times: List[float] = []
    modes: Dict[str, List[float]] = {"buffered": [], "fsync": []}
    baseline = None
    for rep in range(reps):
        start = time.perf_counter()
        baseline = run_campaign()
        base_times.append(time.perf_counter() - start)
        for mode, fsync in (("buffered", False), ("fsync", True)):
            journal = workdir / f"{mode}-{rep}"
            start = time.perf_counter()
            journaled = run_campaign(journal_dir=journal, journal_fsync=fsync)
            modes[mode].append(time.perf_counter() - start)
            assert_bit_identical(baseline, journaled, f"journaled/{mode}")
    t_base = min(base_times)
    entry = {
        "knobs": dict(KNOBS),
        "num_evaluations": baseline.num_evaluations,
        "unjournaled_s": t_base,
    }
    for mode in modes:
        t_mode = min(modes[mode])
        entry[f"{mode}_s"] = t_mode
        entry[f"{mode}_overhead"] = (t_mode - t_base) / t_base
    return entry


def run_benchmark(reps: int = 3, kill_ticks=(3, 11), output: Path = DEFAULT_OUTPUT):
    with tempfile.TemporaryDirectory(prefix="bench-fault-") as tmp:
        workdir = Path(tmp)
        entry = measure(reps, workdir)
        baseline = run_campaign()
        for kill_tick in kill_ticks:
            check_resume(baseline, kill_tick, workdir)
    print(
        f"unjournaled {entry['unjournaled_s']:6.2f}s  "
        f"buffered {entry['buffered_s']:6.2f}s ({entry['buffered_overhead']:+.1%})  "
        f"fsync {entry['fsync_s']:6.2f}s ({entry['fsync_overhead']:+.1%})"
    )
    overhead = entry["buffered_overhead"]
    payload = {
        "benchmark": "fault_tolerance",
        "setup": SETUP,
        "reps": reps,
        "kill_ticks": list(kill_ticks),
        "description": (
            "One fault-free RF campaign run unjournaled vs journaled with "
            "per-tick checkpoints (buffered and fsync durability modes), all "
            "asserted bit-identical, plus crash-at-tick resume checks "
            "asserted bit-identical to the uninterrupted run. Times are "
            "best-of-reps."
        ),
        "results": entry,
        "acceptance": {
            "criterion": "buffered journaling overhead < 5% on the fault-free path, bit-identical, resumes bit-identical",
            "buffered_overhead": overhead,
            "fsync_overhead": entry["fsync_overhead"],
            "bit_identical": True,
            "resume_bit_identical": True,
            "passed": bool(overhead < 0.05),
        },
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")
    status = "PASS" if payload["acceptance"]["passed"] else "FAIL"
    print(f"acceptance ({payload['acceptance']['criterion']}): {overhead:+.1%} -> {status}")
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="one rep, one resume check")
    parser.add_argument("--reps", type=int, default=3, help="repetitions per mode (best-of)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT, help="JSON output path")
    args = parser.parse_args(argv)
    if args.quick:
        return run_benchmark(reps=1, kill_ticks=(5,), output=args.output)
    return run_benchmark(reps=args.reps, output=args.output)


if __name__ == "__main__":
    main()
