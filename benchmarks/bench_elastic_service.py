"""Elastic tuning service under a campaign burst — arrivals, latency, fusion.

The service scenario of the elastic runner: a burst of mixed-surrogate
campaigns (RF, GP, RF+periodic-VAE-refresh) arrives in waves at an
:class:`~repro.service.ElasticCampaignRunner` with bounded admission
(``max_inflight``).  Campaigns join mid-flight, fuse into whatever fleet
groups exist on their tick, and leave when their budget is spent.  The
benchmark records:

* the **arrival curve** — campaigns admitted and completed per tick, plus
  the queue depth over time;
* **completion times** — ticks from arrival to completion (p50 / p95), i.e.
  the latency a tenant observes including time queued for admission;
* the **fleet-fusion hit rate** — the fraction of surrogate refits that ran
  inside a fused fleet pass rather than solo, the quantity elasticity puts
  at risk (a shrinking cohort loses fusion partners);
* end-to-end wall clock vs running every campaign sequentially.

Every campaign's history is asserted **bit-identical** to its solo
``CBOSearch.run`` at full size — elasticity changes scheduling, never
results.  Results are written to ``BENCH_elastic_service.json``.

Run with::

    PYTHONPATH=src python benchmarks/bench_elastic_service.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import math
import time
from pathlib import Path
from typing import Dict, List

from repro.core.search import CBOSearch, SearchResult
from repro.core.space import (
    CategoricalParameter,
    IntegerParameter,
    RealParameter,
    SearchSpace,
)
from repro.core.surrogate import RandomForestSurrogate
from repro.service import CampaignSpec, ElasticCampaignRunner

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_elastic_service.json"

NUM_CAMPAIGNS = 36
MAX_INFLIGHT = 8
WAVE_SIZE = 6
WAVE_SPACING = 3  # ticks between arrival waves


def make_space() -> SearchSpace:
    return SearchSpace(
        [
            IntegerParameter("batch", 1, 1024, log=True),
            RealParameter("rate", 0.1, 50.0, log=True),
            CategoricalParameter("pool", ("fifo", "prio", "wait")),
            CategoricalParameter.boolean("busy"),
        ]
    )


def run_function(config) -> float:
    value = abs(math.log(config["batch"]) - 4.0) + 0.3 * math.log(config["rate"])
    value += 1.0 if config["pool"] == "wait" else 0.0
    return 30.0 + 12.0 * value


# A rotation of heterogeneous campaign kinds: fleet groups must re-form from
# whatever mix is in flight, so the burst cycles through all three.
def make_search(index: int, space: SearchSpace) -> CBOSearch:
    kind = ("rf", "gp", "refresh")[index % 3]
    if kind == "gp":
        return CBOSearch(
            space, run_function, num_workers=4, surrogate="GP",
            num_candidates=32, n_initial_points=4, seed=index,
        )
    params = dict(
        num_workers=6,
        surrogate=RandomForestSurrogate(n_estimators=6, seed=index),
        num_candidates=48,
        n_initial_points=5,
        seed=index,
    )
    if kind == "refresh":
        params.update(
            prior_refresh_interval=8, prior_refresh_top_k=8,
            prior_refresh_epochs=12,
        )
    return CBOSearch(space, run_function, **params)


def budget_of(index: int) -> Dict[str, float]:
    kind = ("rf", "gp", "refresh")[index % 3]
    return {
        "rf": dict(max_time=600.0, max_evaluations=18),
        "gp": dict(max_time=400.0, max_evaluations=12),
        "refresh": dict(max_time=700.0, max_evaluations=24),
    }[kind]


def assert_results_identical(a: SearchResult, b: SearchResult, label: str) -> None:
    assert len(a.history) == len(b.history), f"{label}: history length"
    for ev_a, ev_b in zip(a.history, b.history):
        assert ev_a.configuration == ev_b.configuration, f"{label}: configuration"
        assert ev_a.submitted == ev_b.submitted, f"{label}: submitted"
        assert ev_a.completed == ev_b.completed, f"{label}: completed"
        assert (ev_a.objective == ev_b.objective) or (
            math.isnan(ev_a.objective) and math.isnan(ev_b.objective)
        ), f"{label}: objective"
    assert a.busy_intervals == b.busy_intervals, f"{label}: busy intervals"
    assert a.best_configuration == b.best_configuration, f"{label}: incumbent"


def percentile(values: List[int], q: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return float("nan")
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (position - low)


def measure(num_campaigns: int) -> Dict[str, object]:
    space = make_space()

    # Sequential baseline: every campaign solo, back to back.
    start = time.perf_counter()
    solo = [
        make_search(index, space).run(**budget_of(index))
        for index in range(num_campaigns)
    ]
    sequential_s = time.perf_counter() - start

    # Elastic burst: waves of arrivals under bounded admission.
    runner = ElasticCampaignRunner(max_inflight=MAX_INFLIGHT)
    arrival_of = {}
    for index in range(num_campaigns):
        arrival = (index // WAVE_SIZE) * WAVE_SPACING
        arrival_of[index] = arrival
        runner.admit(
            CampaignSpec(
                search=make_search(index, space),
                label=f"svc-{index}",
                **budget_of(index),
            ),
            arrival_tick=arrival,
        )

    completed_tick: Dict[int, int] = {}
    admitted_tick: Dict[int, int] = {}
    curve = []
    start = time.perf_counter()
    while runner._active or runner._admission_queue:
        runner.tick()
        tick = runner.num_ticks
        for index in runner.admitted_order:
            admitted_tick.setdefault(index, tick)
        for index, execution in enumerate(runner._executions):
            if (
                execution is not None
                and execution.finished
                and index not in completed_tick
            ):
                completed_tick[index] = tick
        curve.append(
            {
                "tick": tick,
                "admitted": len(admitted_tick),
                "completed": len(completed_tick),
                "inflight": runner.num_inflight,
                "waiting": runner.num_waiting,
            }
        )
    elastic_s = time.perf_counter() - start

    results = runner.results()
    for index in range(num_campaigns):
        assert_results_identical(solo[index], results[index], f"campaign {index}")

    latencies = [
        completed_tick[index] - arrival_of[index] for index in range(num_campaigns)
    ]
    queue_delays = [
        admitted_tick[index] - arrival_of[index] for index in range(num_campaigns)
    ]
    fused = runner.num_fleet_fitted_surrogates + runner.num_gp_fleet_members
    solo_fits = runner.num_solo_fits
    return {
        "num_campaigns": num_campaigns,
        "max_inflight": MAX_INFLIGHT,
        "wave_size": WAVE_SIZE,
        "wave_spacing_ticks": WAVE_SPACING,
        "total_ticks": runner.num_ticks,
        "arrival_curve": curve,
        "completion_ticks": {
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "max": max(latencies),
        },
        "admission_delay_ticks": {
            "p50": percentile(queue_delays, 0.50),
            "p95": percentile(queue_delays, 0.95),
            "max": max(queue_delays),
        },
        "fleet_fusion": {
            "fused_member_fits": fused,
            "solo_fits": solo_fits,
            "hit_rate": fused / max(fused + solo_fits, 1),
            "fleet_fit_passes": runner.num_fleet_fits,
            "gp_fleet_extends": runner.num_gp_fleet_extends,
            "gp_fleet_full_fits": runner.num_gp_fleet_full_fits,
            "vae_fleet_fits": runner.num_vae_fleet_fits,
        },
        "sequential_s": sequential_s,
        "elastic_s": elastic_s,
        "speedup": sequential_s / max(elastic_s, 1e-12),
        "bit_identical": True,
    }


def run_benchmark(output: Path = DEFAULT_OUTPUT, quick: bool = False):
    num_campaigns = 12 if quick else NUM_CAMPAIGNS
    burst = measure(num_campaigns)
    fusion = burst["fleet_fusion"]
    print(
        f"burst        {num_campaigns} campaigns in waves of {WAVE_SIZE}, "
        f"max_inflight {MAX_INFLIGHT}: {burst['total_ticks']} ticks"
    )
    print(
        f"completion   p50 {burst['completion_ticks']['p50']:.1f}  "
        f"p95 {burst['completion_ticks']['p95']:.1f} ticks from arrival "
        f"(admission delay p95 {burst['admission_delay_ticks']['p95']:.1f})"
    )
    print(
        f"fusion       {fusion['fused_member_fits']} fused member fits vs "
        f"{fusion['solo_fits']} solo -> hit rate {fusion['hit_rate']:.2f}"
    )
    print(
        f"wall clock   sequential {burst['sequential_s']:.2f}s  "
        f"elastic {burst['elastic_s']:.2f}s  "
        f"speedup {burst['speedup']:.2f}x  (bit-identical)"
    )
    payload = {
        "benchmark": "elastic_service",
        "quick": quick,
        "description": (
            "A burst of mixed RF/GP/VAE-refresh campaigns arriving in waves "
            "at an ElasticCampaignRunner with bounded admission. Reports the "
            "arrival/completion curve, per-campaign completion latency in "
            "ticks, the fleet-fusion hit rate (fused member fits over all "
            "fits), and end-to-end wall clock vs sequential solo runs. Every "
            "campaign's history is asserted bit-identical to its solo run."
        ),
        "burst": burst,
        "acceptance": {
            "criterion": (
                "all campaigns complete under admission control with "
                "per-campaign histories bit-identical to solo runs and a "
                "non-zero fleet-fusion hit rate at full size"
            ),
            "bit_identical": burst["bit_identical"],
            "fusion_hit_rate": fusion["hit_rate"],
            "passed": bool(burst["bit_identical"] and fusion["hit_rate"] > 0.0),
        },
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")
    status = "PASS" if payload["acceptance"]["passed"] else "FAIL"
    print(f"acceptance ({payload['acceptance']['criterion']}): {status}")
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced burst size")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT, help="JSON output path")
    args = parser.parse_args(argv)
    return run_benchmark(output=args.output, quick=args.quick)


if __name__ == "__main__":
    main()
