"""Multi-core runner scaling: tick stepping, scoring, end-to-end campaigns.

Measures the ``step_workers`` execution layer of
:class:`~repro.service.runner.CampaignRunner` over 1/2/4/8 workers:

* **tick stepping** — a mixed RF/GP cohort stepped with ``step_shards =
  step_workers`` (shard-parallel ticks; fusion groups shrink to the shard);
* **scoring** — one optimizer's sharded candidate scoring
  (``score_shards``) mapped over a thread-pool ``score_executor``;
* **end-to-end** — the same cohort with ``step_shards=1`` (global fusion
  groups kept; spare workers parallelise the intra-shard scoring chunks).

Every mode asserts **bit-identity** against the 1-worker run in-benchmark —
worker count may only change wall-clock — and the tick-stepping entry
records the fusion counters per worker count, quantifying the documented
trade: fusion groups form within a shard, so cross-shard members fall back
to solo fits (`docs/architecture.md` §15).

On a single-CPU container the curves record thread overhead rather than
speedup; the numbers are still the contract's measurement (identity holds,
and the fusion/parallelism trade is visible in the counters either way).

Run with::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))  # for `common` when run directly

from repro.core.optimizer import BayesianOptimizer
from repro.core.search import CBOSearch
from repro.core.space import (
    CategoricalParameter,
    IntegerParameter,
    RealParameter,
    SearchSpace,
)
from repro.core.surrogate import RandomForestSurrogate
from repro.service import CampaignRunner, CampaignSpec

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_parallel.json"

WORKER_COUNTS = (1, 2, 4, 8)


def make_space() -> SearchSpace:
    return SearchSpace(
        [
            IntegerParameter("batch", 1, 1024, log=True),
            RealParameter("rate", 0.1, 50.0, log=True),
            CategoricalParameter("pool", ("fifo", "prio", "wait")),
            CategoricalParameter.boolean("busy"),
        ]
    )


def run_function(config) -> float:
    value = abs(math.log(config["batch"]) - 4.0) + 0.3 * math.log(config["rate"])
    value += 1.0 if config["pool"] == "wait" else 0.0
    return 30.0 + 12.0 * value


def make_specs(num_campaigns: int, max_evaluations: int) -> List[CampaignSpec]:
    """A mixed RF/GP cohort (stateful: build fresh per run)."""
    space = make_space()
    specs = []
    for i in range(num_campaigns):
        if i % 3 == 2:
            search = CBOSearch(
                space,
                run_function,
                num_workers=4,
                surrogate="GP",
                num_candidates=32,
                n_initial_points=4,
                seed=100 + i,
            )
        else:
            search = CBOSearch(
                space,
                run_function,
                num_workers=6,
                surrogate=RandomForestSurrogate(n_estimators=6, seed=100 + i),
                num_candidates=48,
                n_initial_points=5,
                seed=100 + i,
            )
        specs.append(
            CampaignSpec(
                search=search,
                max_time=float("inf"),
                max_evaluations=max_evaluations,
                label=f"campaign-{i}",
            )
        )
    return specs


def assert_identical(a, b) -> None:
    assert len(a.history) == len(b.history)
    for ev_a, ev_b in zip(a.history, b.history):
        assert ev_a.configuration == ev_b.configuration
        assert ev_a.submitted == ev_b.submitted
        assert ev_a.completed == ev_b.completed
    assert a.busy_intervals == b.busy_intervals
    assert a.best_configuration == b.best_configuration


def best_of(reps: int, thunk) -> float:
    return min(thunk() for _ in range(reps))


def bench_tick_stepping(
    num_campaigns: int, max_evaluations: int, reps: int, workers=WORKER_COUNTS
) -> Dict:
    """Shard-parallel ticks: step_shards = step_workers (fusion shrinks)."""
    reference = CampaignRunner(
        make_specs(num_campaigns, max_evaluations), step_workers=1
    )
    baseline = reference.run()
    curve = {}
    for count in workers:
        counters = {}

        def timed(count=count, counters=counters):
            runner = CampaignRunner(
                make_specs(num_campaigns, max_evaluations),
                step_workers=count,
                step_shards=count,
            )
            start = time.perf_counter()
            results = runner.run()
            elapsed = time.perf_counter() - start
            for a, b in zip(baseline, results):
                assert_identical(a, b)  # the bit-identity contract
            counters.update(
                fleet_fits=runner.num_fleet_fits,
                gp_fleet_passes=runner.num_gp_fleet_full_fits
                + runner.num_gp_fleet_extends,
                solo_fits=runner.num_solo_fits,
                ask_fleet_passes=runner.num_ask_fleet_passes,
            )
            return elapsed

        curve[str(count)] = {
            "seconds": round(best_of(reps, timed), 4),
            "bit_identical": True,
            # Fusion hit rate falls as shards multiply: cross-shard group
            # members take the documented solo fallback.
            "fusion_counters": dict(counters),
        }
    return curve


def bench_scoring(reps: int, workers=WORKER_COUNTS) -> Dict:
    """Sharded candidate scoring over a thread-pool score_executor."""
    space = make_space()
    opt = BayesianOptimizer(
        space,
        surrogate=RandomForestSurrogate(n_estimators=24, seed=3),
        n_initial_points=5,
        seed=3,
    )
    rng = np.random.default_rng(3)
    train = space.sample(400, rng)
    opt.tell(train, [run_function(c) for c in train])
    encoded = space.to_numeric_array(space.sample_columns(20_000, rng))
    mean_ref, std_ref = opt.surrogate.predict(encoded)
    curve = {}
    for count in workers:
        executor = ThreadPoolExecutor(max_workers=count) if count > 1 else None
        opt.score_shards = count
        opt.score_executor = executor

        def timed():
            start = time.perf_counter()
            mean, std = opt._predict_candidates(encoded)
            elapsed = time.perf_counter() - start
            assert np.array_equal(mean, mean_ref)  # sharding is invisible
            assert np.array_equal(std, std_ref)
            return elapsed

        curve[str(count)] = {
            "seconds": round(best_of(reps, timed), 4),
            "bit_identical": True,
            "rows": int(encoded.shape[0]),
        }
        if executor is not None:
            executor.shutdown()
    opt.score_shards, opt.score_executor = 1, None
    return curve


def bench_end_to_end(
    num_campaigns: int, max_evaluations: int, reps: int, workers=WORKER_COUNTS
) -> Dict:
    """Whole campaigns with global fusion kept (step_shards=1)."""
    baseline = CampaignRunner(
        make_specs(num_campaigns, max_evaluations), step_workers=1
    ).run()
    curve = {}
    for count in workers:

        def timed(count=count):
            runner = CampaignRunner(
                make_specs(num_campaigns, max_evaluations),
                step_workers=count,
                step_shards=1,
            )
            start = time.perf_counter()
            results = runner.run()
            elapsed = time.perf_counter() - start
            for a, b in zip(baseline, results):
                assert_identical(a, b)
            return elapsed

        curve[str(count)] = {
            "seconds": round(best_of(reps, timed), 4),
            "bit_identical": True,
        }
    return curve


def run_benchmark(
    num_campaigns: int = 8,
    max_evaluations: int = 28,
    reps: int = 2,
    workers=WORKER_COUNTS,
    output: Path = DEFAULT_OUTPUT,
):
    curves = {}
    print(f"cohort: {num_campaigns} campaigns x {max_evaluations} evaluations")
    curves["tick_stepping"] = bench_tick_stepping(
        num_campaigns, max_evaluations, reps, workers
    )
    curves["scoring"] = bench_scoring(reps, workers)
    curves["end_to_end"] = bench_end_to_end(
        num_campaigns, max_evaluations, reps, workers
    )
    for name, curve in curves.items():
        base = curve[str(workers[0])]["seconds"]
        line = "  ".join(
            f"{count}w {entry['seconds']:6.3f}s ({base / entry['seconds']:.2f}x)"
            for count, entry in curve.items()
        )
        print(f"{name:14s} {line}")
    stepping = curves["tick_stepping"]
    payload = {
        "benchmark": "parallel_step",
        "num_campaigns": num_campaigns,
        "max_evaluations": max_evaluations,
        "reps": reps,
        "cpu_count": os.cpu_count(),
        "description": (
            "Multi-core CampaignRunner scaling over step_workers in "
            f"{list(workers)}: shard-parallel tick stepping (step_shards="
            "step_workers), thread-pool sharded candidate scoring "
            "(score_executor), and end-to-end campaigns with global fusion "
            "(step_shards=1). Every mode asserts bitwise identity to the "
            "1-worker run in-benchmark; fusion counters per worker count "
            "show the cross-shard solo fallback. On boxes with fewer cores "
            "than workers the curves measure thread overhead, not speedup."
        ),
        "curves": curves,
        "acceptance": {
            "criterion": (
                "all worker counts bit-identical to 1 worker in every mode; "
                "fusion counters recorded per shard count"
            ),
            "bit_identical": all(
                entry["bit_identical"]
                for curve in curves.values()
                for entry in curve.values()
            ),
            "fusion_solo_fallback_visible": (
                stepping[str(workers[-1])]["fusion_counters"]["solo_fits"]
                >= stepping[str(workers[0])]["fusion_counters"]["solo_fits"]
            ),
            "passed": True,
        },
    }
    payload["acceptance"]["passed"] = bool(
        payload["acceptance"]["bit_identical"]
    )
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")
    status = "PASS" if payload["acceptance"]["passed"] else "FAIL"
    print(f"acceptance ({payload['acceptance']['criterion']}): {status}")
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small cohort, 1 rep, 1/2/4 workers"
    )
    parser.add_argument("--reps", type=int, default=2, help="repetitions (best-of)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    if args.quick:
        return run_benchmark(
            num_campaigns=4,
            max_evaluations=16,
            reps=1,
            workers=(1, 2, 4),
            output=args.output,
        )
    return run_benchmark(reps=args.reps, output=args.output)


if __name__ == "__main__":
    main()
