"""Fig. 5 (a)-(c): comparison with state-of-the-art frameworks.

The paper compares DeepHyper (1 and 10 workers), GPtune and HiPerBOt — each
with and without transfer learning — plus random sampling, on the 4n-2s-20p
and 8n-2s-20p setups.  To make the experiment laptop-reproducible the real
workflow is replaced by a random-forest surrogate of its run time trained on
random-sampling data; every method starts from the same 10 initial samples and
runs for one hour of search time.

Expected shape (paper):

* all frameworks converge to comparably good configurations, with an edge for
  DeepHyper with 10 workers (Fig. 5a);
* mean best configurations are similar, except TL-HIPERBOT which degrades
  (Fig. 5b);
* DeepHyper completes by far the most evaluations, especially with TL and
  with 10 workers; sequential GPtune/HiPerBOt complete few (Fig. 5c, log scale).
"""

import numpy as np
import pytest

from repro.analysis.figures import format_table
from repro.analysis.metrics import mean_best_runtime
from repro.core.search import CBOSearch
from repro.frameworks import DeepHyperSearch, GPTuneLike, HiPerBOtLike, RandomSearch
from repro.hep import SurrogateRuntime
from common import SCALE, get_problem, print_block

#: Search-time budget of the comparison (1 hour in the paper; halved at the
#: reduced benchmark scale to keep the suite short).
BUDGET = 3600.0 if SCALE.name == "paper" else 1800.0


def _build_surrogate(setup):
    problem = get_problem(setup)
    return problem, SurrogateRuntime.train(
        problem, num_samples=SCALE.surrogate_train_samples, seed=5
    )


def _source_history(problem, surrogate):
    """Source data for the TL variants: a prior DeepHyper-style run."""
    search = CBOSearch(
        problem.space, surrogate, num_workers=10, surrogate="RF",
        refit_interval=SCALE.refit_interval, seed=21,
    )
    return search.run(max_time=BUDGET).history


def _run_fig5():
    all_results = {}
    for setup in SCALE.setups_fig5:
        problem, surrogate = _build_surrogate(setup)
        source = _source_history(problem, surrogate)
        initial = problem.space.sample(10, np.random.default_rng(123))
        frameworks = {
            "RAND": RandomSearch(problem.space, surrogate, num_workers=1, seed=3),
            "DH1W": DeepHyperSearch(
                problem.space, surrogate, num_workers=1,
                refit_interval=SCALE.refit_interval, seed=3,
            ),
            "DH10W": DeepHyperSearch(
                problem.space, surrogate, num_workers=10,
                refit_interval=SCALE.refit_interval, seed=3,
            ),
            "GPTUNE": GPTuneLike(problem.space, surrogate, seed=3),
            "HIPERBOT": HiPerBOtLike(problem.space, surrogate, seed=3),
        }
        results = {}
        for with_tl in (False, True):
            for name, framework in frameworks.items():
                if with_tl and name == "RAND":
                    continue
                result = framework.run(
                    BUDGET,
                    initial_configurations=initial,
                    source_history=source if with_tl else None,
                )
                results[result.name] = result
        all_results[setup] = results
    return all_results


@pytest.mark.benchmark(group="fig5")
def test_fig5_framework_comparison(benchmark):
    """Regenerate the Fig. 5 framework comparison on the run-time surrogate."""
    all_results = benchmark.pedantic(_run_fig5, rounds=1, iterations=1)

    headers = ["setup", "method", "best (s)", "mean best (s)", "#evals"]
    rows = []
    for setup, results in all_results.items():
        for name, result in results.items():
            rows.append(
                [
                    setup,
                    name,
                    f"{result.best_runtime:.1f}",
                    f"{mean_best_runtime(result, BUDGET):.1f}",
                    result.num_evaluations,
                ]
            )
    print_block(
        "Fig. 5 — framework comparison on the learned run-time surrogate "
        f"({SCALE.name} scale)",
        format_table(headers, rows),
    )

    for setup, results in all_results.items():
        evals = {name: r.num_evaluations for name, r in results.items()}
        bests = {name: r.best_runtime for name, r in results.items()}

        # Fig. 5c: the 10-worker DeepHyper variants complete the most
        # evaluations (transfer learning increases the count further, as the
        # paper also observes), while the sequential frameworks complete
        # comparatively few.
        dh10_best_count = max(evals["DH10W"], evals.get("TL-DH10W", 0))
        assert dh10_best_count == max(evals.values())
        assert evals["DH10W"] > 2 * evals["GPTUNE"]
        assert evals["DH10W"] > 2 * evals["HIPERBOT"]

        # Fig. 5a: every framework converges to a reasonable configuration —
        # within a modest factor of the best one found by any of them.
        best_overall = min(bests.values())
        for name, value in bests.items():
            assert value <= 2.5 * best_overall, f"{setup}/{name} too far from best"

        # DeepHyper with 10 workers is at least on par with the sequential
        # frameworks on the best configuration.
        assert bests["DH10W"] <= min(bests["GPTUNE"], bests["HIPERBOT"]) * 1.2
