"""Batched GP fleet math vs. sequential GP campaigns — wall-clock speedup.

GP-surrogate campaigns pay an :math:`O(n^3)` full refit, an :math:`O(n^2 m)`
incremental factor extension per tell and an :math:`O(n^2 n_c)` posterior
evaluation per ask.  The batched
:class:`~repro.core.surrogate.gaussian_process.GPFleet` shares the NumPy
dispatch overhead of those steps across the K campaigns of one
:class:`~repro.service.CampaignRunner` tick.  This benchmark measures the
effect three ways:

* **extend** — K fitted GPs with *ragged* training sizes advanced through
  rounds of one-row factor extensions, fused (one concatenated cross-kernel
  plus one batched Schur Cholesky per round) vs sequential ``partial_fit``
  calls.  Posteriors are asserted **bitwise identical** per member.
* **full fit** — K GPs fully refitted (hyperparameter grid + factorisation)
  as one stacked ``(K, n, n)`` batched-Cholesky pass vs sequential ``fit``
  calls, posteriors asserted bitwise identical.
* **campaigns** — the acceptance measurement: an 8-GP-campaign fleet through
  the batched runner (``batch_gp_fits`` + fused scoring on) vs the same
  campaigns run sequentially.  Per-campaign results are asserted
  **bit-identical** (identical proposals; posteriors agree to ≤1e-8 by the
  fleet construction, and in practice to the last bit) — only wall-clock
  changes.

Results are written to ``BENCH_gp_fleet.json`` (repo root by default).
Timings take the best of ``--reps`` repetitions to suppress machine noise;
speedups on this 1-CPU box are reported as measured.

Run with::

    PYTHONPATH=src python benchmarks/bench_gp_fleet.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import math
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.core.search import CBOSearch, SearchResult
from repro.core.space import (
    CategoricalParameter,
    IntegerParameter,
    RealParameter,
    SearchSpace,
)
from repro.core.surrogate import GaussianProcessSurrogate, GPFleet
from repro.service import CampaignRunner, CampaignSpec

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_gp_fleet.json"

FLEET_SIZE = 8
NUM_CAMPAIGNS = 8
MAX_EVALUATIONS = 140
NUM_CANDIDATES = 128


def make_space() -> SearchSpace:
    return SearchSpace(
        [
            IntegerParameter("batch", 1, 2048, log=True),
            RealParameter("rate", 0.1, 50.0, log=True),
            IntegerParameter("threads", 1, 31),
            CategoricalParameter("pool", ("fifo", "fifo_wait", "prio_wait")),
            CategoricalParameter.boolean("busy"),
        ]
    )


def run_function(config) -> float:
    value = abs(math.log(config["batch"]) - 5.0) + 0.3 * math.log(config["rate"])
    value += 0.05 * abs(config["threads"] - 16)
    value += 1.0 if config["pool"] == "prio_wait" else 0.0
    return 30.0 + 12.0 * value


# ------------------------------------------------------------------- members
def member_data(key: int, rows: int, dim: int):
    rng = np.random.default_rng(4000 + key)
    X = rng.random((rows, dim))
    y = np.sin(X @ rng.random(dim) * 3.0) + 0.1 * rng.random(rows)
    return X, y


def assert_posteriors_identical(
    solo: List[GaussianProcessSurrogate],
    fleet: List[GaussianProcessSurrogate],
    dim: int,
) -> None:
    Xq = np.random.default_rng(77).random((64, dim))
    for k, (a, b) in enumerate(zip(solo, fleet)):
        mean_a, std_a = a.predict(Xq)
        mean_b, std_b = b.predict(Xq)
        assert np.array_equal(mean_a, mean_b), f"member {k}: posterior mean"
        assert np.array_equal(std_a, std_b), f"member {k}: posterior std"


def measure_extend(reps: int, fleet_size: int, rows: int, rounds: int, dim: int = 8):
    # Ragged training sizes — the norm for GP campaigns.
    sizes = [rows + 3 * k for k in range(fleet_size)]
    base = [member_data(k, n, dim) for k, n in enumerate(sizes)]
    updates = [
        [member_data(900 + 10 * r + k, 1, dim) for k in range(fleet_size)]
        for r in range(rounds)
    ]

    def fitted():
        gps = [
            GaussianProcessSurrogate(refresh_growth=100.0) for _ in range(fleet_size)
        ]
        for gp, (X, y) in zip(gps, base):
            gp.fit(X, y)
        return gps

    seq_times, fused_times = [], []
    solo = fleet = None
    for _ in range(reps):
        solo = fitted()
        start = time.perf_counter()
        for r in range(rounds):
            for gp, (X, y) in zip(solo, updates[r]):
                gp.partial_fit(X, y)
        seq_times.append(time.perf_counter() - start)
        fleet = fitted()
        group = GPFleet(fleet)
        start = time.perf_counter()
        for r in range(rounds):
            group.partial_fit(
                [X for X, _ in updates[r]], [y for _, y in updates[r]]
            )
        fused_times.append(time.perf_counter() - start)
    assert_posteriors_identical(solo, fleet, dim)
    t_seq, t_fused = min(seq_times), min(fused_times)
    return {
        "fleet_size": fleet_size,
        "rows": sizes,
        "rounds": rounds,
        "sequential_s": t_seq,
        "fused_s": t_fused,
        "speedup": t_seq / max(t_fused, 1e-12),
        "bit_identical": True,
    }


def measure_full_fit(reps: int, fleet_size: int, rows: int, dim: int = 8):
    sets = [member_data(100 + k, rows, dim) for k in range(fleet_size)]
    seq_times, fused_times = [], []
    solo = fleet = None
    for _ in range(reps):
        solo = [GaussianProcessSurrogate() for _ in range(fleet_size)]
        start = time.perf_counter()
        for gp, (X, y) in zip(solo, sets):
            gp.fit(X, y)
        seq_times.append(time.perf_counter() - start)
        fleet = [GaussianProcessSurrogate() for _ in range(fleet_size)]
        start = time.perf_counter()
        GPFleet(fleet).fit([X for X, _ in sets], [y for _, y in sets])
        fused_times.append(time.perf_counter() - start)
    assert_posteriors_identical(solo, fleet, dim)
    t_seq, t_fused = min(seq_times), min(fused_times)
    return {
        "fleet_size": fleet_size,
        "rows": rows,
        "sequential_s": t_seq,
        "fused_s": t_fused,
        "speedup": t_seq / max(t_fused, 1e-12),
        "bit_identical": True,
    }


# ----------------------------------------------------------------- campaigns
def make_campaigns(space: SearchSpace, num_candidates: int) -> List[CBOSearch]:
    return [
        CBOSearch(
            space,
            run_function,
            num_workers=8,
            surrogate="GP",
            num_candidates=num_candidates,
            n_initial_points=6,
            seed=seed,
        )
        for seed in range(NUM_CAMPAIGNS)
    ]


def assert_results_identical(seq: List[SearchResult], bat: List[SearchResult]) -> None:
    for i, (a, b) in enumerate(zip(seq, bat)):
        assert len(a.history) == len(b.history), f"campaign {i}: history length"
        for ev_a, ev_b in zip(a.history, b.history):
            assert ev_a.configuration == ev_b.configuration, f"campaign {i}: configuration"
            assert ev_a.submitted == ev_b.submitted, f"campaign {i}: submitted"
            assert ev_a.completed == ev_b.completed, f"campaign {i}: completed"
            assert (ev_a.objective == ev_b.objective) or (
                math.isnan(ev_a.objective) and math.isnan(ev_b.objective)
            ), f"campaign {i}: objective"
        assert a.busy_intervals == b.busy_intervals, f"campaign {i}: busy intervals"
        assert a.worker_utilization == b.worker_utilization, f"campaign {i}: utilization"
        assert a.best_configuration == b.best_configuration, f"campaign {i}: incumbent"


def measure_campaigns(
    reps: int, max_evaluations: int = MAX_EVALUATIONS, num_candidates: int = NUM_CANDIDATES
) -> Dict[str, object]:
    space = make_space()
    seq_times, bat_times = [], []
    seq_results = bat_results = runner = None
    for _ in range(reps):
        searches = make_campaigns(space, num_candidates)
        start = time.perf_counter()
        seq_results = [
            s.run(max_time=float("inf"), max_evaluations=max_evaluations)
            for s in searches
        ]
        seq_times.append(time.perf_counter() - start)
        specs = [
            CampaignSpec(
                search=search,
                max_time=float("inf"),
                max_evaluations=max_evaluations,
                label=f"gp-{i}",
            )
            for i, search in enumerate(make_campaigns(space, num_candidates))
        ]
        runner = CampaignRunner(specs)
        start = time.perf_counter()
        bat_results = runner.run()
        bat_times.append(time.perf_counter() - start)
    assert_results_identical(seq_results, bat_results)
    assert runner.num_gp_fleet_extends > 0, "no extension was fused"
    assert runner.num_gp_fleet_full_fits > 0, "no full refit was fused"
    t_seq, t_bat = min(seq_times), min(bat_times)
    return {
        "num_campaigns": NUM_CAMPAIGNS,
        "max_evaluations": max_evaluations,
        "num_candidates": num_candidates,
        "evaluations_per_campaign": [r.num_evaluations for r in bat_results],
        "gp_fleet_extends": runner.num_gp_fleet_extends,
        "gp_fleet_full_fits": runner.num_gp_fleet_full_fits,
        "gp_fleet_members": runner.num_gp_fleet_members,
        "gp_fleet_predicts": runner.num_gp_fleet_predicts,
        "sequential_s": t_seq,
        "batched_s": t_bat,
        "speedup": t_seq / max(t_bat, 1e-12),
        "bit_identical": True,
    }


def run_benchmark(reps: int = 3, output: Path = DEFAULT_OUTPUT, quick: bool = False):
    if quick:
        extend = measure_extend(1, fleet_size=4, rows=24, rounds=4)
        full_fit = measure_full_fit(1, fleet_size=4, rows=24)
        campaigns = measure_campaigns(1, max_evaluations=40, num_candidates=48)
    else:
        extend = measure_extend(reps, FLEET_SIZE, rows=120, rounds=24)
        full_fit = measure_full_fit(reps, FLEET_SIZE, rows=48)
        campaigns = measure_campaigns(reps)
    print(
        f"extend       seq {extend['sequential_s']*1e3:7.1f}ms  "
        f"fused {extend['fused_s']*1e3:7.1f}ms  speedup {extend['speedup']:.2f}x  (bit-identical)"
    )
    print(
        f"full fit     seq {full_fit['sequential_s']*1e3:7.1f}ms  "
        f"fused {full_fit['fused_s']*1e3:7.1f}ms  speedup {full_fit['speedup']:.2f}x  (bit-identical)"
    )
    print(
        f"campaigns    seq {campaigns['sequential_s']:6.2f}s  "
        f"batched {campaigns['batched_s']:6.2f}s  speedup {campaigns['speedup']:.2f}x  "
        f"({campaigns['gp_fleet_extends']} fused extension passes, "
        f"{campaigns['gp_fleet_full_fits']} stacked full refits covering "
        f"{campaigns['gp_fleet_members']} member fits, bit-identical)"
    )
    target = 1.0 if quick else 1.2
    payload = {
        "benchmark": "gp_fleet",
        "reps": 1 if quick else reps,
        "quick": quick,
        "description": (
            "Batched GPFleet math (concatenated ragged factor extensions, "
            "stacked (K, n, n) batched-Cholesky full refits, fused posterior "
            "scoring) vs sequential GaussianProcessSurrogate calls, and an "
            "8-GP-campaign fleet through the batched CampaignRunner vs "
            "sequential CBOSearch.run loops (per-campaign results asserted "
            "bit-identical; posteriors ≤1e-8 by construction, bitwise in "
            "practice). Times are best-of-reps on a 1-CPU box."
        ),
        "extend": extend,
        "full_fit": full_fit,
        "campaigns": campaigns,
        "acceptance": {
            "criterion": (
                "8-GP-campaign fleet ≥1.2x end-to-end through the batched "
                "runner vs sequential on this box, with per-campaign "
                "proposals asserted identical (posteriors ≤1e-8) at full size"
            ),
            "campaign_speedup": campaigns["speedup"],
            "extend_speedup": extend["speedup"],
            "full_fit_speedup": full_fit["speedup"],
            "bit_identical": bool(
                extend["bit_identical"]
                and full_fit["bit_identical"]
                and campaigns["bit_identical"]
            ),
            "passed": bool(
                campaigns["bit_identical"] and campaigns["speedup"] >= target
            ),
        },
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")
    status = "PASS" if payload["acceptance"]["passed"] else "FAIL"
    print(
        f"acceptance ({payload['acceptance']['criterion']}): "
        f"{campaigns['speedup']:.2f}x campaigns -> {status}"
    )
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="one rep at reduced size")
    parser.add_argument("--reps", type=int, default=3, help="repetitions per mode (best-of)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT, help="JSON output path")
    args = parser.parse_args(argv)
    return run_benchmark(reps=args.reps, output=args.output, quick=args.quick)


if __name__ == "__main__":
    main()
