"""Real (wall-clock) ask/tell latency vs history size — the columnar speedup.

Unlike the campaign benchmarks, which operate in *virtual* search time with a
modelled manager overhead, this benchmark measures the **real** Python-side
cost of one optimizer interaction (``ask`` a batch of 8 + ``tell`` the
results) as a function of the number of evaluated configurations, for the RF
and GP surrogates with the paper-scale 512-candidate ask.

Two code paths are compared at each history size:

* ``columnar`` — the current pipeline: columnar candidate sampling, vectorised
  encodings, raw-value dedup keys, the incremental encoded-history cache, the
  level-wise random-forest builder, and (for GP) the rank-1 incremental
  Cholesky update in ``tell``.
* ``legacy`` — a faithful emulation of the pre-columnar code path:
  row-major (dict) candidate sampling, per-element ``*_loop`` encoders,
  ``repr``-tuple dedup keys computed per candidate per ask, full-history
  re-encoding on every interaction, the recursive random-forest builder, and
  a from-scratch O(n³) GP refit on every tell.

A second section benchmarks the columnar :class:`~repro.core.history.SearchHistory`
itself — append plus the derived aggregations (objectives, incumbent
trajectory, top-quantile selection, a 120-point time-grid resolution) —
against a row-major reference implementation looping over ``Evaluation``
records.

Results are written to ``BENCH_ask_tell.json`` (repo root by default) so
future PRs can track the trajectory.  Acceptance bars: ≥5× mean ask+tell
reduction at history size 1000 with RF (the columnar PR), and ≥3× mean tell
reduction at history size 1000 with GP (the incremental-Cholesky PR).

Run with::

    PYTHONPATH=src python benchmarks/bench_ask_tell_scaling.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))  # for `common` when run directly

from repro.core.history import SearchHistory
from repro.core.history_reference import RowHistoryReference
from repro.core.optimizer import BayesianOptimizer
from repro.core.space import SearchSpace
from repro.core.surrogate import GaussianProcessSurrogate, RandomForestSurrogate
from repro.hep import HEPWorkflowProblem

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_ask_tell.json"

SETUP = "4n-2s-20p"
NUM_CANDIDATES = 512
BATCH_SIZE = 8
HISTORY_SIZES = (100, 500, 1000)
SURROGATES = ("RF", "GP")


class LegacyPathOptimizer(BayesianOptimizer):
    """Pre-columnar ask/tell path, reconstructed for baseline measurements.

    Reproduces the original cost profile: candidates are sampled as dicts,
    dedup keys are ``repr`` tuples recomputed per candidate per ask, all
    encodings go through the per-element ``*_loop`` reference codecs, and the
    full history is re-encoded from scratch on every ``ask`` and every
    refitting ``tell``.
    """

    def __init__(self, *args, **kwargs):
        kwargs["incremental"] = False
        super().__init__(*args, **kwargs)
        self._legacy_keys = set()

    def _encode_loop(self, configs):
        if self.encoding == "one_hot":
            return self.space.to_one_hot_array_loop(configs)
        return self.space.to_numeric_array_loop(configs)

    def tell(self, configurations, objectives):
        if len(configurations) != len(objectives):
            raise ValueError("configurations and objectives must have equal length")
        if not configurations:
            return
        start = time.perf_counter()
        for config, obj in zip(configurations, objectives):
            self._configs.append(dict(config))
            self._objectives.append(self.objective.fill_failure(obj))
            self._legacy_keys.add(self._key(config))
            self._new_since_fit += 1
        should_fit = (
            not self.random_sampling
            and self.num_observations >= self.n_initial_points
            and (not self.surrogate.fitted or self._new_since_fit >= self.refit_interval)
        )
        if should_fit:
            X = self._encode_loop(self._configs)
            y = np.asarray(self._objectives, dtype=float)
            self.surrogate.fit(X, y)
            self.num_fits += 1
            self._new_since_fit = 0
        self.last_tell_duration = time.perf_counter() - start

    def ask(self, n=1):
        if n < 1:
            raise ValueError("n must be >= 1")
        start = time.perf_counter()
        use_model = (
            not self.random_sampling
            and self.surrogate.fitted
            and self.num_observations >= self.n_initial_points
        )
        if not use_model:
            proposals = self._sample_unique_legacy(n)
            self.last_ask_duration = time.perf_counter() - start
            return proposals
        candidates = self.space.sample(self.num_candidates, self.rng, prior=self.prior)
        fresh = [c for c in candidates if self._key(c) not in self._legacy_keys]
        if len(fresh) < n:
            fresh.extend(self._sample_unique_legacy(n - len(fresh)))
        encoded = self._encode_loop(fresh)
        unit = self.space.to_unit_array_loop(fresh)
        train_X = self._encode_loop(self._configs)
        train_y = np.asarray(self._objectives, dtype=float)
        indices = self.liar.select(
            n,
            surrogate=self.surrogate,
            acquisition=self.acquisition,
            candidates_encoded=encoded,
            candidates_unit=unit,
            train_X=train_X,
            train_y=train_y,
        )
        proposals = [fresh[i] for i in indices]
        self.last_ask_duration = time.perf_counter() - start
        return proposals

    def _sample_unique_legacy(self, n):
        proposals = []
        attempts = 0
        while len(proposals) < n and attempts < 20:
            batch = self.space.sample(max(n, 8), self.rng, prior=self.prior)
            for config in batch:
                if len(proposals) >= n:
                    break
                if self._key(config) not in self._legacy_keys:
                    proposals.append(config)
            attempts += 1
        while len(proposals) < n:
            proposals.extend(self.space.sample(n - len(proposals), self.rng, prior=self.prior))
        return proposals[:n]


def _make_optimizer(path: str, surrogate: str, space: SearchSpace, seed: int):
    if path == "columnar":
        # "GP" resolves to the incremental (rank-1 Cholesky) GP by default.
        model = RandomForestSurrogate(seed=seed) if surrogate == "RF" else "GP"
        return BayesianOptimizer(
            space,
            surrogate=model,
            num_candidates=NUM_CANDIDATES,
            n_initial_points=10,
            refit_interval=1,
            seed=seed,
        )
    model = (
        RandomForestSurrogate(seed=seed, fit_algorithm="recursive")
        if surrogate == "RF"
        else GaussianProcessSurrogate(incremental=False)
    )
    return LegacyPathOptimizer(
        space,
        surrogate=model,
        num_candidates=NUM_CANDIDATES,
        n_initial_points=10,
        refit_interval=1,
        seed=seed,
    )


def measure(
    path: str,
    surrogate: str,
    history_size: int,
    space: SearchSpace,
    iterations: int,
    seed: int = 0,
) -> Dict[str, float]:
    """Mean per-interaction ask/tell wall-clock at a fixed history size."""
    rng = np.random.default_rng(seed)
    opt = _make_optimizer(path, surrogate, space, seed)
    seed_configs = space.sample(history_size, rng)
    objective_of = lambda i: float(np.sin(0.37 * i) - 0.001 * i)
    opt.tell(seed_configs, [objective_of(i) for i in range(history_size)])

    ask_times: List[float] = []
    tell_times: List[float] = []
    base = history_size
    for it in range(iterations):
        proposals = opt.ask(BATCH_SIZE)
        ask_times.append(opt.last_ask_duration)
        opt.tell(proposals, [objective_of(base + it * BATCH_SIZE + j) for j in range(len(proposals))])
        tell_times.append(opt.last_tell_duration)
    return {
        "ask_mean_s": float(np.mean(ask_times)),
        "tell_mean_s": float(np.mean(tell_times)),
        "ask_tell_mean_s": float(np.mean(ask_times) + np.mean(tell_times)),
    }


def measure_history(history_size: int, space: SearchSpace, seed: int = 0) -> Dict[str, object]:
    """Append + aggregation wall-clock of the columnar history vs the row loop."""
    rng = np.random.default_rng(seed)
    configs = space.sample(history_size, rng)
    runtimes = np.exp(rng.normal(4.0, 0.5, size=history_size))
    runtimes[rng.random(history_size) < 0.05] = float("nan")
    grid = np.linspace(0.0, float(history_size), 120)

    def workload(history, vectorized: bool) -> Dict[str, float]:
        timings = {}
        start = time.perf_counter()
        for i, (config, rt) in enumerate(zip(configs, runtimes)):
            history.record(config, rt, float(i), float(i + 1), worker=i % 8)
        timings["append_s"] = time.perf_counter() - start
        start = time.perf_counter()
        history.objectives()
        history.incumbent_trajectory()
        history.top_quantile(0.10)
        if vectorized:
            history.incumbent_at(grid)
        else:
            for t in grid:
                history.best_runtime_at(t)
        timings["aggregate_s"] = time.perf_counter() - start
        timings["total_s"] = timings["append_s"] + timings["aggregate_s"]
        return timings

    columnar = workload(SearchHistory(space), vectorized=True)
    legacy = workload(RowHistoryReference(space), vectorized=False)
    return {
        "history_size": history_size,
        "columnar": columnar,
        "legacy": legacy,
        "speedup_total": legacy["total_s"] / max(columnar["total_s"], 1e-12),
        "speedup_aggregate": legacy["aggregate_s"] / max(columnar["aggregate_s"], 1e-12),
    }


def run_benchmark(history_sizes=HISTORY_SIZES, iterations: int = 5, output: Path = DEFAULT_OUTPUT):
    problem = HEPWorkflowProblem.from_setup(SETUP, seed=1)
    space = problem.space
    results = []
    for surrogate in SURROGATES:
        for history_size in history_sizes:
            entry = {"surrogate": surrogate, "history_size": history_size}
            for path in ("columnar", "legacy"):
                entry[path] = measure(path, surrogate, history_size, space, iterations)
            entry["speedup_ask"] = entry["legacy"]["ask_mean_s"] / max(
                entry["columnar"]["ask_mean_s"], 1e-12
            )
            entry["speedup_tell"] = entry["legacy"]["tell_mean_s"] / max(
                entry["columnar"]["tell_mean_s"], 1e-12
            )
            entry["speedup_ask_tell"] = entry["legacy"]["ask_tell_mean_s"] / max(
                entry["columnar"]["ask_tell_mean_s"], 1e-12
            )
            results.append(entry)
            print(
                f"{surrogate:3s} N={history_size:5d}  "
                f"columnar {entry['columnar']['ask_tell_mean_s']*1e3:8.2f} ms  "
                f"legacy {entry['legacy']['ask_tell_mean_s']*1e3:8.2f} ms  "
                f"speedup {entry['speedup_ask_tell']:5.2f}x "
                f"(ask alone {entry['speedup_ask']:5.2f}x, tell alone {entry['speedup_tell']:5.2f}x)"
            )

    history_results = []
    for history_size in history_sizes:
        hist_entry = measure_history(history_size, space)
        history_results.append(hist_entry)
        print(
            f"history N={history_size:5d}  "
            f"columnar {hist_entry['columnar']['total_s']*1e3:8.2f} ms  "
            f"legacy {hist_entry['legacy']['total_s']*1e3:8.2f} ms  "
            f"speedup {hist_entry['speedup_total']:5.2f}x "
            f"(aggregations alone {hist_entry['speedup_aggregate']:5.2f}x)"
        )

    target = next(
        (
            e
            for e in results
            if e["surrogate"] == "RF" and e["history_size"] == max(history_sizes)
        ),
        None,
    )
    gp_target = next(
        (
            e
            for e in results
            if e["surrogate"] == "GP" and e["history_size"] == max(history_sizes)
        ),
        None,
    )
    payload = {
        "benchmark": "ask_tell_scaling",
        "setup": SETUP,
        "num_candidates": NUM_CANDIDATES,
        "batch_size": BATCH_SIZE,
        "iterations": iterations,
        "refit_interval": 1,
        "description": (
            "Mean real wall-clock of one optimizer interaction (ask a batch of "
            f"{BATCH_SIZE} + tell the results, surrogate refit every tell) at a "
            "fixed history size. 'columnar' is the current pipeline (vectorised "
            "codecs, incremental encoded-history cache, level-wise RF, rank-1 "
            "incremental GP Cholesky); 'legacy' emulates the pre-columnar path "
            "(dict candidates, per-element encoders, repr keys, full "
            "re-encoding, recursive RF, from-scratch GP refit). The 'history' "
            "section benchmarks the columnar SearchHistory (append + derived "
            "aggregations) against a row-major reference."
        ),
        "results": results,
        "history": history_results,
        "acceptance": {
            "criterion": f"speedup_ask_tell >= 5.0 at history_size={max(history_sizes)} with RF",
            "speedup_ask_tell": target["speedup_ask_tell"] if target else None,
            "passed": bool(target and target["speedup_ask_tell"] >= 5.0),
        },
        "acceptance_gp_incremental": {
            "criterion": f"speedup_tell >= 3.0 at history_size={max(history_sizes)} with GP",
            "speedup_tell": gp_target["speedup_tell"] if gp_target else None,
            "passed": bool(gp_target and gp_target["speedup_tell"] >= 3.0),
        },
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")
    if target:
        status = "PASS" if payload["acceptance"]["passed"] else "FAIL"
        print(
            f"acceptance ({payload['acceptance']['criterion']}): "
            f"{target['speedup_ask_tell']:.2f}x -> {status}"
        )
    if gp_target:
        status = "PASS" if payload["acceptance_gp_incremental"]["passed"] else "FAIL"
        print(
            f"acceptance ({payload['acceptance_gp_incremental']['criterion']}): "
            f"{gp_target['speedup_tell']:.2f}x -> {status}"
        )
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer iterations and history sizes (smoke test)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="JSON output path"
    )
    args = parser.parse_args(argv)
    if args.quick:
        return run_benchmark(history_sizes=(100, 300), iterations=2, output=args.output)
    return run_benchmark(output=args.output)


if __name__ == "__main__":
    main()
