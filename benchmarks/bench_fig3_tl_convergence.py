"""Fig. 3 (a)-(e): convergence of the best configuration, with and without TL.

The paper's Fig. 3 plots the run time of the best configuration found so far
as a function of search time for the five workflow setups, with and without
VAE-ABO transfer learning (5 repetitions, 1 hour, 128 workers).  This
benchmark regenerates the same series against the simulated workflow: for each
setup in the transfer chain it runs a cold (no-TL) campaign and a TL campaign
whose source is the previous setup's history, then prints the best-known run
time at a few sample times plus the full trajectory table.

Expected shape (paper): the TL curves converge almost immediately, while the
no-TL curves take tens of minutes; only the 11p→16p transfer (the workflow
itself changes) needs a few minutes.
"""

import pytest

from repro.analysis.figures import fig3_series, fig3_table
from common import SCALE, get_campaign, print_block


def _run_fig3_chain():
    chain = {}
    previous = None
    for setup in SCALE.setups_fig3:
        entry = {"no_tl": get_campaign(setup, "RF")}
        if previous is not None:
            entry["tl"] = get_campaign(setup, "TL-RF", source_setup=previous)
        chain[setup] = entry
        previous = setup
    return chain


@pytest.mark.benchmark(group="fig3")
def test_fig3_tl_convergence(benchmark):
    """Regenerate the Fig. 3 convergence series (shape check + report)."""
    chain = benchmark.pedantic(_run_fig3_chain, rounds=1, iterations=1)

    sample_times = tuple(
        SCALE.max_time * fraction for fraction in (0.1, 0.25, 0.5, 1.0)
    )
    print_block(
        f"Fig. 3 — best configuration vs search time ({SCALE.name} scale, "
        f"{SCALE.num_workers} workers, {SCALE.max_time:.0f}s budget, "
        f"{SCALE.repetitions} repetitions)",
        fig3_table(chain, sample_times=sample_times),
    )

    series = fig3_series(chain, num_points=40)
    for setup, entry in chain.items():
        if "tl" not in entry:
            continue
        tl = entry["tl"]
        no_tl = entry["no_tl"]
        # Paper shape: with TL the incumbent early in the search is already
        # close to (or better than) what the cold search needs much longer to
        # reach.  Both curves resolve through the columnar
        # CampaignResult.incumbent_at (one vectorised incumbent_at call per
        # repetition) instead of per-row best_runtime_at scans.
        early = 0.25 * SCALE.max_time
        tl_early = float(tl.incumbent_at([early]).min())
        no_tl_final = float(no_tl.incumbent_at([SCALE.max_time]).min())
        assert tl_early <= no_tl_final * 1.6, (
            f"{setup}: TL incumbent at t={early:.0f}s ({tl_early:.1f}s) should be "
            f"close to the cold search's final best ({no_tl_final:.1f}s)"
        )
        assert series[setup]["tl"]["time"].shape == series[setup]["no_tl"]["time"].shape
