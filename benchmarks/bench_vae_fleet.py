"""Fused VAE fleet training vs. sequential fits — wall-clock speedup.

The transfer-learning stack trains many small tabular VAEs: one per
campaign at construction time (``fit_transfer_prior``) and one per due
prior refresh in the continuous-retuning scenario
(``CBOSearch(prior_refresh_interval=...)``).  This benchmark measures the
fused :class:`~repro.core.vae.tvae.VAEFleet` path two ways:

* **training** — K structurally identical VAEs trained on K training
  matrices, fused lock-step epochs (`fused=True`) vs sequential
  ``member.fit`` calls (`fused=False`).  Every member's weights, training
  trace, samples and RNG state are asserted **bitwise identical** between
  the two modes at full size — the fleet only amortises the per-layer
  NumPy dispatch overhead.
* **campaigns** — a transfer-campaign fleet end to end: VAE-ABO campaigns
  seeded with a :class:`~repro.core.transfer.TransferLearningPrior` from a
  shared source history, periodically retraining their prior from their own
  incumbents, run through the batched
  :class:`~repro.service.CampaignRunner` (due VAE refits fused per tick)
  vs the same campaigns run sequentially.  Per-campaign results are
  asserted bit-identical; only wall-clock changes.

Results are written to ``BENCH_vae_fleet.json`` (repo root by default).
Timings take the best of ``--reps`` repetitions to suppress machine noise;
speedups on this 1-CPU box are reported as measured.

Run with::

    PYTHONPATH=src python benchmarks/bench_vae_fleet.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import math
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.core.search import CBOSearch, SearchResult, VAEABOSearch
from repro.core.space import (
    CategoricalParameter,
    IntegerParameter,
    RealParameter,
    SearchSpace,
)
from repro.core.surrogate import RandomForestSurrogate
from repro.core.vae.transforms import TabularTransform
from repro.core.vae.tvae import TabularVAE, VAEFleet
from repro.service import CampaignRunner, CampaignSpec

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_vae_fleet.json"

FLEET_SIZE = 8
TRAIN_ROWS = 128
TRAIN_EPOCHS = 120
NUM_CAMPAIGNS = 8


def make_space() -> SearchSpace:
    return SearchSpace(
        [
            IntegerParameter("batch", 1, 2048, log=True),
            RealParameter("rate", 0.1, 50.0, log=True),
            IntegerParameter("threads", 1, 31),
            CategoricalParameter("pool", ("fifo", "fifo_wait", "prio_wait")),
            CategoricalParameter.boolean("busy"),
        ]
    )


def run_function(config) -> float:
    value = abs(math.log(config["batch"]) - 5.0) + 0.3 * math.log(config["rate"])
    value += 0.05 * abs(config["threads"] - 16)
    value += 1.0 if config["pool"] == "prio_wait" else 0.0
    value += 0.0 if config["busy"] else 0.7
    return 30.0 + 12.0 * value


# ------------------------------------------------------------------ training
def make_members(transform: TabularTransform, count: int) -> List[TabularVAE]:
    return [
        TabularVAE(
            input_dim=transform.dimension,
            numeric_columns=transform.numeric_columns,
            categorical_blocks=transform.categorical_blocks,
            latent_dim=4,
            hidden=(64, 64),
            seed=seed,
        )
        for seed in range(count)
    ]


def assert_members_identical(a: List[TabularVAE], b: List[TabularVAE]) -> None:
    """Weights, traces and post-fit samples must match bitwise per member."""
    for k, (ma, mb) in enumerate(zip(a, b)):
        for (pa, _), (pb, _) in zip(ma._all_parameters(), mb._all_parameters()):
            assert np.array_equal(pa, pb), f"member {k}: weight mismatch {pa.shape}"
        assert ma.trace.loss == mb.trace.loss, f"member {k}: trace mismatch"
        assert np.array_equal(ma.sample(64), mb.sample(64)), f"member {k}: sample mismatch"


def measure_training(reps: int, fleet_size: int, rows: int, epochs: int) -> Dict[str, object]:
    space = make_space()
    transform = TabularTransform(space)
    datasets = [
        transform.encode(space.sample(rows, np.random.default_rng(100 + k)))
        for k in range(fleet_size)
    ]
    fused_times, seq_times = [], []
    fused_members = seq_members = None
    for _ in range(reps):
        seq_members = make_members(transform, fleet_size)
        start = time.perf_counter()
        VAEFleet(seq_members).fit(datasets, epochs=epochs, batch_size=64, fused=False)
        seq_times.append(time.perf_counter() - start)
        fused_members = make_members(transform, fleet_size)
        start = time.perf_counter()
        VAEFleet(fused_members).fit(datasets, epochs=epochs, batch_size=64, fused=True)
        fused_times.append(time.perf_counter() - start)
    assert_members_identical(seq_members, fused_members)
    t_seq, t_fused = min(seq_times), min(fused_times)
    return {
        "fleet_size": fleet_size,
        "rows": rows,
        "epochs": epochs,
        "input_dim": transform.dimension,
        "sequential_s": t_seq,
        "fused_s": t_fused,
        "speedup": t_seq / max(t_fused, 1e-12),
        "bit_identical": True,
    }


# ----------------------------------------------------------------- campaigns
def make_source_history(space: SearchSpace):
    """A cold campaign whose history seeds every transfer campaign."""
    search = CBOSearch(
        space,
        run_function,
        num_workers=8,
        surrogate=RandomForestSurrogate(n_estimators=6, seed=99),
        num_candidates=64,
        n_initial_points=6,
        seed=99,
    )
    return search.run(max_time=float("inf"), max_evaluations=48).history


def make_campaigns(space, source_history) -> List[VAEABOSearch]:
    return [
        VAEABOSearch(
            space,
            run_function,
            source_history=source_history,
            vae_epochs=60,
            num_workers=8,
            surrogate=RandomForestSurrogate(n_estimators=6, seed=seed),
            num_candidates=64,
            n_initial_points=6,
            prior_refresh_interval=12,
            prior_refresh_top_k=10,
            prior_refresh_epochs=40,
            seed=seed,
        )
        for seed in range(NUM_CAMPAIGNS)
    ]


def assert_results_identical(seq: List[SearchResult], bat: List[SearchResult]) -> None:
    for i, (a, b) in enumerate(zip(seq, bat)):
        assert len(a.history) == len(b.history), f"campaign {i}: history length"
        for ev_a, ev_b in zip(a.history, b.history):
            assert ev_a.configuration == ev_b.configuration, f"campaign {i}: configuration"
            assert ev_a.submitted == ev_b.submitted, f"campaign {i}: submitted"
            assert ev_a.completed == ev_b.completed, f"campaign {i}: completed"
        assert a.busy_intervals == b.busy_intervals, f"campaign {i}: busy intervals"
        assert a.worker_utilization == b.worker_utilization, f"campaign {i}: utilization"


def measure_campaigns(reps: int, max_evaluations: int = 72) -> Dict[str, object]:
    space = make_space()
    source_history = make_source_history(space)
    seq_times, bat_times = [], []
    seq_results = bat_results = None
    runner = None
    for _ in range(reps):
        searches = make_campaigns(space, source_history)
        start = time.perf_counter()
        seq_results = [
            s.run(max_time=float("inf"), max_evaluations=max_evaluations) for s in searches
        ]
        seq_times.append(time.perf_counter() - start)
        specs = [
            CampaignSpec(
                search=search,
                max_time=float("inf"),
                max_evaluations=max_evaluations,
                label=f"tl-{i}",
            )
            for i, search in enumerate(make_campaigns(space, source_history))
        ]
        runner = CampaignRunner(specs)
        start = time.perf_counter()
        bat_results = runner.run()
        bat_times.append(time.perf_counter() - start)
    assert_results_identical(seq_results, bat_results)
    assert runner.num_prior_refreshes > 0, "no prior refresh fell due"
    assert runner.num_vae_fleet_fits > 0, "no refresh was fused"
    t_seq, t_bat = min(seq_times), min(bat_times)
    return {
        "num_campaigns": NUM_CAMPAIGNS,
        "max_evaluations": max_evaluations,
        "evaluations_per_campaign": [r.num_evaluations for r in bat_results],
        "prior_refreshes": runner.num_prior_refreshes,
        "vae_fleet_fits": runner.num_vae_fleet_fits,
        "vae_fleet_members": runner.num_vae_fleet_members,
        "sequential_s": t_seq,
        "batched_s": t_bat,
        "speedup": t_seq / max(t_bat, 1e-12),
        "bit_identical": True,
    }


def run_benchmark(reps: int = 3, output: Path = DEFAULT_OUTPUT, quick: bool = False):
    if quick:
        training = measure_training(1, fleet_size=4, rows=48, epochs=20)
        campaigns = measure_campaigns(1, max_evaluations=36)
    else:
        training = measure_training(reps, FLEET_SIZE, TRAIN_ROWS, TRAIN_EPOCHS)
        campaigns = measure_campaigns(reps)
    print(
        f"training     seq {training['sequential_s']:6.2f}s  "
        f"fused {training['fused_s']:6.2f}s  speedup {training['speedup']:.2f}x  (bit-identical)"
    )
    print(
        f"campaigns    seq {campaigns['sequential_s']:6.2f}s  "
        f"batched {campaigns['batched_s']:6.2f}s  speedup {campaigns['speedup']:.2f}x  "
        f"({campaigns['vae_fleet_fits']} fused VAE fleet fits covering "
        f"{campaigns['vae_fleet_members']}/{campaigns['prior_refreshes']} refreshes, bit-identical)"
    )
    payload = {
        "benchmark": "vae_fleet",
        "reps": 1 if quick else reps,
        "quick": quick,
        "description": (
            "Fused VAEFleet lock-step training of K tabular VAEs vs K sequential "
            "TabularVAE.fit calls (weights/traces/samples asserted bitwise "
            "identical), and a transfer-campaign fleet (TransferLearningPrior "
            "seeds + periodic own-history prior refreshes) through the batched "
            "CampaignRunner vs sequential runs (per-campaign results asserted "
            "bit-identical). Times are best-of-reps on a 1-CPU box."
        ),
        "training": training,
        "campaigns": campaigns,
        "acceptance": {
            "criterion": (
                "fused VAE fleet training bitwise identical to sequential fits "
                "with a measured speedup > 1, and the transfer-campaign fleet "
                "bit-identical through CampaignRunner"
            ),
            "training_speedup": training["speedup"],
            "campaign_speedup": campaigns["speedup"],
            "bit_identical": bool(training["bit_identical"] and campaigns["bit_identical"]),
            "passed": bool(
                training["bit_identical"]
                and campaigns["bit_identical"]
                and training["speedup"] > 1.0
            ),
        },
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")
    status = "PASS" if payload["acceptance"]["passed"] else "FAIL"
    print(
        f"acceptance ({payload['acceptance']['criterion']}): "
        f"{training['speedup']:.2f}x training, {campaigns['speedup']:.2f}x campaigns -> {status}"
    )
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="one rep at reduced size")
    parser.add_argument("--reps", type=int, default=3, help="repetitions per mode (best-of)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT, help="JSON output path")
    args = parser.parse_args(argv)
    return run_benchmark(reps=args.reps, output=args.output, quick=args.quick)


if __name__ == "__main__":
    main()
