"""Fig. 3 (f): scatter of every evaluation's run time, TL vs no-TL.

The paper's Fig. 3 (f) shows all evaluations of one 16n-2s-20p job with and
without transfer learning: with TL the evaluations start in the
high-performing region and stay concentrated there (lower run times per
evaluation, hence more evaluations overall); without TL the early evaluations
are scattered across the whole run-time range.

The benchmark reproduces the same comparison on the largest setup of the
configured scale and prints a per-time-decile summary of the evaluation run
times for both variants.
"""

import numpy as np
import pytest

from repro.analysis.figures import format_table
from common import SCALE, get_campaign, print_block


def _scatter_summary(history, max_time, bins=6):
    edges = np.linspace(0.0, max_time, bins + 1)
    rows = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        runtimes = np.array(
            [ev.runtime for ev in history if lo <= ev.completed < hi and np.isfinite(ev.runtime)]
        )
        failures = sum(
            1 for ev in history if lo <= ev.completed < hi and not np.isfinite(ev.runtime)
        )
        if runtimes.size:
            rows.append(
                [f"{lo:.0f}-{hi:.0f}s", len(runtimes), f"{np.median(runtimes):.1f}",
                 f"{runtimes.min():.1f}", f"{runtimes.max():.1f}", failures]
            )
        else:
            rows.append([f"{lo:.0f}-{hi:.0f}s", 0, "-", "-", "-", failures])
    return rows


def _run():
    target = SCALE.setups_fig3[-1]
    source = SCALE.setups_fig3[-2] if len(SCALE.setups_fig3) > 1 else None
    no_tl = get_campaign(target, "RF")
    tl = get_campaign(target, "TL-RF", source_setup=source) if source else None
    return target, no_tl, tl


@pytest.mark.benchmark(group="fig3")
def test_fig3_scatter_tl_vs_no_tl(benchmark):
    """Regenerate the Fig. 3 (f) evaluation scatter for one job of each variant."""
    target, no_tl, tl = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert tl is not None, "the configured scale needs at least two setups"

    headers = ["window", "#evals", "median (s)", "min (s)", "max (s)", "#failed"]
    no_tl_history = no_tl.results[0].history
    tl_history = tl.results[0].history
    body = (
        "without transfer learning:\n"
        + format_table(headers, _scatter_summary(no_tl_history, SCALE.max_time))
        + "\n\nwith transfer learning:\n"
        + format_table(headers, _scatter_summary(tl_history, SCALE.max_time))
    )
    print_block(f"Fig. 3 (f) — evaluation scatter on {target}", body)

    # Paper shape: the TL job starts off in the high-performing region, so the
    # median run time of its *early* evaluations is lower than the cold job's.
    early = 0.3 * SCALE.max_time
    early_median = lambda history: np.nanmedian(  # noqa: E731
        [ev.runtime for ev in history if ev.completed <= early]
    )
    assert early_median(tl_history) <= early_median(no_tl_history) * 1.1

    # More evaluations overall with TL (faster configurations per evaluation).
    assert len(tl_history) >= 0.8 * len(no_tl_history)
