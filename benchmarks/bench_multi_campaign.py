"""Multi-campaign batch runner vs. sequential campaigns — wall-clock speedup.

The paper's evaluation is a *fleet* of asynchronous BO campaigns (setups ×
methods × repetitions).  This benchmark runs the same 8-campaign fleet two
ways:

* **sequential** — 8 independent ``CBOSearch.run`` calls, one after another
  (how ``run_repeated_search`` executed before the service layer existed);
* **batched** — one :class:`~repro.service.CampaignRunner` advancing all 8
  campaigns in lock-step batch ticks: per tick, the due random-forest refits
  run as a single bit-identical fleet fit, the candidate pools are scored in
  one fused forest traversal, and the run-function calls (a shared
  surrogate-runtime model of the application, as in the paper's Fig. 5
  methodology) are evaluated by one
  :class:`~repro.hep.surrogate_runtime.SurrogateRuntimeFleet` pass.

The two executions are asserted **bit-identical** per campaign (identical
histories, evaluation timings, busy intervals and utilisation) — the batched
runner changes wall-clock only.  Timings take the best of ``--reps``
repetitions per mode to suppress machine noise.

Results are written to ``BENCH_multi_campaign.json`` (repo root by default).
Acceptance bar: ≥2× batched-vs-sequential speedup at the headline 8-campaign
scenario.

Run with::

    PYTHONPATH=src python benchmarks/bench_multi_campaign.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))  # for `common` when run directly

from repro.core.search import CBOSearch, SearchResult
from repro.core.surrogate import RandomForestSurrogate
from repro.hep import HEPWorkflowProblem
from repro.hep.surrogate_runtime import SurrogateRuntime, SurrogateRuntimeFleet
from repro.service import CampaignRunner, CampaignSpec

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_multi_campaign.json"

SETUP = "4n-2s-20p"
NUM_CAMPAIGNS = 8

#: Scenario name → campaign knobs.  The headline scenario is fleet-shaped:
#: many workers per campaign and a moderate evaluation budget, where the
#: per-tick surrogate refits dominate and batch ticks amortise them.
SCENARIOS: Dict[str, Dict[str, int]] = {
    "fleet": dict(
        num_workers=32, max_evaluations=64, num_candidates=64, n_initial_points=6, n_estimators=8
    ),
    "standard": dict(
        num_workers=16, max_evaluations=96, num_candidates=128, n_initial_points=10, n_estimators=12
    ),
    "paper-shape": dict(
        num_workers=8, max_evaluations=128, num_candidates=512, n_initial_points=10, n_estimators=12
    ),
}
HEADLINE = "fleet"


def build_application_model(problem: HEPWorkflowProblem, seed: int = 7) -> SurrogateRuntime:
    """The shared surrogate model of the application's run time (Fig. 5 style)."""
    rng = np.random.default_rng(seed)
    configs = problem.space.sample(160, rng)
    runtimes = np.exp(rng.normal(4.5, 0.6, size=len(configs)))
    return SurrogateRuntime.from_data(problem.space, configs, runtimes, seed=seed)


def make_runtimes(problem: HEPWorkflowProblem, base: SurrogateRuntime) -> List[SurrogateRuntime]:
    """Per-campaign run functions: one shared forest, private noise streams."""
    return [
        SurrogateRuntime(problem.space, base.forest, noise=0.02, seed=100 + i)
        for i in range(NUM_CAMPAIGNS)
    ]


def make_search(problem, run_function, seed, knobs) -> CBOSearch:
    return CBOSearch(
        problem.space,
        run_function,
        num_workers=knobs["num_workers"],
        surrogate=RandomForestSurrogate(n_estimators=knobs["n_estimators"], seed=seed),
        num_candidates=knobs["num_candidates"],
        n_initial_points=knobs["n_initial_points"],
        seed=seed,
    )


def run_sequential(problem, base, knobs) -> List[SearchResult]:
    runtimes = make_runtimes(problem, base)
    return [
        make_search(problem, runtimes[i], i, knobs).run(
            max_time=float("inf"), max_evaluations=knobs["max_evaluations"]
        )
        for i in range(NUM_CAMPAIGNS)
    ]


def run_batched(problem, base, knobs) -> List[SearchResult]:
    runtimes = make_runtimes(problem, base)
    fleet = SurrogateRuntimeFleet(runtimes)
    specs = [
        CampaignSpec(
            search=make_search(problem, runtimes[i], i, knobs),
            max_time=float("inf"),
            max_evaluations=knobs["max_evaluations"],
            label=f"campaign-{i}",
        )
        for i in range(NUM_CAMPAIGNS)
    ]
    runner = CampaignRunner(specs, run_batcher=fleet.run_batch)
    return runner.run()


def assert_bit_identical(seq: List[SearchResult], bat: List[SearchResult]) -> None:
    """Hard check: the batched runner must not change any campaign's results."""
    for i, (a, b) in enumerate(zip(seq, bat)):
        assert len(a.history) == len(b.history), f"campaign {i}: history length"
        for ev_a, ev_b in zip(a.history, b.history):
            assert ev_a.configuration == ev_b.configuration, f"campaign {i}: configuration"
            assert ev_a.submitted == ev_b.submitted, f"campaign {i}: submitted"
            assert ev_a.completed == ev_b.completed, f"campaign {i}: completed"
            assert (ev_a.objective == ev_b.objective) or (
                math.isnan(ev_a.objective) and math.isnan(ev_b.objective)
            ), f"campaign {i}: objective"
        assert a.busy_intervals == b.busy_intervals, f"campaign {i}: busy intervals"
        assert a.worker_utilization == b.worker_utilization, f"campaign {i}: utilization"
        assert a.best_configuration == b.best_configuration, f"campaign {i}: best"


class _FitClock:
    """Wall-clock spent inside the level-wise forest builder (both modes)."""

    def __init__(self):
        import repro.core.surrogate.random_forest as rf_module

        self._module = rf_module
        self._original = rf_module._build_forest_fleet
        self.elapsed = 0.0

    def __enter__(self):
        def timed(*args, **kwargs):
            start = time.perf_counter()
            try:
                return self._original(*args, **kwargs)
            finally:
                self.elapsed += time.perf_counter() - start

        self._module._build_forest_fleet = timed
        return self

    def __exit__(self, *exc):
        self._module._build_forest_fleet = self._original
        return False


def measure(problem, base, knobs, reps: int) -> Dict[str, object]:
    """Best-of-``reps`` wall clock for both modes, with a bit-identity check."""
    seq_times, bat_times = [], []
    seq_fit, bat_fit = [], []
    seq_results = bat_results = None
    for _ in range(reps):
        with _FitClock() as clock:
            start = time.perf_counter()
            seq_results = run_sequential(problem, base, knobs)
            seq_times.append(time.perf_counter() - start)
        seq_fit.append(clock.elapsed)
        with _FitClock() as clock:
            start = time.perf_counter()
            bat_results = run_batched(problem, base, knobs)
            bat_times.append(time.perf_counter() - start)
        bat_fit.append(clock.elapsed)
    assert_bit_identical(seq_results, bat_results)
    t_seq, t_bat = min(seq_times), min(bat_times)
    return {
        "knobs": dict(knobs),
        "num_campaigns": NUM_CAMPAIGNS,
        "evaluations_per_campaign": [r.num_evaluations for r in bat_results],
        "sequential_s": t_seq,
        "batched_s": t_bat,
        "speedup": t_seq / max(t_bat, 1e-12),
        "surrogate_fit_sequential_s": min(seq_fit),
        "surrogate_fit_batched_s": min(bat_fit),
        "speedup_surrogate_fits": min(seq_fit) / max(min(bat_fit), 1e-12),
        "bit_identical": True,
    }


def run_benchmark(reps: int = 3, scenarios=None, output: Path = DEFAULT_OUTPUT):
    problem = HEPWorkflowProblem.from_setup(SETUP, seed=1)
    base = build_application_model(problem)
    names = list(scenarios or SCENARIOS)
    results = {}
    for name in names:
        entry = measure(problem, base, SCENARIOS[name], reps)
        results[name] = entry
        print(
            f"{name:12s} seq {entry['sequential_s']:6.2f}s  "
            f"batched {entry['batched_s']:6.2f}s  speedup {entry['speedup']:.2f}x  "
            f"(surrogate fits {entry['speedup_surrogate_fits']:.2f}x, bit-identical)"
        )
    headline = results.get(HEADLINE) or results[names[0]]
    payload = {
        "benchmark": "multi_campaign",
        "setup": SETUP,
        "num_campaigns": NUM_CAMPAIGNS,
        "reps": reps,
        "description": (
            "8 concurrent asynchronous BO campaigns over a shared "
            "surrogate-runtime application model: one CampaignRunner batch-tick "
            "execution (fleet surrogate fits, fused candidate scoring, batched "
            "run-function evaluation) vs 8 sequential CBOSearch.run calls. "
            "Results are asserted bit-identical per campaign; only wall-clock "
            "changes. Times are best-of-reps."
        ),
        "results": results,
        "acceptance": {
            "criterion": f"batched vs sequential speedup >= 2.0 at the '{HEADLINE}' scenario, bit-identical",
            "speedup": headline["speedup"],
            "speedup_surrogate_fits": headline["speedup_surrogate_fits"],
            "bit_identical": headline["bit_identical"],
            "passed": bool(headline["speedup"] >= 2.0 and headline["bit_identical"]),
        },
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")
    status = "PASS" if payload["acceptance"]["passed"] else "FAIL"
    print(f"acceptance ({payload['acceptance']['criterion']}): {headline['speedup']:.2f}x -> {status}")
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="one rep, headline scenario only")
    parser.add_argument("--reps", type=int, default=3, help="repetitions per mode (best-of)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT, help="JSON output path")
    args = parser.parse_args(argv)
    if args.quick:
        return run_benchmark(reps=1, scenarios=[HEADLINE], output=args.output)
    return run_benchmark(reps=args.reps, output=args.output)


if __name__ == "__main__":
    main()
