"""Shared configuration and caching for the benchmark harness.

Every figure of the paper's evaluation section has a benchmark that
regenerates its data series.  The real experiments ran for one hour on 128
Theta nodes; the reproduction runs the same searches against the simulated
workflow in virtual time, so the knobs below trade fidelity against the wall
clock time of the benchmark suite.

Two scales are provided, selected with the ``REPRO_BENCH_SCALE`` environment
variable:

* ``small`` (default) — reduced worker counts, budgets and repetitions; the
  whole suite runs in roughly 15–25 minutes and already reproduces the
  qualitative shape of every figure.
* ``paper`` — 128 workers, 1-hour budgets, 5 repetitions and all five setups;
  closer to the original campaign sizes (expect multiple hours).

Campaign results are cached per benchmark session (keyed by their arguments)
so that several figures can share the same underlying searches — e.g. the
Fig. 4 RAND campaign is also the speedup baseline.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.campaign import CampaignResult, run_repeated_search
from repro.core.history import SearchHistory
from repro.hep import HEPWorkflowProblem

__all__ = ["BenchScale", "SCALE", "get_problem", "get_campaign", "print_block"]


@dataclass(frozen=True)
class BenchScale:
    """Knobs controlling the size of the benchmark campaigns."""

    name: str
    num_workers: int
    max_time: float
    repetitions: int
    setups_fig3: Tuple[str, ...]
    setups_fig4: Tuple[str, ...]
    setups_fig5: Tuple[str, ...]
    refit_interval: int
    vae_epochs: int
    surrogate_train_samples: int


_SMALL = BenchScale(
    name="small",
    num_workers=8,
    max_time=600.0,
    repetitions=2,
    setups_fig3=("4n-1s-11p", "4n-2s-16p", "4n-2s-20p"),
    setups_fig4=("4n-1s-11p", "4n-2s-16p", "4n-2s-20p"),
    setups_fig5=("4n-2s-20p",),
    refit_interval=6,
    vae_epochs=120,
    surrogate_train_samples=250,
)

_PAPER = BenchScale(
    name="paper",
    num_workers=128,
    max_time=3600.0,
    repetitions=5,
    setups_fig3=("4n-1s-11p", "4n-2s-16p", "4n-2s-20p", "8n-2s-20p", "16n-2s-20p"),
    setups_fig4=("4n-1s-11p", "4n-2s-16p", "4n-2s-20p", "8n-2s-20p", "16n-2s-20p"),
    setups_fig5=("4n-2s-20p", "8n-2s-20p"),
    refit_interval=8,
    vae_epochs=300,
    surrogate_train_samples=600,
)


def _select_scale() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if name == "paper":
        return _PAPER
    return _SMALL


#: The active benchmark scale.
SCALE = _select_scale()


@functools.lru_cache(maxsize=None)
def get_problem(setup: str, seed: int = 1) -> HEPWorkflowProblem:
    """One shared problem instance per setup (the workflow is stateless)."""
    return HEPWorkflowProblem.from_setup(setup, seed=seed)


_CAMPAIGN_CACHE: Dict[tuple, CampaignResult] = {}


def get_campaign(
    setup: str,
    method: str,
    source_setup: str | None = None,
    seed: int = 0,
) -> CampaignResult:
    """Run (or reuse) a campaign of ``method`` on ``setup``.

    ``method`` is one of ``"RAND"``, ``"RF"``, ``"GP"``, ``"TL-RF"``,
    ``"TL-GP"``.  Transfer-learning methods take their source history from the
    first repetition of the plain-RF campaign on ``source_setup`` (or, when no
    source setup is given, from the previous setup in the Fig. 3 chain).
    """
    key = (setup, method, source_setup, seed, SCALE.name)
    if key in _CAMPAIGN_CACHE:
        return _CAMPAIGN_CACHE[key]

    problem = get_problem(setup)
    source_history: SearchHistory | None = None
    surrogate = "RF"
    random_sampling = False
    if method == "RAND":
        surrogate, random_sampling = "RAND", True
    elif method == "RF":
        surrogate = "RF"
    elif method == "GP":
        surrogate = "GP"
    elif method in ("TL-RF", "TL-GP"):
        surrogate = method.split("-")[1]
        if source_setup is None:
            raise ValueError(f"{method} requires a source_setup")
        source_history = get_campaign(source_setup, "RF", seed=seed).results[0].history
    else:
        raise ValueError(f"unknown method {method!r}")

    campaign = run_repeated_search(
        problem.space,
        problem.evaluate,
        label=method,
        setup=setup,
        surrogate=surrogate,
        random_sampling=random_sampling,
        source_history=source_history,
        repetitions=SCALE.repetitions,
        max_time=SCALE.max_time,
        num_workers=SCALE.num_workers,
        refit_interval=SCALE.refit_interval,
        vae_epochs=SCALE.vae_epochs,
        seed=seed,
    )
    _CAMPAIGN_CACHE[key] = campaign
    return campaign


def print_block(title: str, body: str) -> None:
    """Print a titled block (visible with ``pytest -s``/captured in the report)."""
    line = "=" * max(len(title), 20)
    print(f"\n{line}\n{title}\n{line}\n{body}\n")
