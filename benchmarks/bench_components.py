"""Micro-benchmarks of the reproduction's building blocks.

These are conventional pytest-benchmark measurements (multiple rounds) of the
hot paths the campaign benchmarks rely on: a single simulated workflow
evaluation, a random-forest / Gaussian-process surrogate fit, one optimizer
ask/tell interaction and a tabular-VAE training run.  They are useful when
tuning the simulator or the models, and they document the cost assumptions
behind the campaign-level figures.
"""

import numpy as np
import pytest

from repro.core.optimizer import BayesianOptimizer
from repro.core.surrogate import GaussianProcessSurrogate, RandomForestSurrogate
from repro.core.vae.transforms import TabularTransform
from repro.core.vae.tvae import TabularVAE
from repro.hep.parameters import DEFAULT_CONFIGURATION
from common import get_problem


@pytest.mark.benchmark(group="components")
@pytest.mark.parametrize("setup", ["4n-1s-11p", "4n-2s-20p"])
def test_bench_workflow_evaluation(benchmark, setup):
    """Cost of one simulated workflow evaluation (default configuration)."""
    problem = get_problem(setup)
    runtime = benchmark(problem.workflow.run, DEFAULT_CONFIGURATION)
    assert not runtime.failed


@pytest.mark.benchmark(group="components")
def test_bench_random_workflow_evaluation(benchmark):
    """Cost of evaluating random configurations (includes pathological ones)."""
    problem = get_problem("4n-2s-20p")
    rng = np.random.default_rng(0)
    configs = problem.space.sample(64, rng)
    counter = {"i": 0}

    def evaluate_next():
        config = configs[counter["i"] % len(configs)]
        counter["i"] += 1
        return problem.evaluate(config)

    benchmark(evaluate_next)


def _training_data(n, setup="4n-2s-20p", seed=0):
    problem = get_problem(setup)
    rng = np.random.default_rng(seed)
    configs = problem.space.sample(n, rng)
    X = problem.space.to_numeric_array(configs)
    y = rng.normal(size=n)
    return problem, X, y


@pytest.mark.benchmark(group="components")
@pytest.mark.parametrize("n", [128, 512])
def test_bench_random_forest_fit(benchmark, n):
    """Random-forest surrogate refit cost (the per-batch cost of the search)."""
    _, X, y = _training_data(n)
    forest = RandomForestSurrogate(n_estimators=12, seed=0)
    benchmark(forest.fit, X, y)


@pytest.mark.benchmark(group="components")
@pytest.mark.parametrize("n", [128, 512])
def test_bench_gaussian_process_fit(benchmark, n):
    """Gaussian-process surrogate fit cost (grows as O(n^3))."""
    _, X, y = _training_data(n)
    gp = GaussianProcessSurrogate()
    benchmark(gp.fit, X, y)


@pytest.mark.benchmark(group="components")
def test_bench_optimizer_ask(benchmark):
    """One multi-point ask (512 candidates, batch of 16) on a fitted optimizer."""
    problem, X, y = _training_data(256)
    optimizer = BayesianOptimizer(problem.space, surrogate="RF", n_initial_points=10, seed=0)
    rng = np.random.default_rng(1)
    configs = problem.space.sample(256, rng)
    optimizer.tell(configs, list(np.random.default_rng(2).normal(size=256)))
    benchmark(optimizer.ask, 16)


@pytest.mark.benchmark(group="components")
def test_bench_tabular_vae_fit(benchmark):
    """Training the tabular VAE on a top-q%-sized dataset (~100 rows)."""
    problem = get_problem("4n-2s-20p")
    rng = np.random.default_rng(0)
    configs = problem.space.sample(100, rng)
    transform = TabularTransform(problem.space)
    X = transform.encode(configs)

    def train():
        vae = TabularVAE(
            input_dim=transform.dimension,
            numeric_columns=transform.numeric_columns,
            categorical_blocks=transform.categorical_blocks,
            latent_dim=8,
            seed=0,
        )
        vae.fit(X, epochs=100, batch_size=64)
        return vae

    vae = benchmark.pedantic(train, rounds=1, iterations=1)
    assert vae.fitted
