"""Pytest configuration for the benchmark harness."""

import sys
from pathlib import Path

# Make the sibling ``common`` module importable when pytest is invoked from
# the repository root (``pytest benchmarks/``).
sys.path.insert(0, str(Path(__file__).parent))
