"""Ablation: the transfer-learning design choices of VAE-ABO.

DESIGN.md calls out three design choices of the informative prior that the
paper fixes without a sweep:

* the quantile ``q`` selecting the high-performing configurations (10 %),
* the latent dimensionality of the tabular VAE, and
* learning a *distribution* (the VAE) versus simply replaying the best
  configurations from the source run (the "reuse the best point" strawman the
  paper explicitly argues against with Fig. 3 (f)).

This benchmark sweeps those choices on one transfer step of the chain and
reports the early incumbent and the final best of each variant.
"""

import numpy as np
import pytest

from repro.analysis.figures import format_table
from repro.analysis.metrics import mean_best_runtime
from repro.core.search import VAEABOSearch
from repro.core.transfer import TransferLearningPrior, fit_transfer_prior
from repro.core.vae.transforms import TabularTransform
from common import SCALE, get_campaign, get_problem, print_block


def _variants():
    """(label, kwargs for fit/search) pairs swept by the ablation."""
    return [
        ("q=5%", dict(quantile=0.05, vae_latent_dim=8)),
        ("q=10% (paper)", dict(quantile=0.10, vae_latent_dim=8)),
        ("q=30%", dict(quantile=0.30, vae_latent_dim=8)),
        ("latent=2", dict(quantile=0.10, vae_latent_dim=2)),
    ]


def _run_ablation():
    target = SCALE.setups_fig3[-1]
    source_setup = SCALE.setups_fig3[-2]
    source_history = get_campaign(source_setup, "RF").results[0].history
    problem = get_problem(target)
    budget = SCALE.max_time / 2

    rows = []
    for label, kwargs in _variants():
        search = VAEABOSearch(
            problem.space,
            problem.evaluate,
            source_history=source_history,
            vae_epochs=SCALE.vae_epochs,
            num_workers=SCALE.num_workers,
            surrogate="RF",
            refit_interval=SCALE.refit_interval,
            seed=31,
            **kwargs,
        )
        result = search.run(max_time=budget)
        rows.append(
            (label, result, result.history.best_runtime_at(0.25 * budget))
        )

    # Strawman: reuse the top configurations directly (no VAE) by disabling the
    # generative model through a tiny selection.
    prior = fit_transfer_prior(
        source_history, problem.space, quantile=0.10,
        min_configurations_for_vae=10**9, seed=31,
    )
    assert isinstance(prior, TransferLearningPrior) and prior.vae is None
    replay = VAEABOSearch(
        problem.space, problem.evaluate, source_history=None, prior=prior,
        num_workers=SCALE.num_workers, surrogate="RF",
        refit_interval=SCALE.refit_interval, seed=31,
    )
    result = replay.run(max_time=budget)
    rows.append(("replay top-q (no VAE)", result, result.history.best_runtime_at(0.25 * budget)))
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_vae_design_choices(benchmark):
    """Sweep quantile / latent size / no-VAE replay and report the metrics."""
    rows = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    budget = SCALE.max_time

    table = [
        [
            label,
            f"{result.best_runtime:.1f}",
            f"{early:.1f}",
            f"{mean_best_runtime(result, budget):.1f}",
            result.num_evaluations,
        ]
        for label, result, early in rows
    ]
    print_block(
        "Ablation — VAE transfer-learning design choices",
        format_table(
            ["variant", "best (s)", "best@25% budget (s)", "mean best (s)", "#evals"],
            table,
        ),
    )

    # Every variant is a working transfer-learning search: each must reach a
    # finite best and complete a healthy number of evaluations.
    for label, result, _ in rows:
        assert np.isfinite(result.best_runtime), label
        assert result.num_evaluations > SCALE.num_workers, label

    # The paper's setting should not be far from the best variant.
    bests = {label: result.best_runtime for label, result, _ in rows}
    paper = bests["q=10% (paper)"]
    assert paper <= min(bests.values()) * 1.3
