"""Cold-start analysis over hundreds of stored campaigns: journal mmap vs CSV.

A long-lived tuning service accumulates one stored campaign per study; the
paper's figure tables (Fig. 3/4/5) are aggregations over exactly such corpora.
The CSV interchange path pays a full text parse per campaign per process; the
memory-mapped journal read path (:class:`repro.core.journal.JournalReader`)
maps the binary columns at their checkpoint watermark and never decodes the
parameter columns for metadata-only sweeps.

This benchmark synthesises a corpus of a few hundred stored campaigns
(grouped into setups × variants × repetitions, values quantised to the CSV
format's 6-decimal precision so both formats load bit-identical doubles),
writes it twice — ``format="csv"`` and ``format="journal"`` — and measures a
**cold start** per format: a child process that loads every campaign
(:func:`~repro.analysis.csvio.load_campaign`) and renders the Fig. 3 table,
reporting wall-clock time and peak RSS (``ru_maxrss``).  A child process per
mode is the only honest way to measure cold-start peak RSS: ``ru_maxrss`` is
monotonic within a process, so back-to-back in-process measurements would
credit the second mode with the first mode's high-water mark.

Correctness is asserted alongside the measurement: the journal-loaded
histories must be **bit-identical** to their CSV-loaded counterparts
(configurations, timestamps, runtimes, objectives) and both modes must render
the **same Fig. 3 table**.

Results are written to ``BENCH_journal_analysis.json`` (repo root by
default).  Acceptance bar: >= 5x faster cold-start load+fig3 over >= 200
stored campaigns, bit-identical histories, identical tables.

Run with::

    PYTHONPATH=src python benchmarks/bench_journal_analysis.py [--quick]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import os
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))  # for `common` when run directly

from repro.analysis.campaign import CampaignResult, result_from_history
from repro.analysis.csvio import load_campaign, save_campaign
from repro.analysis.figures import fig3_table
from repro.core.history import Evaluation, SearchHistory
from repro.core.space import (
    CategoricalParameter,
    IntegerParameter,
    RealParameter,
    SearchSpace,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_journal_analysis.json"

KNOBS = dict(
    num_setups=6,
    num_variants=5,
    num_reps=8,  # stored campaigns = setups * variants * reps = 240
    min_rows=400,
    max_rows=500,
    max_time=3600.0,
    num_workers=16,
)

QUICK_KNOBS = dict(
    num_setups=2,
    num_variants=2,
    num_reps=2,
    min_rows=30,
    max_rows=40,
    max_time=3600.0,
    num_workers=16,
)


def make_bench_space() -> SearchSpace:
    """The synthetic corpus' space (mixed types, like the service space)."""
    return SearchSpace(
        [
            IntegerParameter("batch", 1, 1024, log=True),
            RealParameter("rate", 0.1, 50.0, log=True),
            CategoricalParameter("pool", ("fifo", "prio", "wait")),
            CategoricalParameter.boolean("busy"),
        ]
    )


def synth_history(
    space: SearchSpace, rng: np.random.Generator, knobs: Dict
) -> SearchHistory:
    """One synthetic campaign history with CSV-exact (6-decimal) metadata.

    The CSV format writes timestamps/runtimes/objectives with ``%.6f``;
    quantising the synthetic values to 6 decimals makes the CSV round trip
    exact, so the journal-vs-CSV bit-identity assertion is meaningful.
    """
    n = int(rng.integers(knobs["min_rows"], knobs["max_rows"] + 1))
    num_workers = knobs["num_workers"]
    history = SearchHistory(space)
    configs = space.sample(n, rng)
    clock = np.zeros(num_workers)
    for i, config in enumerate(configs):
        worker = int(i % num_workers)
        runtime = round(float(rng.uniform(20.0, 120.0)), 6)
        submitted = round(float(clock[worker]), 6)
        completed = round(submitted + runtime, 6)
        clock[worker] = completed
        failed = rng.random() < 0.02
        history.append(
            Evaluation(
                configuration=config,
                objective=float("nan") if failed else -runtime,
                runtime=float("nan") if failed else runtime,
                submitted=submitted,
                completed=completed,
                worker=worker,
                eval_id=i,
            )
        )
    return history


def generate_corpus(root: Path, knobs: Dict, seed: int = 0) -> Dict[str, int]:
    """Write the synthetic corpus under ``root/csv`` and ``root/journal``.

    Layout: one campaign directory per (setup, variant) holding ``num_reps``
    stored repetitions — the shape ``load_campaign`` + ``fig3_table`` consume.
    Both formats are written from the *same* in-memory histories.
    """
    rng = np.random.default_rng(seed)
    space = make_bench_space()
    campaigns = 0
    rows = 0
    for s in range(knobs["num_setups"]):
        for v in range(knobs["num_variants"]):
            campaign = CampaignResult(
                label=f"variant{v}",
                setup=f"setup{s}",
                max_time=knobs["max_time"],
                num_workers=knobs["num_workers"],
            )
            for _ in range(knobs["num_reps"]):
                history = synth_history(space, rng, knobs)
                campaign.results.append(
                    result_from_history(
                        history,
                        max_time=knobs["max_time"],
                        num_workers=knobs["num_workers"],
                    )
                )
                campaigns += 1
                rows += len(history)
            name = f"setup{s}-variant{v}"
            save_campaign(campaign, root / "csv" / name, format="csv")
            save_campaign(campaign, root / "journal" / name, format="journal")
    return {"stored_campaigns": campaigns, "total_rows": rows}


# ------------------------------------------------------------ cold-start child
def cold_load(root: Path) -> Dict[str, object]:
    """Load every campaign under ``root`` and render the Fig. 3 table.

    Runs inside a fresh child process (``--measure``): every cache is empty
    and ``ru_maxrss`` reflects this workload alone.
    """
    space = make_bench_space()
    start = time.perf_counter()
    chain: Dict[str, Dict[str, CampaignResult]] = {}
    rows = 0
    for directory in sorted(p for p in root.iterdir() if p.is_dir()):
        campaign = load_campaign(directory, space)
        rows += sum(len(r.history) for r in campaign.results)
        chain.setdefault(campaign.setup, {})[campaign.label] = campaign
    table = fig3_table(chain)
    elapsed = time.perf_counter() - start
    return {
        "elapsed_s": elapsed,
        "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "table_sha256": hashlib.sha256(table.encode()).hexdigest(),
        "total_rows": rows,
    }


def measure_cold(root: Path, reps: int) -> Dict[str, object]:
    """Run :func:`cold_load` in ``reps`` fresh child processes; best-of."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    best = None
    for _ in range(reps):
        out = subprocess.run(
            [sys.executable, str(Path(__file__).resolve()), "--measure", str(root)],
            check=True,
            capture_output=True,
            text=True,
            env=env,
        )
        sample = json.loads(out.stdout)
        if best is None or sample["elapsed_s"] < best["elapsed_s"]:
            best = sample
    return best


# ---------------------------------------------------------------- bit identity
def assert_histories_identical(a: SearchHistory, b: SearchHistory, what: str) -> None:
    assert len(a) == len(b), f"{what}: history length {len(a)} != {len(b)}"
    for ev_a, ev_b in zip(a, b):
        assert ev_a.configuration == ev_b.configuration, f"{what}: configuration"
        assert ev_a.submitted == ev_b.submitted, f"{what}: submitted"
        assert ev_a.completed == ev_b.completed, f"{what}: completed"
        assert ev_a.worker == ev_b.worker, f"{what}: worker"
        assert ev_a.eval_id == ev_b.eval_id, f"{what}: eval_id"
        assert (ev_a.runtime == ev_b.runtime) or (
            math.isnan(ev_a.runtime) and math.isnan(ev_b.runtime)
        ), f"{what}: runtime"
        assert (ev_a.objective == ev_b.objective) or (
            math.isnan(ev_a.objective) and math.isnan(ev_b.objective)
        ), f"{what}: objective"


def check_bit_identity(root: Path) -> int:
    """Journal-loaded histories must equal their CSV-loaded counterparts."""
    space = make_bench_space()
    checked = 0
    for csv_dir in sorted(p for p in (root / "csv").iterdir() if p.is_dir()):
        journal_dir = root / "journal" / csv_dir.name
        from_csv = load_campaign(csv_dir, space)
        from_journal = load_campaign(journal_dir, space)
        assert len(from_csv.results) == len(from_journal.results), csv_dir.name
        for i, (rc, rj) in enumerate(zip(from_csv.results, from_journal.results)):
            assert_histories_identical(
                rc.history, rj.history, f"{csv_dir.name}/rep{i:02d}"
            )
            checked += 1
    return checked


# ------------------------------------------------------------------- benchmark
def run_benchmark(knobs: Dict, reps: int, output: Path) -> Dict:
    with tempfile.TemporaryDirectory(prefix="bench-journal-analysis-") as tmp:
        root = Path(tmp)
        counts = generate_corpus(root, knobs)
        print(
            f"corpus: {counts['stored_campaigns']} stored campaigns, "
            f"{counts['total_rows']} rows"
        )
        checked = check_bit_identity(root)
        results = {
            mode: measure_cold(root / mode, reps) for mode in ("csv", "journal")
        }
    tables_equal = results["csv"]["table_sha256"] == results["journal"]["table_sha256"]
    assert tables_equal, "fig3 tables differ between CSV and journal loads"
    assert results["csv"]["total_rows"] == results["journal"]["total_rows"]
    speedup = results["csv"]["elapsed_s"] / results["journal"]["elapsed_s"]
    for mode in ("csv", "journal"):
        r = results[mode]
        print(
            f"{mode:>8}: {r['elapsed_s']:7.3f}s  peak RSS {r['maxrss_kb'] / 1024:7.1f} MiB"
        )
    print(f" speedup: {speedup:.1f}x (cold-start load_campaign + fig3_table)")
    passed = bool(
        speedup >= 5.0 and counts["stored_campaigns"] >= 200 and tables_equal
    )
    payload = {
        "benchmark": "journal_analysis",
        "knobs": dict(knobs),
        "reps": reps,
        "description": (
            "Cold-start analysis over a corpus of stored campaigns: a fresh "
            "child process per mode loads every campaign (load_campaign) and "
            "renders the Fig. 3 table, for the CSV interchange format vs the "
            "memory-mapped campaign-journal format. Histories are asserted "
            "bit-identical across formats and both modes must render the "
            "same table. Times are best-of-reps; peak RSS is the child's "
            "ru_maxrss."
        ),
        "corpus": counts,
        "results": results,
        "acceptance": {
            "criterion": (
                ">= 5x faster cold-start load+fig3 over >= 200 stored "
                "campaigns, histories bit-identical, tables identical"
            ),
            "speedup": speedup,
            "stored_campaigns": counts["stored_campaigns"],
            "histories_checked": checked,
            "bit_identical": True,
            "tables_identical": tables_equal,
            "passed": passed,
        },
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")
    status = "PASS" if passed else "FAIL"
    print(f"acceptance ({payload['acceptance']['criterion']}): {speedup:.1f}x -> {status}")
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="tiny corpus, one rep (CI smoke)"
    )
    parser.add_argument("--reps", type=int, default=3, help="cold runs per mode (best-of)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT, help="JSON output path")
    parser.add_argument(
        "--measure", type=Path, default=None, help=argparse.SUPPRESS
    )  # internal: cold-start child, prints one JSON sample
    args = parser.parse_args(argv)
    if args.measure is not None:
        print(json.dumps(cold_load(args.measure)))
        return None
    if args.quick:
        return run_benchmark(QUICK_KNOBS, reps=1, output=args.output)
    return run_benchmark(KNOBS, reps=args.reps, output=args.output)


if __name__ == "__main__":
    main()
