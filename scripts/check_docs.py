#!/usr/bin/env python
"""Documentation health check, run by CI.

Two invariants are enforced:

1. every public module under ``src/repro`` (file names not starting with an
   underscore; ``__init__.py`` counts as the package's module) carries a
   module docstring — the ``core`` package is the hard requirement, the rest
   of the tree is checked too since it currently holds;
2. every relative Markdown link in the repo's documentation front door
   (``README.md``, ``docs/*.md``, ``ROADMAP.md``, ``benchmarks/README.md``)
   resolves to an existing file or directory.

Exits non-zero with a per-violation listing on failure, so the CI step's log
names exactly what to fix.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Documents whose relative links must resolve.
DOCUMENTS = ("README.md", "ROADMAP.md", "benchmarks/README.md")

#: Markdown inline links: [text](target), excluding images handled the same.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def missing_docstrings() -> list:
    """Public ``src/repro`` modules without a module docstring."""
    failures = []
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        if path.name.startswith("_") and path.name != "__init__.py":
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        if ast.get_docstring(tree) is None:
            failures.append(path.relative_to(REPO_ROOT))
    return failures


def broken_links() -> list:
    """(document, target) pairs whose relative link does not resolve."""
    documents = [REPO_ROOT / name for name in DOCUMENTS]
    documents.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    failures = []
    for document in documents:
        if not document.exists():
            failures.append((document.relative_to(REPO_ROOT), "<document missing>"))
            continue
        for target in _LINK_RE.findall(document.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (document.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                failures.append((document.relative_to(REPO_ROOT), target))
    return failures


def main() -> int:
    status = 0
    for path in missing_docstrings():
        print(f"missing module docstring: {path}")
        status = 1
    for document, target in broken_links():
        print(f"broken link in {document}: {target}")
        status = 1
    if status == 0:
        print("docs check passed: module docstrings present, all relative links resolve")
    return status


if __name__ == "__main__":
    sys.exit(main())
