"""Shared test configuration: Hypothesis profiles.

Three profiles control how many examples the property-based tests draw:

* ``dev`` (default) — quick local iteration;
* ``ci`` — what the CI workflow runs (more examples, no deadline so shared
  runners do not flake);
* ``thorough`` — an occasional deep sweep.

Select with ``REPRO_HYPOTHESIS_PROFILE=ci pytest ...``.  Tests that pin their
own ``@settings(max_examples=...)`` keep their explicit budget.
"""

import os

from hypothesis import settings

settings.register_profile("dev", max_examples=25, deadline=None)
settings.register_profile("ci", max_examples=60, deadline=None)
settings.register_profile("thorough", max_examples=400, deadline=None)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "dev"))
