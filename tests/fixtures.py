"""Shared test fixtures: the small spaces, run functions and campaign configs
that were previously copy-pasted across ``tests/core``, ``tests/service`` and
``tests/integration``.

Two families are provided:

* the **service** fixtures — the 4-parameter storage-service space and the
  deterministic run function the multi-campaign runner tests drive, plus the
  campaign factory and the bit-identity assertion those tests share;
* the **wide** fixtures — the 6-parameter mixed space and synthetic objective
  the optimizer regression tests (incremental cache, sharded scoring) share.

Import from test modules as ``from fixtures import ...`` (the ``tests``
directory is on ``sys.path`` through pytest's conftest handling).  Keep these
factories deterministic: several suites pin bit-identity across execution
modes, so a fixture that drew from global randomness would make failures
unreproducible.
"""

import math

from repro.core.search import CBOSearch
from repro.core.space import (
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
    RealParameter,
    SearchSpace,
)
from repro.core.surrogate import RandomForestSurrogate

__all__ = [
    "make_service_space",
    "service_run_function",
    "make_service_search",
    "make_gp_search",
    "make_refresh_search",
    "assert_results_identical",
    "make_wide_space",
    "wide_objective",
]


# ------------------------------------------------------------- service family
def make_service_space() -> SearchSpace:
    """The small storage-service space the runner/service tests tune."""
    return SearchSpace(
        [
            IntegerParameter("batch", 1, 1024, log=True),
            RealParameter("rate", 0.1, 50.0, log=True),
            CategoricalParameter("pool", ("fifo", "prio", "wait")),
            CategoricalParameter.boolean("busy"),
        ]
    )


def service_run_function(config) -> float:
    """Deterministic pseudo-runtime over :func:`make_service_space` configs."""
    value = abs(math.log(config["batch"]) - 4.0) + 0.3 * math.log(config["rate"])
    value += 1.0 if config["pool"] == "wait" else 0.0
    return 30.0 + 12.0 * value


def make_service_search(seed, space=None, **kwargs) -> CBOSearch:
    """A small RF-backed campaign over the service space (seeded)."""
    params = dict(
        num_workers=6,
        surrogate=RandomForestSurrogate(n_estimators=6, seed=seed),
        num_candidates=48,
        n_initial_points=5,
        seed=seed,
    )
    params.update(kwargs)
    return CBOSearch(
        space if space is not None else make_service_space(),
        service_run_function,
        **params,
    )


def make_gp_search(seed, space=None, **kwargs) -> CBOSearch:
    """A small GP-backed campaign over the service space (seeded)."""
    params = dict(
        num_workers=4,
        surrogate="GP",
        num_candidates=32,
        n_initial_points=4,
        seed=seed,
    )
    params.update(kwargs)
    return CBOSearch(
        space if space is not None else make_service_space(),
        service_run_function,
        **params,
    )


def make_refresh_search(seed, space=None, **kwargs) -> CBOSearch:
    """A campaign on the continuous-retuning scenario (periodic VAE refresh).

    The third member of the mixed-surrogate family the elastic/runner suites
    drive: RF-backed like :func:`make_service_search`, but with a periodic
    prior refresh so the runner's fused VAEFleet path engages.
    """
    params = dict(
        num_workers=6,
        surrogate=RandomForestSurrogate(n_estimators=6, seed=seed),
        num_candidates=48,
        n_initial_points=5,
        prior_refresh_interval=8,
        prior_refresh_top_k=8,
        prior_refresh_epochs=12,
        seed=seed,
    )
    params.update(kwargs)
    return CBOSearch(
        space if space is not None else make_service_space(),
        service_run_function,
        **params,
    )


def assert_results_identical(a, b) -> None:
    """Two :class:`~repro.core.search.SearchResult`\\ s must match bit for bit.

    The acceptance property of every batched/sequential comparison: the full
    evaluation record (configurations, timestamps, objectives), the busy
    intervals, the utilization and the incumbent must all be exactly equal.
    """
    assert len(a.history) == len(b.history)
    for ev_a, ev_b in zip(a.history, b.history):
        assert ev_a.configuration == ev_b.configuration
        assert ev_a.submitted == ev_b.submitted
        assert ev_a.completed == ev_b.completed
        assert (ev_a.objective == ev_b.objective) or (
            math.isnan(ev_a.objective) and math.isnan(ev_b.objective)
        )
    assert a.busy_intervals == b.busy_intervals
    assert a.worker_utilization == b.worker_utilization
    assert a.best_configuration == b.best_configuration


# ---------------------------------------------------------------- wide family
def make_wide_space() -> SearchSpace:
    """The 6-parameter mixed space the optimizer regression tests share."""
    return SearchSpace(
        [
            IntegerParameter("batch", 1, 2048, log=True),
            RealParameter("rate", 0.5, 100.0, log=True),
            RealParameter("fraction", -1.0, 1.0),
            CategoricalParameter("pool", ("fifo", "fifo_wait", "prio_wait")),
            OrdinalParameter("pes", (1, 2, 4, 8, 16, 32)),
            CategoricalParameter.boolean("busy"),
        ]
    )


def wide_objective(config) -> float:
    """Deterministic synthetic objective over :func:`make_wide_space` configs."""
    value = -abs(math.log(config["batch"]) - 3.0) - abs(config["fraction"])
    value -= 0.1 * config["pes"]
    if config["pool"] == "fifo":
        value += 0.25
    return value
