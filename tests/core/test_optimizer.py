"""Tests for the ask/tell Bayesian optimizer."""

import math

import numpy as np
import pytest

from repro.core.optimizer import BayesianOptimizer, make_surrogate
from repro.core.priors import CategoricalPrior, IndependentPrior
from repro.core.space import (
    CategoricalParameter,
    IntegerParameter,
    RealParameter,
    SearchSpace,
)
from repro.core.surrogate import (
    ConstantSurrogate,
    GaussianProcessSurrogate,
    RandomForestSurrogate,
)


def quadratic_space():
    return SearchSpace(
        [
            RealParameter("x", -5.0, 5.0),
            RealParameter("y", -5.0, 5.0),
            CategoricalParameter.boolean("flag"),
        ]
    )


def quadratic_objective(config):
    # Maximum at (2, -1), flag=True adds a small bonus.
    value = -((config["x"] - 2.0) ** 2) - (config["y"] + 1.0) ** 2
    return value + (0.5 if config["flag"] else 0.0)


class TestMakeSurrogate:
    def test_known_names(self):
        assert isinstance(make_surrogate("RF"), RandomForestSurrogate)
        assert isinstance(make_surrogate("GP"), GaussianProcessSurrogate)
        assert isinstance(make_surrogate("RAND"), ConstantSurrogate)

    def test_pass_through_instance(self):
        model = RandomForestSurrogate()
        assert make_surrogate(model) is model

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_surrogate("XGBOOST")


class TestAskTell:
    def test_ask_before_data_samples_from_prior(self):
        space = quadratic_space()
        opt = BayesianOptimizer(space, seed=0)
        batch = opt.ask(5)
        assert len(batch) == 5
        for config in batch:
            space.validate(config)

    def test_tell_then_ask_uses_the_model(self):
        space = quadratic_space()
        opt = BayesianOptimizer(space, n_initial_points=5, num_candidates=256, seed=0)
        rng = np.random.default_rng(0)
        configs = space.sample(30, rng)
        objectives = [quadratic_objective(c) for c in configs]
        opt.tell(configs, objectives)
        assert opt.surrogate.fitted
        proposals = opt.ask(4)
        assert len(proposals) == 4
        for proposal in proposals:
            space.validate(proposal)
        # The proposals are chosen by the surrogate-guided acquisition, so the
        # model should rate them at least as promising as random candidates.
        random_configs = space.sample(64, rng)
        prop_mean, prop_std = opt.surrogate.predict(opt._encode(proposals))
        rand_mean, rand_std = opt.surrogate.predict(opt._encode(random_configs))
        acq = opt.acquisition
        assert np.max(acq(prop_mean, prop_std)) >= np.median(acq(rand_mean, rand_std))

    def test_optimizer_improves_over_random(self):
        space = quadratic_space()
        rng = np.random.default_rng(1)
        opt = BayesianOptimizer(space, n_initial_points=8, num_candidates=256, seed=1)
        best = -np.inf
        for _ in range(16):
            batch = opt.ask(4)
            objectives = [quadratic_objective(c) for c in batch]
            best = max(best, max(objectives))
            opt.tell(batch, objectives)
        random_best = max(
            quadratic_objective(c) for c in space.sample(48, rng)
        )
        assert best >= random_best - 1.0

    def test_failures_are_filled_for_fitting(self):
        space = quadratic_space()
        opt = BayesianOptimizer(space, n_initial_points=2, seed=0)
        configs = space.sample(6, np.random.default_rng(0))
        objectives = [float("nan")] * 3 + [1.0, 2.0, 3.0]
        opt.tell(configs, objectives)
        assert opt.surrogate.fitted  # did not crash on NaN
        assert opt.num_observations == 6

    def test_tell_length_mismatch_rejected(self):
        space = quadratic_space()
        opt = BayesianOptimizer(space, seed=0)
        with pytest.raises(ValueError):
            opt.tell(space.sample(2, np.random.default_rng(0)), [1.0])

    def test_ask_does_not_repeat_evaluated_configurations(self):
        space = SearchSpace(
            [IntegerParameter("a", 0, 3), CategoricalParameter.boolean("b")]
        )
        opt = BayesianOptimizer(space, n_initial_points=2, num_candidates=64, seed=0)
        seen = []
        for _ in range(3):
            batch = opt.ask(2)
            opt.tell(batch, [float(i) for i in range(len(batch))])
            seen.extend(opt._key(c) for c in batch)
        # All 8 possible configs may eventually be exhausted, but within the
        # first three rounds we should not see duplicates.
        assert len(seen) == len(set(seen))

    def test_random_sampling_mode_never_fits(self):
        space = quadratic_space()
        opt = BayesianOptimizer(space, random_sampling=True, n_initial_points=2, seed=0)
        configs = space.sample(10, np.random.default_rng(0))
        opt.tell(configs, [quadratic_objective(c) for c in configs])
        assert opt.num_fits == 0
        assert len(opt.ask(3)) == 3

    def test_refit_interval_limits_fit_count(self):
        space = quadratic_space()
        opt = BayesianOptimizer(space, n_initial_points=2, refit_interval=8, seed=0)
        rng = np.random.default_rng(0)
        for _ in range(6):
            configs = space.sample(2, rng)
            opt.tell(configs, [quadratic_objective(c) for c in configs])
        # 12 points, first fit when >= n_initial, then only every 8 new points.
        assert 1 <= opt.num_fits <= 2

    def test_prior_biases_candidate_generation(self):
        space = quadratic_space()
        biased = IndependentPrior(
            space,
            priors={"flag": CategoricalPrior(space["flag"], probabilities=[0.0, 1.0])},
        )
        opt = BayesianOptimizer(space, prior=biased, seed=0)
        batch = opt.ask(20)
        assert all(c["flag"] is True or c["flag"] == True for c in batch)  # noqa: E712

    def test_best_tracks_maximum_objective(self):
        space = quadratic_space()
        opt = BayesianOptimizer(space, seed=0)
        assert opt.best() is None
        configs = space.sample(5, np.random.default_rng(0))
        objectives = [1.0, 5.0, 3.0, float("nan"), 2.0]
        opt.tell(configs, objectives)
        assert opt.best() == configs[1]

    def test_invalid_constructor_arguments(self):
        space = quadratic_space()
        with pytest.raises(ValueError):
            BayesianOptimizer(space, num_candidates=0)
        with pytest.raises(ValueError):
            BayesianOptimizer(space, n_initial_points=0)
        with pytest.raises(ValueError):
            BayesianOptimizer(space, refit_interval=0)
        with pytest.raises(ValueError):
            BayesianOptimizer(space, encoding="binary")

    def test_gp_surrogate_uses_one_hot_encoding_automatically(self):
        space = quadratic_space()
        opt = BayesianOptimizer(space, surrogate="GP", seed=0)
        assert opt.encoding == "one_hot"
        opt_rf = BayesianOptimizer(space, surrogate="RF", seed=0)
        assert opt_rf.encoding == "numeric"

    def test_categorical_column_indices(self):
        space = quadratic_space()
        opt = BayesianOptimizer(space, seed=0)
        assert opt.categorical_column_indices() == [2]
