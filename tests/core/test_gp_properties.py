"""Property suite for the GP incremental path, solo and fleet.

Random interleavings of ``fit``/``partial_fit`` — including sequences that
hit the ``refresh_growth`` threshold exactly and its off-by-one neighbours —
must keep the posterior within ``1e-8`` of a frozen full refit
(:meth:`~repro.core.surrogate.gaussian_process.GaussianProcessSurrogate.refit_with_current_hyperparameters`
on the accumulated data), and the fleet path must track the solo path bit for
bit under the same interleavings.
"""

import copy
import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.surrogate import GaussianProcessSurrogate, GPFleet

D = 4


def make_data(seed, n, d=D):
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    y = np.sin(X @ rng.random(d) * 3.0) + 0.1 * rng.random(n)
    return X, y


def assert_posterior_close_to_frozen_refit(gp, X_all, y_all, Xq, atol=1e-8):
    """The incremental state matches a from-scratch factorisation of the
    same kernel (same hyperparameters) to well below the advertised bound."""
    reference = copy.deepcopy(gp).refit_with_current_hyperparameters(X_all, y_all)
    mean, std = gp.predict(Xq)
    mean_ref, std_ref = reference.predict(Xq)
    np.testing.assert_allclose(mean, mean_ref, atol=atol, rtol=0)
    np.testing.assert_allclose(std, std_ref, atol=atol, rtol=0)


interleavings = st.lists(st.integers(1, 4), min_size=1, max_size=8)


class TestSoloIncrementalProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n0=st.integers(8, 20),
        batches=interleavings,
        growth=st.sampled_from([1.25, 1.5, 2.0]),
    )
    def test_interleaved_partial_fits_track_full_refit(self, seed, n0, batches, growth):
        gp = GaussianProcessSurrogate(refresh_growth=growth)
        X0, y0 = make_data(seed, n0)
        gp.fit(X0, y0)
        X_all, y_all = X0, y0
        Xq = np.random.default_rng(seed + 1).random((9, D))
        for i, m in enumerate(batches):
            X_new, y_new = make_data(seed + 100 + i, m)
            gp.partial_fit(X_new, y_new)
            X_all = np.vstack([X_all, X_new])
            y_all = np.concatenate([y_all, y_new])
            assert gp._n == X_all.shape[0]
            assert_posterior_close_to_frozen_refit(gp, X_all, y_all, Xq)

    @settings(max_examples=30, deadline=None)
    @given(n0=st.integers(8, 40), growth=st.sampled_from([1.25, 1.5, 2.0]))
    def test_refresh_plan_boundary_is_exact(self, n0, growth):
        """``partial_fit_plan`` flips exactly at total >= growth · n_last_full."""
        gp = GaussianProcessSurrogate(refresh_growth=growth)
        gp.fit(*make_data(n0, n0))
        boundary = growth * n0
        for total in range(n0 + 1, int(math.ceil(boundary)) + 3):
            expected = "full" if total >= boundary else "extend"
            assert gp.partial_fit_plan(total) == expected, (total, boundary)

    def test_exact_boundary_triggers_full_refit(self):
        """total == refresh_growth · n_last_full exactly refreshes (>=, not >)."""
        gp = GaussianProcessSurrogate(refresh_growth=1.5)
        gp.fit(*make_data(0, 8))  # boundary at exactly 12.0
        gp.partial_fit(*make_data(1, 3))  # total 11 < 12 → extend
        assert (gp.num_full_fits, gp.num_partial_fits) == (1, 1)
        gp.partial_fit(*make_data(2, 1))  # total 12 == 12.0 → full refresh
        assert (gp.num_full_fits, gp.num_partial_fits) == (2, 1)
        assert gp._n_last_full == 12

    def test_one_below_boundary_extends(self):
        gp = GaussianProcessSurrogate(refresh_growth=1.5)
        gp.fit(*make_data(3, 8))
        gp.partial_fit(*make_data(4, 3))  # total 11 = boundary - 1 → extend
        assert (gp.num_full_fits, gp.num_partial_fits) == (1, 1)
        Xq = np.random.default_rng(5).random((9, D))
        X_all = np.vstack([make_data(3, 8)[0], make_data(4, 3)[0]])
        y_all = np.concatenate([make_data(3, 8)[1], make_data(4, 3)[1]])
        assert_posterior_close_to_frozen_refit(gp, X_all, y_all, Xq)


class TestFleetIncrementalProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n0=st.integers(8, 16),
        batches=interleavings,
        growth=st.sampled_from([1.25, 1.5]),
    )
    def test_fleet_interleavings_match_solo_bitwise_and_full_refit(
        self, seed, n0, batches, growth
    ):
        """Drive a ragged 3-member fleet through the same interleaving the
        solo twins see, splitting extend/full groups the way the runner's
        ``gp_fleet_key`` grouping would, and require bitwise equality plus
        the ≤1e-8 frozen-refit bound for every member after every round."""
        count = 3
        starts = [n0 + k for k in range(count)]  # ragged from the start
        solo = [GaussianProcessSurrogate(refresh_growth=growth) for _ in range(count)]
        fleet = [GaussianProcessSurrogate(refresh_growth=growth) for _ in range(count)]
        data = [make_data(seed + k, n) for k, n in enumerate(starts)]
        for a, b, (X, y) in zip(solo, fleet, data):
            a.fit(X, y)
            b.fit(X, y)
        X_all = [X for X, _ in data]
        y_all = [y for _, y in data]
        Xq = np.random.default_rng(seed + 7).random((9, D))

        for i, m in enumerate(batches):
            updates = [make_data(seed + 500 + 10 * i + k, m) for k in range(count)]
            for gp, (X_new, y_new) in zip(solo, updates):
                gp.partial_fit(X_new, y_new)
            # The runner's grouping: members still extending fuse into one
            # GPFleet pass, members due a refresh take their solo path.
            extending = [
                k
                for k in range(count)
                if fleet[k].partial_fit_plan(fleet[k]._n + m) == "extend"
            ]
            if len(extending) >= 2:
                GPFleet([fleet[k] for k in extending]).partial_fit(
                    [updates[k][0] for k in extending],
                    [updates[k][1] for k in extending],
                )
            else:
                for k in extending:
                    fleet[k].partial_fit(*updates[k])
            for k in range(count):
                if k not in extending:
                    fleet[k].partial_fit(*updates[k])
            for k in range(count):
                X_all[k] = np.vstack([X_all[k], updates[k][0]])
                y_all[k] = np.concatenate([y_all[k], updates[k][1]])

            for k in range(count):
                mean_a, std_a = solo[k].predict(Xq)
                mean_b, std_b = fleet[k].predict(Xq)
                assert np.array_equal(mean_a, mean_b), f"member {k}, round {i}"
                assert np.array_equal(std_a, std_b), f"member {k}, round {i}"
                assert_posterior_close_to_frozen_refit(
                    fleet[k], X_all[k], y_all[k], Xq
                )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(8, 24))
    def test_fleet_full_fit_matches_solo(self, seed, n):
        count = 3
        solo = [GaussianProcessSurrogate() for _ in range(count)]
        fleet = [GaussianProcessSurrogate() for _ in range(count)]
        data = [make_data(seed + k, n) for k in range(count)]
        for gp, (X, y) in zip(solo, data):
            gp.fit(X, y)
        GPFleet(fleet).fit([X for X, _ in data], [y for _, y in data])
        Xq = np.random.default_rng(seed + 3).random((9, D))
        for a, b in zip(solo, fleet):
            mean_a, std_a = a.predict(Xq)
            mean_b, std_b = b.predict(Xq)
            assert np.array_equal(mean_a, mean_b)
            assert np.array_equal(std_a, std_b)
