"""Sharded candidate scoring must be invisible in the proposals.

``BayesianOptimizer(score_shards=k)`` splits the candidate matrix into ``k``
row-contiguous shards, scores them separately (optionally on an executor)
and concatenates.  RF and GP predictions are row-local, so any shard count
must produce **bit-identical** proposal trajectories — mirroring the
``incremental=False`` regression style of ``test_optimizer_incremental``.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from fixtures import make_wide_space as make_space, wide_objective as fake_objective
from repro.core.optimizer import BayesianOptimizer, CandidateScoringError


def run_ask_tell(score_shards, surrogate, seed, rounds=7, batch=4, executor=None):
    opt = BayesianOptimizer(
        make_space(),
        surrogate=surrogate,
        num_candidates=96,
        n_initial_points=5,
        score_shards=score_shards,
        score_executor=executor,
        seed=seed,
    )
    trajectory = []
    for _ in range(rounds):
        proposals = opt.ask(batch)
        trajectory.append(proposals)
        opt.tell(proposals, [fake_objective(c) for c in proposals])
    return trajectory


class TestShardedAskIdentity:
    @pytest.mark.parametrize("surrogate", ["RF", "GP"])
    @given(shards=st.integers(min_value=2, max_value=9), seed=st.integers(0, 2**16))
    @settings(max_examples=12, deadline=None)
    def test_any_shard_count_is_bit_identical(self, surrogate, shards, seed):
        reference = run_ask_tell(1, surrogate, seed)
        sharded = run_ask_tell(shards, surrogate, seed)
        assert sharded == reference  # values, types and order

    @pytest.mark.parametrize("surrogate", ["RF", "GP"])
    def test_executor_mapped_shards_are_bit_identical(self, surrogate):
        reference = run_ask_tell(1, surrogate, seed=5)
        with ThreadPoolExecutor(max_workers=2) as executor:
            sharded = run_ask_tell(4, surrogate, seed=5, executor=executor)
        assert sharded == reference

    def test_more_shards_than_candidates_is_safe(self):
        # score_shards above the pool size degrades to one row per shard.
        reference = run_ask_tell(1, "RF", seed=9)
        sharded = run_ask_tell(500, "RF", seed=9)
        assert sharded == reference

    def test_predict_candidates_concatenation_matches_single_call(self):
        space = make_space()
        opt = BayesianOptimizer(space, n_initial_points=5, seed=0)
        rng = np.random.default_rng(0)
        configs = space.sample(40, rng)
        opt.tell(configs, [fake_objective(c) for c in configs])
        encoded = space.to_numeric_array(space.sample_columns(128, rng))
        mean_ref, std_ref = opt.surrogate.predict(encoded)
        for shards in (2, 3, 7):
            opt.score_shards = shards
            mean, std = opt._predict_candidates(encoded)
            assert np.array_equal(mean, mean_ref)
            assert np.array_equal(std, std_ref)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            BayesianOptimizer(make_space(), score_shards=0)


class TestScoringErrorContext:
    """Regression: a shard ``predict`` crash used to lose its shard.

    A bare exception escaping ``score_executor.map`` said nothing about
    which shard (or shape, or surrogate) died; ``_predict_shard`` now wraps
    it in :class:`CandidateScoringError` carrying that context, and the
    wrapper propagates unchanged through the executor so the runner's
    quarantine records it against the owning campaign.
    """

    @staticmethod
    def prepared_optimizer(**kwargs):
        space = make_space()
        opt = BayesianOptimizer(space, n_initial_points=5, seed=0, **kwargs)
        rng = np.random.default_rng(0)
        configs = space.sample(40, rng)
        opt.tell(configs, [fake_objective(c) for c in configs])
        return opt, space.to_numeric_array(space.sample_columns(64, rng))

    def test_shard_failure_carries_context(self, monkeypatch):
        opt, encoded = self.prepared_optimizer(score_shards=4)

        def explode(X):
            raise FloatingPointError("singular factor")

        monkeypatch.setattr(opt.surrogate, "predict", explode)
        with pytest.raises(CandidateScoringError) as caught:
            opt._predict_candidates(encoded)
        error = caught.value
        assert error.shard_index == 0
        assert error.num_shards == 4
        assert error.rows == 16
        assert error.surrogate == type(opt.surrogate).__name__
        assert isinstance(error.__cause__, FloatingPointError)
        assert "shard 1/4" in str(error)
        assert "16 rows" in str(error)

    def test_wrapper_survives_the_executor_unchanged(self, monkeypatch):
        with ThreadPoolExecutor(max_workers=2) as executor:
            opt, encoded = self.prepared_optimizer(
                score_shards=4, score_executor=executor
            )
            real = opt.surrogate.predict
            calls = {"n": 0}

            def explode_on_third(X):
                calls["n"] += 1
                if calls["n"] == 3:
                    raise FloatingPointError("singular factor")
                return real(X)

            monkeypatch.setattr(opt.surrogate, "predict", explode_on_third)
            with pytest.raises(CandidateScoringError) as caught:
                opt._predict_candidates(encoded)
        assert caught.value.shard_index == 2
        assert caught.value.num_shards == 4

    def test_nested_wrapping_is_not_double_applied(self, monkeypatch):
        opt, encoded = self.prepared_optimizer(score_shards=2)
        inner = CandidateScoringError(
            shard_index=7, num_shards=9, rows=3, surrogate="X", cause=ValueError("v")
        )

        def reraise(X):
            raise inner

        monkeypatch.setattr(opt.surrogate, "predict", reraise)
        with pytest.raises(CandidateScoringError) as caught:
            opt._predict_candidates(encoded)
        assert caught.value is inner  # re-raised, not re-wrapped
