"""Sharded candidate scoring must be invisible in the proposals.

``BayesianOptimizer(score_shards=k)`` splits the candidate matrix into ``k``
row-contiguous shards, scores them separately (optionally on an executor)
and concatenates.  RF and GP predictions are row-local, so any shard count
must produce **bit-identical** proposal trajectories — mirroring the
``incremental=False`` regression style of ``test_optimizer_incremental``.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from fixtures import make_wide_space as make_space, wide_objective as fake_objective
from repro.core.optimizer import BayesianOptimizer


def run_ask_tell(score_shards, surrogate, seed, rounds=7, batch=4, executor=None):
    opt = BayesianOptimizer(
        make_space(),
        surrogate=surrogate,
        num_candidates=96,
        n_initial_points=5,
        score_shards=score_shards,
        score_executor=executor,
        seed=seed,
    )
    trajectory = []
    for _ in range(rounds):
        proposals = opt.ask(batch)
        trajectory.append(proposals)
        opt.tell(proposals, [fake_objective(c) for c in proposals])
    return trajectory


class TestShardedAskIdentity:
    @pytest.mark.parametrize("surrogate", ["RF", "GP"])
    @given(shards=st.integers(min_value=2, max_value=9), seed=st.integers(0, 2**16))
    @settings(max_examples=12, deadline=None)
    def test_any_shard_count_is_bit_identical(self, surrogate, shards, seed):
        reference = run_ask_tell(1, surrogate, seed)
        sharded = run_ask_tell(shards, surrogate, seed)
        assert sharded == reference  # values, types and order

    @pytest.mark.parametrize("surrogate", ["RF", "GP"])
    def test_executor_mapped_shards_are_bit_identical(self, surrogate):
        reference = run_ask_tell(1, surrogate, seed=5)
        with ThreadPoolExecutor(max_workers=2) as executor:
            sharded = run_ask_tell(4, surrogate, seed=5, executor=executor)
        assert sharded == reference

    def test_more_shards_than_candidates_is_safe(self):
        # score_shards above the pool size degrades to one row per shard.
        reference = run_ask_tell(1, "RF", seed=9)
        sharded = run_ask_tell(500, "RF", seed=9)
        assert sharded == reference

    def test_predict_candidates_concatenation_matches_single_call(self):
        space = make_space()
        opt = BayesianOptimizer(space, n_initial_points=5, seed=0)
        rng = np.random.default_rng(0)
        configs = space.sample(40, rng)
        opt.tell(configs, [fake_objective(c) for c in configs])
        encoded = space.to_numeric_array(space.sample_columns(128, rng))
        mean_ref, std_ref = opt.surrogate.predict(encoded)
        for shards in (2, 3, 7):
            opt.score_shards = shards
            mean, std = opt._predict_candidates(encoded)
            assert np.array_equal(mean, mean_ref)
            assert np.array_equal(std, std_ref)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            BayesianOptimizer(make_space(), score_shards=0)
