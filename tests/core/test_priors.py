"""Tests for per-parameter and joint priors."""

import numpy as np
import pytest

from repro.core.priors import (
    CategoricalPrior,
    IndependentPrior,
    LogUniformPrior,
    MixturePrior,
    UniformPrior,
    default_prior,
)
from repro.core.space import (
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
    RealParameter,
    SearchSpace,
)


class TestParameterPriors:
    def test_uniform_prior_covers_integer_range(self):
        prior = UniformPrior(IntegerParameter("x", 0, 9))
        rng = np.random.default_rng(0)
        values = prior.sample(5000, rng)
        assert set(values) == set(range(10))

    def test_uniform_prior_real_bounds(self):
        prior = UniformPrior(RealParameter("x", -1.0, 1.0))
        values = prior.sample(1000, np.random.default_rng(0))
        assert min(values) >= -1.0 and max(values) <= 1.0

    def test_log_uniform_prior_biases_toward_small_values(self):
        prior = LogUniformPrior(IntegerParameter("x", 1, 1024, log=True))
        values = np.asarray(prior.sample(4000, np.random.default_rng(0)))
        assert np.mean(values <= 32) > 0.4

    def test_log_uniform_requires_numeric_positive_parameter(self):
        with pytest.raises(TypeError):
            LogUniformPrior(CategoricalParameter("c", ("a", "b")))
        with pytest.raises(ValueError):
            LogUniformPrior(IntegerParameter("x", 0, 10))

    def test_categorical_prior_uniform_by_default(self):
        prior = CategoricalPrior(CategoricalParameter("c", ("a", "b", "c")))
        values = prior.sample(3000, np.random.default_rng(0))
        counts = {v: values.count(v) for v in ("a", "b", "c")}
        assert all(800 < c < 1200 for c in counts.values())

    def test_categorical_prior_respects_probabilities(self):
        prior = CategoricalPrior(
            CategoricalParameter("c", ("a", "b")), probabilities=[0.9, 0.1]
        )
        values = prior.sample(2000, np.random.default_rng(0))
        assert values.count("a") > 1600

    def test_categorical_prior_validates_probabilities(self):
        param = CategoricalParameter("c", ("a", "b"))
        with pytest.raises(ValueError):
            CategoricalPrior(param, probabilities=[1.0])
        with pytest.raises(ValueError):
            CategoricalPrior(param, probabilities=[-1.0, 2.0])
        with pytest.raises(ValueError):
            CategoricalPrior(param, probabilities=[0.0, 0.0])

    def test_categorical_prior_on_ordinal(self):
        prior = CategoricalPrior(OrdinalParameter("o", (1, 2, 4)))
        assert set(prior.sample(100, np.random.default_rng(0))) <= {1, 2, 4}

    def test_default_prior_dispatch(self):
        assert isinstance(default_prior(IntegerParameter("a", 1, 10, log=True)), LogUniformPrior)
        assert isinstance(default_prior(IntegerParameter("b", 1, 10)), UniformPrior)
        assert isinstance(default_prior(CategoricalParameter("c", ("x", "y"))), CategoricalPrior)
        assert isinstance(default_prior(OrdinalParameter("d", (1, 2))), CategoricalPrior)


class TestJointPriors:
    def space(self):
        return SearchSpace(
            [
                IntegerParameter("batch", 1, 64, log=True),
                CategoricalParameter.boolean("flag"),
                RealParameter("ratio", 0.0, 1.0),
            ]
        )

    def test_independent_prior_produces_valid_configs(self):
        space = self.space()
        prior = IndependentPrior(space)
        for config in prior.sample_configurations(100, np.random.default_rng(0)):
            space.validate(config)

    def test_independent_prior_rejects_unknown_overrides(self):
        space = self.space()
        with pytest.raises(ValueError):
            IndependentPrior(space, priors={"nope": UniformPrior(IntegerParameter("nope", 0, 1))})

    def test_independent_prior_override_used(self):
        space = self.space()
        prior = IndependentPrior(
            space,
            priors={"flag": CategoricalPrior(space["flag"], probabilities=[1.0, 0.0])},
        )
        values = [c["flag"] for c in prior.sample_configurations(200, np.random.default_rng(0))]
        assert set(values) == {False}

    def test_empty_sample(self):
        prior = IndependentPrior(self.space())
        assert prior.sample_configurations(0, np.random.default_rng(0)) == []

    def test_mixture_prior_combines_components(self):
        space = self.space()
        always_true = IndependentPrior(
            space, priors={"flag": CategoricalPrior(space["flag"], probabilities=[0.0, 1.0])}
        )
        always_false = IndependentPrior(
            space, priors={"flag": CategoricalPrior(space["flag"], probabilities=[1.0, 0.0])}
        )
        mixture = MixturePrior([always_true, always_false], weights=[0.8, 0.2])
        values = [
            c["flag"] for c in mixture.sample_configurations(1000, np.random.default_rng(0))
        ]
        frac_true = sum(values) / len(values)
        assert 0.7 < frac_true < 0.9

    def test_mixture_prior_validation(self):
        space = self.space()
        prior = IndependentPrior(space)
        with pytest.raises(ValueError):
            MixturePrior([], [])
        with pytest.raises(ValueError):
            MixturePrior([prior], [0.0])
        with pytest.raises(ValueError):
            MixturePrior([prior, prior], [0.5])
