"""Regression tests for the incremental encoded-history cache.

The optimizer can run with ``incremental=True`` (encoded rows appended into
growing buffers, the default) or ``incremental=False`` (full history
re-encoded per interaction — the pre-cache behaviour).  Because the column
codecs are elementwise, both paths must produce *bit-identical* surrogate
inputs and therefore bit-identical ask/tell results; these tests pin that
down for the optimizer, for :class:`CBOSearch` and for :class:`VAEABOSearch`.
"""

import math

import numpy as np
import pytest

from fixtures import make_wide_space as make_space, wide_objective as fake_objective
from repro.core.history import SearchHistory
from repro.core.optimizer import BayesianOptimizer
from repro.core.search import CBOSearch, VAEABOSearch
from repro.core.space import CategoricalParameter, IntegerParameter, SearchSpace


def run_ask_tell(incremental, surrogate, rounds=8, batch=4, seed=123):
    space = make_space()
    opt = BayesianOptimizer(
        space,
        surrogate=surrogate,
        num_candidates=128,
        n_initial_points=6,
        incremental=incremental,
        seed=seed,
    )
    trajectory = []
    for _ in range(rounds):
        proposals = opt.ask(batch)
        trajectory.append(proposals)
        opt.tell(proposals, [fake_objective(c) for c in proposals])
    return opt, trajectory


class TestIncrementalCacheIdentity:
    @pytest.mark.parametrize("surrogate", ["RF", "GP"])
    def test_ask_tell_bit_identical_with_and_without_cache(self, surrogate):
        opt_inc, traj_inc = run_ask_tell(True, surrogate)
        opt_ref, traj_ref = run_ask_tell(False, surrogate)
        # Proposal sequences must match exactly — values, types and order.
        assert traj_inc == traj_ref
        # So must the final training data handed to the surrogate.
        X_inc, y_inc = opt_inc._train_data()
        X_ref, y_ref = opt_ref._train_data()
        assert np.array_equal(X_inc, X_ref)
        assert np.array_equal(y_inc, y_ref)

    def test_cached_rows_match_full_reencode(self):
        """Appending encoded batches equals re-encoding the whole history."""
        opt, _ = run_ask_tell(True, "RF", rounds=5)
        X_cached, y_cached = opt._train_data()
        X_full = opt._encode(opt._configs)
        assert np.array_equal(X_cached, X_full)
        assert np.array_equal(y_cached, np.asarray(opt._objectives))

    def test_buffer_growth_preserves_rows(self):
        space = make_space()
        opt = BayesianOptimizer(space, n_initial_points=2, seed=0)
        rng = np.random.default_rng(0)
        for _ in range(6):  # repeated growth past the initial capacity
            configs = space.sample(40, rng)
            opt.tell(configs, [fake_objective(c) for c in configs])
        X, y = opt._train_data()
        assert X.shape == (240, len(space))
        assert np.array_equal(X, opt._encode(opt._configs))

    def test_duplicate_detection_survives_materialisation(self):
        """A proposal told back to the optimizer is never proposed again."""
        space = SearchSpace(
            [IntegerParameter("a", 0, 40), CategoricalParameter.boolean("b")]
        )
        opt = BayesianOptimizer(space, n_initial_points=4, num_candidates=64, seed=3)
        seen = set()
        for _ in range(6):
            batch = opt.ask(3)
            keys = [row.tobytes() for row in space.key_array(batch)]
            assert not (set(keys) & seen)
            seen.update(keys)
            opt.tell(batch, [float(c["a"]) for c in batch])


class TestSearchIdentity:
    def _run_cbo(self, incremental, surrogate="RF"):
        space = make_space()

        def run_function(config):
            return math.exp(-fake_objective(config) / 4.0)

        search = CBOSearch(
            space,
            run_function,
            num_workers=6,
            surrogate=surrogate,
            n_initial_points=6,
            num_candidates=96,
            incremental=incremental,
            seed=11,
        )
        return search.run(max_time=300.0, max_evaluations=60)

    def test_cbo_search_identical_with_and_without_cache(self):
        res_inc = self._run_cbo(True)
        res_ref = self._run_cbo(False)
        assert len(res_inc.history) == len(res_ref.history)
        for ev_a, ev_b in zip(res_inc.history, res_ref.history):
            assert ev_a.configuration == ev_b.configuration
            assert ev_a.submitted == ev_b.submitted
            assert ev_a.completed == ev_b.completed
            assert (ev_a.objective == ev_b.objective) or (
                math.isnan(ev_a.objective) and math.isnan(ev_b.objective)
            )
        assert res_inc.best_configuration == res_ref.best_configuration
        assert res_inc.worker_utilization == res_ref.worker_utilization

    def test_vaeabo_search_identical_with_and_without_cache(self):
        space = make_space()
        rng = np.random.default_rng(5)
        source = SearchHistory(space)
        t = 0.0
        for config in space.sample(40, rng):
            runtime = math.exp(-fake_objective(config) / 4.0)
            source.record(config, runtime=runtime, submitted=t, completed=t + 60.0)
            t += 10.0

        def run_function(config):
            return math.exp(-fake_objective(config) / 4.0)

        def run(incremental):
            search = VAEABOSearch(
                space,
                run_function,
                source_history=source,
                vae_epochs=15,
                num_workers=4,
                n_initial_points=5,
                num_candidates=64,
                incremental=incremental,
                seed=21,
            )
            return search.run(max_time=240.0, max_evaluations=40)

        res_inc, res_ref = run(True), run(False)
        assert [ev.configuration for ev in res_inc.history] == [
            ev.configuration for ev in res_ref.history
        ]
        assert res_inc.best_runtime == res_ref.best_runtime


class TestSampleUniqueExhaustion:
    def test_exhausted_space_short_circuits_to_duplicates(self):
        """Once every configuration was evaluated, ask() returns duplicates fast."""
        space = SearchSpace(
            [IntegerParameter("a", 0, 1), CategoricalParameter.boolean("b")]
        )
        assert space.cardinality == 4
        opt = BayesianOptimizer(space, n_initial_points=2, num_candidates=16, seed=0)
        everything = [
            {"a": a, "b": b} for a in (0, 1) for b in (False, True)
        ]
        opt.tell(everything, [1.0, 2.0, 3.0, 4.0])
        assert len(opt._evaluated_keys) == 4
        proposals = opt.ask(6)
        assert len(proposals) == 6
        for config in proposals:
            space.validate(config)

    def test_nearly_exhausted_space_returns_remaining_fresh_first(self):
        space = SearchSpace(
            [IntegerParameter("a", 0, 1), CategoricalParameter.boolean("b")]
        )
        opt = BayesianOptimizer(space, n_initial_points=8, num_candidates=16, seed=0)
        told = [{"a": 0, "b": False}, {"a": 0, "b": True}, {"a": 1, "b": False}]
        opt.tell(told, [1.0, 2.0, 3.0])
        proposals = opt.ask(2)
        keys = {(c["a"], c["b"]) for c in proposals}
        assert (1, True) in keys  # the one remaining fresh configuration
