"""Tests for the VAE-guided transfer-learning prior (Algorithm 1, l. 1-10)."""

import numpy as np
import pytest

from repro.core.history import SearchHistory
from repro.core.priors import IndependentPrior
from repro.core.space import (
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
    SearchSpace,
)
from repro.core.transfer import TransferLearningPrior, fit_transfer_prior


def source_space():
    return SearchSpace(
        [
            IntegerParameter("batch", 1, 1024, log=True),
            OrdinalParameter("pes", (1, 2, 4, 8, 16)),
            CategoricalParameter.boolean("busy"),
        ],
        name="source",
    )


def target_space():
    # Same parameters plus two new ones (the 16p -> 20p scenario).
    return SearchSpace(
        [
            IntegerParameter("batch", 1, 1024, log=True),
            OrdinalParameter("pes", (1, 2, 4, 8, 16)),
            CategoricalParameter.boolean("busy"),
            CategoricalParameter("pool", ("fifo", "fifo_wait", "prio_wait")),
            IntegerParameter("threads", 1, 31),
        ],
        name="target",
    )


def make_source_history(n=200, seed=0):
    """A history whose good region is: large batch, pes=8 or 16, busy=True."""
    space = source_space()
    history = SearchHistory(space)
    rng = np.random.default_rng(seed)
    for i, config in enumerate(space.sample(n, rng)):
        runtime = 100.0
        runtime -= 40.0 * (np.log(config["batch"]) / np.log(1024))
        runtime -= 25.0 if config["pes"] >= 8 else 0.0
        runtime -= 15.0 if config["busy"] else 0.0
        runtime += rng.normal(scale=2.0)
        history.record(config, max(runtime, 5.0), float(i), float(i + 1))
    return history


class TestFitTransferPrior:
    def test_prior_samples_valid_target_configurations(self):
        prior = fit_transfer_prior(
            make_source_history(), target_space(), epochs=60, seed=0
        )
        rng = np.random.default_rng(1)
        space = target_space()
        for config in prior.sample_configurations(50, rng):
            space.validate(config)

    def test_prior_is_biased_toward_the_good_region(self):
        history = make_source_history()
        prior = fit_transfer_prior(history, target_space(), epochs=150, seed=0)
        rng = np.random.default_rng(1)
        samples = prior.sample_configurations(400, rng)
        uniform = IndependentPrior(target_space()).sample_configurations(400, rng)

        def goodness(configs):
            return np.mean(
                [
                    (np.log(c["batch"]) / np.log(1024))
                    + (1.0 if c["pes"] >= 8 else 0.0)
                    + (1.0 if c["busy"] else 0.0)
                    for c in configs
                ]
            )

        assert goodness(samples) > goodness(uniform) + 0.3

    def test_new_parameters_get_uninformative_priors(self):
        prior = fit_transfer_prior(make_source_history(), target_space(), epochs=40, seed=0)
        assert set(prior.new_parameters) == {"pool", "threads"}
        rng = np.random.default_rng(2)
        samples = prior.sample_configurations(600, rng)
        pools = {c["pool"] for c in samples}
        assert pools == {"fifo", "fifo_wait", "prio_wait"}
        threads = np.array([c["threads"] for c in samples])
        # roughly uniform over [1, 31]
        assert threads.min() <= 4 and threads.max() >= 28

    def test_shared_parameters_listed(self):
        prior = fit_transfer_prior(make_source_history(), target_space(), epochs=20, seed=0)
        assert set(prior.shared_parameters) == {"batch", "pes", "busy"}

    def test_small_history_falls_back_to_resampling(self):
        history = make_source_history(n=5)
        prior = fit_transfer_prior(
            history, target_space(), epochs=20, min_configurations_for_vae=8, seed=0
        )
        assert prior.vae is None
        rng = np.random.default_rng(0)
        samples = prior.sample_configurations(20, rng)
        assert len(samples) == 20
        space = target_space()
        for config in samples:
            space.validate(config)

    def test_disjoint_spaces_rejected(self):
        other = SearchSpace([IntegerParameter("unrelated", 0, 5)])
        with pytest.raises(ValueError):
            fit_transfer_prior(make_source_history(), other, epochs=10)

    def test_quantile_controls_selection_size(self):
        history = make_source_history(n=100)
        strict = fit_transfer_prior(history, target_space(), quantile=0.05, epochs=10, seed=0)
        loose = fit_transfer_prior(history, target_space(), quantile=0.5, epochs=10, seed=0)
        assert len(strict.top_configurations) < len(loose.top_configurations)

    def test_uniform_fraction_bounds(self):
        history = make_source_history(50)
        with pytest.raises(ValueError):
            TransferLearningPrior(
                target_space(), None, prior_transform_of(history), [], uniform_fraction=1.5
            )

    def test_transfer_works_when_spaces_are_identical(self):
        history = make_source_history()
        prior = fit_transfer_prior(history, source_space(), epochs=40, seed=0)
        assert prior.new_parameters == []
        rng = np.random.default_rng(0)
        for config in prior.sample_configurations(20, rng):
            source_space().validate(config)

    def test_source_values_clipped_to_changed_target_bounds(self):
        # The target narrows the batch range; transferred samples must respect it.
        history = make_source_history()
        narrow = SearchSpace(
            [
                IntegerParameter("batch", 1, 128, log=True),
                OrdinalParameter("pes", (1, 2, 4, 8, 16)),
                CategoricalParameter.boolean("busy"),
            ]
        )
        prior = fit_transfer_prior(history, narrow, epochs=30, seed=0)
        rng = np.random.default_rng(0)
        for config in prior.sample_configurations(100, rng):
            assert 1 <= config["batch"] <= 128


def prior_transform_of(history):
    from repro.core.vae.transforms import TabularTransform

    return TabularTransform(history.space)
