"""Tests for the acquisition functions and the constant-liar batch selection."""

import numpy as np
import pytest

from repro.core.acquisition import (
    UCBAcquisition,
    expected_improvement,
    lower_confidence_bound,
    upper_confidence_bound,
)
from repro.core.liar import ConstantLiar
from repro.core.surrogate import RandomForestSurrogate


class TestAcquisitionFunctions:
    def test_lcb_and_ucb_are_symmetric(self):
        mean = np.array([1.0, 2.0, 3.0])
        std = np.array([0.5, 0.5, 0.5])
        lcb = lower_confidence_bound(mean, std, kappa=2.0)
        ucb = upper_confidence_bound(mean, std, kappa=2.0)
        assert np.allclose(ucb - mean, mean - lcb)

    def test_kappa_zero_is_greedy(self):
        mean = np.array([1.0, 5.0, 3.0])
        std = np.array([10.0, 0.1, 10.0])
        acq = UCBAcquisition(kappa=0.0)
        assert np.argmax(acq(mean, std)) == 1

    def test_large_kappa_prefers_uncertainty(self):
        mean = np.array([1.0, 5.0, 3.0])
        std = np.array([10.0, 0.1, 1.0])
        acq = UCBAcquisition(kappa=100.0)
        assert np.argmax(acq(mean, std)) == 0

    def test_rank_orders_descending_scores(self):
        acq = UCBAcquisition(kappa=1.0)
        mean = np.array([0.0, 2.0, 1.0])
        std = np.zeros(3)
        assert list(acq.rank(mean, std)) == [1, 2, 0]

    def test_negative_kappa_rejected(self):
        with pytest.raises(ValueError):
            upper_confidence_bound(np.zeros(2), np.ones(2), kappa=-1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            upper_confidence_bound(np.zeros(2), np.ones(3))

    def test_expected_improvement_zero_without_upside(self):
        mean = np.array([0.0])
        std = np.array([1e-9])
        ei = expected_improvement(mean, std, best=10.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-6)

    def test_expected_improvement_prefers_high_mean(self):
        mean = np.array([0.0, 5.0])
        std = np.array([1.0, 1.0])
        ei = expected_improvement(mean, std, best=1.0)
        assert ei[1] > ei[0]


class TestConstantLiar:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.train_X = rng.uniform(size=(60, 3))
        self.train_y = self.train_X[:, 0] * 2 + rng.normal(scale=0.05, size=60)
        self.surrogate = RandomForestSurrogate(n_estimators=8, seed=0)
        self.surrogate.fit(self.train_X, self.train_y)
        self.candidates = rng.uniform(size=(100, 3))
        self.acq = UCBAcquisition(kappa=1.96)

    def _select(self, strategy, n):
        liar = ConstantLiar(strategy=strategy)
        return liar.select(
            n,
            surrogate=self.surrogate,
            acquisition=self.acq,
            candidates_encoded=self.candidates,
            candidates_unit=self.candidates,
            train_X=self.train_X,
            train_y=self.train_y,
        )

    @pytest.mark.parametrize("strategy", ["kernel_penalty", "refit"])
    def test_selects_requested_number_of_unique_candidates(self, strategy):
        picks = self._select(strategy, 5)
        assert len(picks) == 5
        assert len(set(picks)) == 5

    @pytest.mark.parametrize("strategy", ["kernel_penalty", "refit"])
    def test_first_pick_maximises_the_acquisition(self, strategy):
        mean, std = self.surrogate.predict(self.candidates)
        best = int(np.argmax(self.acq(mean, std)))
        assert self._select(strategy, 3)[0] == best

    def test_batch_is_spatially_diverse(self):
        picks = self._select("kernel_penalty", 8)
        points = self.candidates[picks]
        # pairwise distances should not all be tiny
        dists = np.linalg.norm(points[:, None, :] - points[None, :, :], axis=-1)
        upper = dists[np.triu_indices(len(picks), k=1)]
        assert np.median(upper) > 0.05

    def test_zero_or_negative_n_returns_empty(self):
        assert self._select("kernel_penalty", 0) == []

    def test_n_capped_at_number_of_candidates(self):
        liar = ConstantLiar()
        picks = liar.select(
            500,
            surrogate=self.surrogate,
            acquisition=self.acq,
            candidates_encoded=self.candidates,
            candidates_unit=self.candidates,
            train_X=self.train_X,
            train_y=self.train_y,
        )
        assert len(picks) == self.candidates.shape[0]
        assert len(set(picks)) == len(picks)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            ConstantLiar(strategy="magic")
        with pytest.raises(ValueError):
            ConstantLiar(penalty_length_scale=0.0)
