"""Tests for the fleet-stacked VAE stack: DenseFleet/MLPFleet, AdamFleet, VAEFleet.

The acceptance property of the model layer: a :class:`VAEFleet` training K
members in fused lock-step epochs leaves every member — weights, training
trace, samples, RNG state — bitwise identical to K sequential
``TabularVAE.fit`` calls with the same seeds.  The full-size version of that
assertion is marked ``slow`` (CI runs it; local quick loops can skip with
``-m "not slow"``) and also runs inside ``benchmarks/bench_vae_fleet.py``.
"""

import numpy as np
import pytest

from repro.core.space import (
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
    RealParameter,
    SearchSpace,
)
from repro.core.vae.layers import MLP, Dense, DenseFleet, MLPFleet, ReLU, Tanh
from repro.core.vae.optim import Adam, AdamFleet
from repro.core.vae.transforms import TabularTransform
from repro.core.vae.tvae import TabularVAE, VAEFleet, vae_fleet_key


def mixed_space():
    return SearchSpace(
        [
            IntegerParameter("batch", 1, 1024, log=True),
            RealParameter("rate", 0.1, 50.0, log=True),
            OrdinalParameter("pes", (1, 2, 4, 8)),
            CategoricalParameter("pool", ("fifo", "fifo_wait", "prio_wait")),
            CategoricalParameter.boolean("busy"),
        ]
    )


class TestDenseFleet:
    def test_forward_matches_members_bitwise(self):
        rng = np.random.default_rng(0)
        members = [Dense(5, 3, rng=np.random.default_rng(s)) for s in range(4)]
        fleet = DenseFleet.from_members(members)
        x = rng.standard_normal((4, 9, 5))
        out = fleet.forward(x)
        for k, member in enumerate(members):
            assert np.array_equal(out[k], member.forward(x[k]))

    def test_backward_matches_members_bitwise(self):
        rng = np.random.default_rng(1)
        members = [Dense(4, 6, rng=np.random.default_rng(s)) for s in range(3)]
        fleet = DenseFleet.from_members(members)
        x = rng.standard_normal((3, 7, 4))
        grad = rng.standard_normal((3, 7, 6))
        fleet.forward(x)
        fleet.zero_grad()
        grad_x = fleet.backward(grad)
        for k, member in enumerate(members):
            member.forward(x[k])
            member.zero_grad()
            gx = member.backward(grad[k])
            assert np.array_equal(grad_x[k], gx)
            assert np.array_equal(fleet.dW[k], member.dW)
            assert np.array_equal(fleet.db[k], member.db)

    def test_gradients_match_finite_differences(self):
        rng = np.random.default_rng(2)
        fleet = DenseFleet.from_members(
            [Dense(3, 2, rng=np.random.default_rng(s)) for s in range(2)]
        )
        x = rng.standard_normal((2, 5, 3))
        target = rng.standard_normal((2, 5, 2))

        def loss():
            out = fleet.forward(x)
            return 0.5 * np.sum((out - target) ** 2)

        out = fleet.forward(x)
        fleet.zero_grad()
        fleet.backward(out - target)
        analytic = fleet.dW.copy()

        eps = 1e-6
        numeric = np.zeros_like(fleet.W)
        for k in range(fleet.W.shape[0]):
            for i in range(fleet.W.shape[1]):
                for j in range(fleet.W.shape[2]):
                    fleet.W[k, i, j] += eps
                    up = loss()
                    fleet.W[k, i, j] -= 2 * eps
                    down = loss()
                    fleet.W[k, i, j] += eps
                    numeric[k, i, j] = (up - down) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_write_back_restores_member_weights(self):
        members = [Dense(3, 3, rng=np.random.default_rng(s)) for s in range(3)]
        fleet = DenseFleet.from_members(members)
        fleet.W += 1.0
        fleet.b -= 0.5
        fleet.write_back(members)
        for k, member in enumerate(members):
            assert np.array_equal(member.W, fleet.W[k])
            assert np.array_equal(member.b, fleet.b[k])

    def test_validation(self):
        with pytest.raises(ValueError):
            DenseFleet(np.zeros((2, 3, 4)), np.zeros((3, 4)))
        with pytest.raises(ValueError):
            DenseFleet.from_members([])
        with pytest.raises(ValueError):
            DenseFleet.from_members([Dense(2, 3), Dense(3, 3)])
        with pytest.raises(RuntimeError):
            DenseFleet.from_members([Dense(2, 2)]).backward(np.ones((1, 1, 2)))


class TestMLPFleet:
    def test_forward_backward_match_members_bitwise(self):
        rng = np.random.default_rng(3)
        members = [
            MLP.build(4, [8, 8], 3, rng=np.random.default_rng(s), activation="tanh")
            for s in range(3)
        ]
        fleet = MLPFleet.from_members(members)
        x = rng.standard_normal((3, 6, 4))
        grad = rng.standard_normal((3, 6, 3))
        out = fleet.forward(x)
        fleet.zero_grad()
        grad_x = fleet.backward(grad)
        for k, member in enumerate(members):
            assert np.array_equal(out[k], member.forward(x[k]))
            member.zero_grad()
            gx = member.backward(grad[k])
            assert np.array_equal(grad_x[k], gx)
        for level, layer in enumerate(fleet.layers):
            if isinstance(layer, DenseFleet):
                for k, member in enumerate(members):
                    assert np.array_equal(layer.dW[k], member.layers[level].dW)

    def test_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(4)
        members = [MLP.build(3, [6], 2, rng=np.random.default_rng(s)) for s in range(2)]
        fleet = MLPFleet.from_members(members)
        x = rng.standard_normal((2, 4, 3))
        target = rng.standard_normal((2, 4, 2))

        def loss():
            return 0.5 * np.sum((fleet.forward(x) - target) ** 2)

        out = fleet.forward(x)
        fleet.zero_grad()
        fleet.backward(out - target)
        first = fleet.layers[0]
        analytic = first.dW.copy()

        eps = 1e-6
        numeric = np.zeros_like(first.W)
        for k in range(first.W.shape[0]):
            for i in range(min(3, first.W.shape[1])):
                for j in range(min(3, first.W.shape[2])):
                    first.W[k, i, j] += eps
                    up = loss()
                    first.W[k, i, j] -= 2 * eps
                    down = loss()
                    first.W[k, i, j] += eps
                    numeric[k, i, j] = (up - down) / (2 * eps)
        assert np.allclose(analytic[:, :3, :3], numeric[:, :3, :3], atol=1e-4)

    def test_structural_validation(self):
        with pytest.raises(ValueError):
            MLPFleet.from_members([])
        with pytest.raises(ValueError):
            MLPFleet.from_members([MLP([Dense(2, 2), ReLU()]), MLP([Dense(2, 2)])])
        with pytest.raises(ValueError):
            MLPFleet.from_members([MLP([ReLU()]), MLP([Tanh()])])


class TestAdamFleet:
    def test_bias_correction_first_step_is_full_size(self):
        """After one step the bias-corrected moments equal the raw gradient:
        the update must be ``-lr * g / (|g| + eps)`` exactly, not the
        uncorrected ``-lr * (1 - beta1) * g / (...)``."""
        w = np.zeros((2, 3))
        grad = np.zeros_like(w)
        opt = AdamFleet([(w, grad)], fleet_size=2, lr=0.05, eps=1e-8)
        g = np.array([[1.0, -2.0, 0.5], [3.0, -0.25, 4.0]])
        grad[...] = g
        opt.step()
        expected = -0.05 * g / (np.abs(g) + 1e-8)
        assert np.allclose(w, expected, rtol=0, atol=1e-15)
        assert opt.steps_taken == 1

    def test_bias_correction_matches_closed_form_over_steps(self):
        """With a constant gradient the moment estimates stay fully
        bias-corrected at every step: m_hat == g and v_hat == g² exactly."""
        w = np.zeros((1, 2))
        grad = np.zeros_like(w)
        opt = AdamFleet([(w, grad)], fleet_size=1, lr=0.1, eps=1e-12)
        g = np.array([[2.0, -3.0]])
        previous = w.copy()
        for step in range(1, 6):
            grad[...] = g
            opt.step()
            delta = w - previous
            previous = w.copy()
            # m_hat/(sqrt(v_hat)+eps) == g/|g| for constant gradients.
            assert np.allclose(delta, -0.1 * np.sign(g), rtol=0, atol=1e-11)
        assert opt.steps_taken == 5

    def test_stacked_updates_match_solo_adams_bitwise(self):
        rng = np.random.default_rng(5)
        K = 3
        stacked_w = rng.standard_normal((K, 4, 2))
        stacked_g = np.zeros_like(stacked_w)
        solo_ws = [stacked_w[k].copy() for k in range(K)]
        solo_gs = [np.zeros((4, 2)) for _ in range(K)]
        fleet = AdamFleet([(stacked_w, stacked_g)], fleet_size=K, lr=3e-3)
        solos = [Adam([(w, g)], lr=3e-3) for w, g in zip(solo_ws, solo_gs)]
        for _ in range(20):
            grads = rng.standard_normal((K, 4, 2))
            stacked_g[...] = grads
            fleet.step()
            for k, solo in enumerate(solos):
                solo_gs[k][...] = grads[k]
                solo.step()
        for k in range(K):
            assert np.array_equal(stacked_w[k], solo_ws[k])

    def test_validation(self):
        w = np.zeros((2, 2))
        with pytest.raises(ValueError):
            AdamFleet([(w, np.zeros_like(w))], fleet_size=0)
        with pytest.raises(ValueError):
            AdamFleet([(w, np.zeros_like(w))], fleet_size=3)
        with pytest.raises(ValueError):
            AdamFleet([(w, np.zeros_like(w))], fleet_size=2, lr=0.0)


def make_members(transform, count, latent_dim=3, hidden=(16, 16)):
    return [
        TabularVAE(
            input_dim=transform.dimension,
            numeric_columns=transform.numeric_columns,
            categorical_blocks=transform.categorical_blocks,
            latent_dim=latent_dim,
            hidden=hidden,
            seed=seed,
        )
        for seed in range(count)
    ]


def assert_members_bitwise_identical(a, b):
    for k, (ma, mb) in enumerate(zip(a, b)):
        for (pa, _), (pb, _) in zip(ma._all_parameters(), mb._all_parameters()):
            assert np.array_equal(pa, pb), f"member {k}: weights differ"
        assert ma.trace.loss == mb.trace.loss, f"member {k}: loss trace differs"
        assert ma.trace.reconstruction == mb.trace.reconstruction
        assert ma.trace.kl == mb.trace.kl
        # Identical post-fit RNG state: the next samples must coincide too.
        assert np.array_equal(ma.sample(16), mb.sample(16)), f"member {k}: samples differ"


class TestVAEFleet:
    def fleet_setup(self, count=3, rows=24):
        space = mixed_space()
        transform = TabularTransform(space)
        datasets = [
            transform.encode(space.sample(rows, np.random.default_rng(50 + k)))
            for k in range(count)
        ]
        return transform, datasets

    def test_fused_training_is_bitwise_identical_to_sequential(self):
        transform, datasets = self.fleet_setup()
        sequential = make_members(transform, 3)
        fused = make_members(transform, 3)
        VAEFleet(sequential).fit(datasets, epochs=8, batch_size=10, fused=False)
        VAEFleet(fused).fit(datasets, epochs=8, batch_size=10, fused=True)
        assert_members_bitwise_identical(sequential, fused)

    def test_fleet_of_one_matches_solo_fit(self):
        transform, datasets = self.fleet_setup(count=1)
        solo = make_members(transform, 1)[0]
        member = make_members(transform, 1)[0]
        solo.fit(datasets[0], epochs=6, batch_size=8)
        VAEFleet([member]).fit([datasets[0]], epochs=6, batch_size=8)
        assert_members_bitwise_identical([solo], [member])

    def test_remainder_batches_stay_identical(self):
        """Row counts that do not divide the batch size exercise the
        short-final-batch path of the preallocated buffers."""
        transform, datasets = self.fleet_setup(count=2, rows=17)
        sequential = make_members(transform, 2)
        fused = make_members(transform, 2)
        VAEFleet(sequential).fit(datasets, epochs=5, batch_size=8, fused=False)
        VAEFleet(fused).fit(datasets, epochs=5, batch_size=8, fused=True)
        assert_members_bitwise_identical(sequential, fused)

    def test_validation_rejects_bad_fleets(self):
        transform, datasets = self.fleet_setup(count=2)
        members = make_members(transform, 2)
        with pytest.raises(ValueError):
            VAEFleet([])
        with pytest.raises(ValueError):
            VAEFleet([members[0], members[0]])
        other = TabularVAE(
            transform.dimension,
            transform.numeric_columns,
            transform.categorical_blocks,
            latent_dim=2,
            hidden=(16, 16),
            seed=0,
        )
        with pytest.raises(ValueError):
            VAEFleet([members[0], other])
        fleet = VAEFleet(members)
        with pytest.raises(ValueError):
            fleet.fit(datasets[:1], epochs=2)
        with pytest.raises(ValueError):
            fleet.fit([datasets[0], datasets[1][:-2]], epochs=2)
        with pytest.raises(ValueError):
            fleet.fit(datasets, epochs=0)

    def test_fleet_key_separates_incompatible_refits(self):
        transform, _ = self.fleet_setup(count=1)
        a = make_members(transform, 1)[0]
        b = make_members(transform, 1)[0]
        assert vae_fleet_key(a, 16, 40, 16) == vae_fleet_key(b, 16, 40, 16)
        assert vae_fleet_key(a, 16, 40, 16) != vae_fleet_key(b, 20, 40, 16)
        assert vae_fleet_key(a, 16, 40, 16) != vae_fleet_key(b, 16, 41, 16)
        wide = TabularVAE(
            transform.dimension,
            transform.numeric_columns,
            transform.categorical_blocks,
            latent_dim=3,
            hidden=(32, 32),
            seed=0,
        )
        assert vae_fleet_key(a, 16, 40, 16) != vae_fleet_key(wide, 16, 40, 16)

    @pytest.mark.slow
    def test_full_size_fleet_training_is_bitwise_identical(self):
        """Full-size acceptance: 8 members, 128 rows, paper-scale epochs."""
        space = mixed_space()
        transform = TabularTransform(space)
        datasets = [
            transform.encode(space.sample(128, np.random.default_rng(100 + k)))
            for k in range(8)
        ]
        sequential = make_members(transform, 8, latent_dim=4, hidden=(64, 64))
        fused = make_members(transform, 8, latent_dim=4, hidden=(64, 64))
        VAEFleet(sequential).fit(datasets, epochs=120, batch_size=64, fused=False)
        VAEFleet(fused).fit(datasets, epochs=120, batch_size=64, fused=True)
        assert_members_bitwise_identical(sequential, fused)
