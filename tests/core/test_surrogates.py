"""Tests for the surrogate models (random forest, GP, TPE, constant)."""

import numpy as np
import pytest

from repro.core.surrogate import (
    ConstantSurrogate,
    DecisionTreeRegressor,
    GaussianProcessSurrogate,
    RandomForestSurrogate,
    TreeParzenEstimator,
)


def make_regression_data(n=200, d=5, seed=0, noise=0.05):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, d))
    y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2 + 0.5 * X[:, 2] + noise * rng.standard_normal(n)
    return X, y


class TestDecisionTree:
    def test_fits_and_predicts_shape(self):
        X, y = make_regression_data()
        tree = DecisionTreeRegressor(rng=np.random.default_rng(0), max_features=None)
        tree.fit(X, y)
        pred = tree.predict(X)
        assert pred.shape == (X.shape[0],)
        assert tree.node_count > 1

    def test_perfectly_fits_training_data_with_deep_tree(self):
        X, y = make_regression_data(n=80, noise=0.0)
        tree = DecisionTreeRegressor(
            max_depth=30, min_samples_split=2, min_samples_leaf=1,
            max_features=None, rng=np.random.default_rng(0),
        )
        tree.fit(X, y)
        assert np.mean((tree.predict(X) - y) ** 2) < 1e-6

    def test_constant_target_produces_single_leaf(self):
        X = np.random.default_rng(0).uniform(size=(30, 3))
        y = np.full(30, 7.0)
        tree = DecisionTreeRegressor(rng=np.random.default_rng(0))
        tree.fit(X, y)
        assert tree.node_count == 1
        assert np.allclose(tree.predict(X), 7.0)

    def test_respects_max_depth(self):
        X, y = make_regression_data(n=300)
        shallow = DecisionTreeRegressor(max_depth=2, max_features=None, rng=np.random.default_rng(0))
        deep = DecisionTreeRegressor(max_depth=12, max_features=None, rng=np.random.default_rng(0))
        shallow.fit(X, y)
        deep.fit(X, y)
        assert shallow.node_count < deep.node_count

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)


class TestRandomForest:
    def test_better_than_mean_predictor(self):
        X, y = make_regression_data(n=400)
        X_test, y_test = make_regression_data(n=200, seed=1)
        forest = RandomForestSurrogate(n_estimators=15, seed=0)
        forest.fit(X, y)
        mean, std = forest.predict(X_test)
        mse_forest = np.mean((mean - y_test) ** 2)
        mse_const = np.mean((np.mean(y) - y_test) ** 2)
        assert mse_forest < 0.5 * mse_const
        assert np.all(std >= 0)

    def test_uncertainty_larger_away_from_data(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-0.3, 0.3, size=(150, 2))
        y = X[:, 0] + X[:, 1]
        forest = RandomForestSurrogate(n_estimators=20, seed=0)
        forest.fit(X, y)
        _, std_in = forest.predict(np.array([[0.0, 0.0]]))
        _, std_out = forest.predict(np.array([[3.0, -3.0]]))
        assert std_out[0] >= std_in[0]

    def test_deterministic_given_seed(self):
        X, y = make_regression_data(n=100)
        f1 = RandomForestSurrogate(n_estimators=5, seed=42).fit(X, y)
        f2 = RandomForestSurrogate(n_estimators=5, seed=42).fit(X, y)
        m1, _ = f1.predict(X[:10])
        m2, _ = f2.predict(X[:10])
        assert np.allclose(m1, m2)

    def test_validation_errors(self):
        forest = RandomForestSurrogate()
        with pytest.raises(RuntimeError):
            forest.predict(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            forest.fit(np.zeros((3, 2)), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            forest.fit(np.array([[np.nan, 0.0]]), np.array([1.0]))
        with pytest.raises(ValueError):
            RandomForestSurrogate(n_estimators=0)

    def test_single_point_dataset(self):
        forest = RandomForestSurrogate(n_estimators=3, seed=0)
        forest.fit(np.array([[1.0, 2.0]]), np.array([5.0]))
        mean, std = forest.predict(np.array([[1.0, 2.0]]))
        assert mean[0] == pytest.approx(5.0)


class TestGaussianProcess:
    def test_interpolates_training_points_with_small_noise(self):
        X, y = make_regression_data(n=60, noise=0.0)
        gp = GaussianProcessSurrogate(noise=1e-6, auto_hyperparameters=False)
        gp.fit(X, y)
        mean, std = gp.predict(X)
        assert np.mean((mean - y) ** 2) < 1e-3
        assert np.all(std >= 0)

    def test_uncertainty_grows_away_from_data(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-0.5, 0.5, size=(50, 2))
        y = X[:, 0]
        gp = GaussianProcessSurrogate()
        gp.fit(X, y)
        _, std_near = gp.predict(np.array([[0.0, 0.0]]))
        _, std_far = gp.predict(np.array([[5.0, 5.0]]))
        assert std_far[0] > std_near[0]

    def test_reasonable_generalisation(self):
        X, y = make_regression_data(n=300)
        X_test, y_test = make_regression_data(n=100, seed=3)
        gp = GaussianProcessSurrogate()
        gp.fit(X, y)
        mean, _ = gp.predict(X_test)
        mse = np.mean((mean - y_test) ** 2)
        assert mse < 0.5 * np.var(y_test)

    def test_invalid_constructor_arguments(self):
        with pytest.raises(ValueError):
            GaussianProcessSurrogate(noise=0.0)
        with pytest.raises(ValueError):
            GaussianProcessSurrogate(length_scale=-1.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcessSurrogate().predict(np.zeros((1, 2)))


class TestTreeParzenEstimator:
    def test_scores_favour_the_good_region(self):
        rng = np.random.default_rng(0)
        X_good = rng.normal(loc=2.0, scale=0.3, size=(40, 2))
        X_bad = rng.normal(loc=-2.0, scale=0.3, size=(160, 2))
        X = np.vstack([X_good, X_bad])
        y = np.concatenate([np.ones(40) * 10.0, np.zeros(160)])
        tpe = TreeParzenEstimator(gamma=0.2)
        tpe.fit(X, y)
        score_good = tpe.score(np.array([[2.0, 2.0]]))[0]
        score_bad = tpe.score(np.array([[-2.0, -2.0]]))[0]
        assert score_good > score_bad

    def test_categorical_columns_use_histograms(self):
        rng = np.random.default_rng(0)
        cats = rng.integers(0, 3, size=200).astype(float)
        y = np.where(cats == 1, 10.0, 0.0) + rng.normal(scale=0.1, size=200)
        X = np.column_stack([cats, rng.uniform(size=200)])
        tpe = TreeParzenEstimator(gamma=0.2, categorical_columns=[0])
        tpe.fit(X, y)
        best_cat = tpe.score(np.array([[1.0, 0.5]]))[0]
        other_cat = tpe.score(np.array([[0.0, 0.5]]))[0]
        assert best_cat > other_cat

    def test_flat_scores_below_min_observations(self):
        tpe = TreeParzenEstimator(min_observations=10)
        X = np.random.default_rng(0).uniform(size=(4, 3))
        tpe.fit(X, np.arange(4.0))
        assert np.allclose(tpe.score(X), 0.0)

    def test_predict_interface(self):
        X, y = make_regression_data(n=50, d=3)
        tpe = TreeParzenEstimator()
        tpe.fit(X, y)
        mean, std = tpe.predict(X[:5])
        assert mean.shape == (5,) and np.allclose(std, 1.0)

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            TreeParzenEstimator(gamma=0.0)
        with pytest.raises(ValueError):
            TreeParzenEstimator(gamma=1.0)

    def test_score_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TreeParzenEstimator().score(np.zeros((1, 2)))


class TestConstantSurrogate:
    def test_predicts_training_mean(self):
        X, y = make_regression_data(n=50)
        model = ConstantSurrogate()
        model.fit(X, y)
        mean, std = model.predict(X[:7])
        assert np.allclose(mean, np.mean(y))
        assert np.all(std > 0)
