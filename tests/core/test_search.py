"""Tests for the asynchronous search loops (CBOSearch and VAEABOSearch).

These use a fast synthetic tuning problem so the behavioural properties of the
search (asynchrony, utilisation, transfer learning) can be checked in
milliseconds; the full HEP workflow integration lives in
``tests/integration``.
"""

import math

import numpy as np
import pytest

from repro.core.history import SearchHistory
from repro.core.search import CBOSearch, VAEABOSearch
from repro.core.space import (
    CategoricalParameter,
    IntegerParameter,
    RealParameter,
    SearchSpace,
)


def toy_space():
    return SearchSpace(
        [
            RealParameter("x", 0.0, 1.0),
            RealParameter("y", 0.0, 1.0),
            IntegerParameter("k", 1, 64, log=True),
            CategoricalParameter.boolean("flag"),
        ]
    )


def toy_runtime(config):
    """Run time between ~10 s (optimum) and ~200 s, NaN in a failure corner."""
    if config["x"] > 0.95 and config["y"] > 0.95:
        return float("nan")
    base = 10.0
    penalty = 150.0 * ((config["x"] - 0.7) ** 2 + (config["y"] - 0.3) ** 2)
    penalty += 20.0 * abs(np.log(config["k"]) / np.log(64) - 0.5)
    penalty += 0.0 if config["flag"] else 10.0
    return base + penalty


class TestCBOSearch:
    def test_finds_a_good_configuration(self):
        search = CBOSearch(
            toy_space(), toy_runtime, num_workers=8, surrogate="RF",
            refit_interval=2, seed=0,
        )
        result = search.run(max_time=1200.0)
        assert result.best_runtime < 25.0
        assert result.num_evaluations > 20
        assert result.best_configuration is not None

    def test_beats_random_sampling_in_mean_best(self):
        bo = CBOSearch(toy_space(), toy_runtime, num_workers=8, surrogate="RF", refit_interval=2, seed=1)
        rand = CBOSearch(
            toy_space(), toy_runtime, num_workers=8, surrogate="RAND",
            random_sampling=True, seed=1,
        )
        r_bo = bo.run(max_time=900.0)
        r_rand = rand.run(max_time=900.0)
        assert r_bo.best_runtime <= r_rand.best_runtime + 1.0

    def test_history_times_are_consistent(self):
        search = CBOSearch(toy_space(), toy_runtime, num_workers=4, seed=0)
        result = search.run(max_time=500.0)
        for ev in result.history:
            assert 0.0 <= ev.submitted < ev.completed <= 500.0 + 1e-6
        assert result.num_evaluations == len(result.history)

    def test_worker_utilization_bounds(self):
        search = CBOSearch(toy_space(), toy_runtime, num_workers=4, seed=0)
        result = search.run(max_time=500.0)
        assert 0.0 < result.worker_utilization <= 1.0

    def test_max_evaluations_cap(self):
        search = CBOSearch(toy_space(), toy_runtime, num_workers=4, seed=0)
        result = search.run(max_time=10_000.0, max_evaluations=12)
        assert result.num_evaluations <= 12 + 4  # cap plus at most one in-flight batch

    def test_initial_configurations_are_used_first(self):
        space = toy_space()
        init = [{"x": 0.7, "y": 0.3, "k": 8, "flag": True}]
        search = CBOSearch(space, toy_runtime, num_workers=2, seed=0)
        result = search.run(max_time=200.0, initial_configurations=init)
        first = min(result.history, key=lambda ev: ev.submitted)
        assert first.configuration["x"] == pytest.approx(0.7)

    def test_failed_corner_is_recorded_as_nan(self):
        space = toy_space()
        init = [{"x": 0.99, "y": 0.99, "k": 8, "flag": True}]
        search = CBOSearch(space, toy_runtime, num_workers=1, seed=0)
        result = search.run(max_time=700.0, initial_configurations=init)
        assert result.history.num_failures() >= 1

    def test_gp_has_lower_utilization_than_rf(self):
        # The GP's O(n^3) update cost must show up as idle workers (Fig. 4d/f).
        rf = CBOSearch(toy_space(), toy_runtime, num_workers=8, surrogate="RF", refit_interval=2, seed=2)
        gp = CBOSearch(toy_space(), toy_runtime, num_workers=8, surrogate="GP", seed=2)
        r_rf = rf.run(max_time=900.0)
        r_gp = gp.run(max_time=900.0)
        # At this reduced scale the GP overhead is small but never helps:
        # it must not beat RF on utilisation or throughput (the full-scale
        # collapse is reproduced by the Fig. 4 benchmarks).
        assert r_gp.worker_utilization <= r_rf.worker_utilization + 0.02
        assert r_gp.num_evaluations <= r_rf.num_evaluations + 2

    def test_invalid_max_time(self):
        search = CBOSearch(toy_space(), toy_runtime, num_workers=2, seed=0)
        with pytest.raises(ValueError):
            search.run(max_time=0.0)

    def test_busy_intervals_cover_evaluations(self):
        search = CBOSearch(toy_space(), toy_runtime, num_workers=4, seed=0)
        result = search.run(max_time=400.0)
        assert len(result.busy_intervals) >= result.num_evaluations


@pytest.fixture(scope="module")
def toy_source_history():
    search = CBOSearch(
        toy_space(), toy_runtime, num_workers=8, surrogate="RF",
        refit_interval=2, seed=3,
    )
    return search.run(max_time=900.0).history


class TestVAEABOSearch:

    def test_without_source_behaves_like_cbo(self):
        search = VAEABOSearch(toy_space(), toy_runtime, num_workers=4, seed=0)
        assert search.transfer_prior is None
        result = search.run(max_time=300.0)
        assert result.num_evaluations > 0

    def test_transfer_learning_converges_faster(self, toy_source_history):
        source = toy_source_history
        tl = VAEABOSearch(
            toy_space(), toy_runtime, source_history=source,
            num_workers=8, surrogate="RF", vae_epochs=80, refit_interval=2, seed=4,
        )
        no_tl = CBOSearch(
            toy_space(), toy_runtime, num_workers=8, surrogate="RF",
            refit_interval=2, seed=4,
        )
        r_tl = tl.run(max_time=600.0)
        r_no = no_tl.run(max_time=600.0)
        # Early incumbent: TL should already be good shortly after the first
        # completions, while the cold search is still exploring.
        early = 120.0
        assert r_tl.history.best_runtime_at(early) <= r_no.history.best_runtime_at(early) + 5.0
        assert r_tl.best_runtime < 25.0

    def test_transfer_prior_exposed(self, toy_source_history):
        source = toy_source_history
        search = VAEABOSearch(
            toy_space(), toy_runtime, source_history=source, vae_epochs=30,
            num_workers=2, seed=0,
        )
        assert search.transfer_prior is not None
        assert set(search.transfer_prior.shared_parameters) == {"x", "y", "k", "flag"}

    def test_transfer_from_smaller_space(self):
        # Source tuned only (x, y); the new space adds k and flag.
        small_space = SearchSpace([RealParameter("x", 0.0, 1.0), RealParameter("y", 0.0, 1.0)])
        source = SearchHistory(small_space)
        rng = np.random.default_rng(0)
        for i, config in enumerate(small_space.sample(150, rng)):
            source.record(config, toy_runtime({**config, "k": 8, "flag": True}), i, i + 1)
        search = VAEABOSearch(
            toy_space(), toy_runtime, source_history=source,
            num_workers=4, vae_epochs=60, refit_interval=2, seed=0,
        )
        assert set(search.transfer_prior.new_parameters) == {"k", "flag"}
        result = search.run(max_time=600.0)
        assert result.best_runtime < 40.0
