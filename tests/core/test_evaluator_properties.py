"""Property-based tests of the asynchronous evaluation protocol.

The invariants are checked for the private
:class:`~repro.core.evaluator.AsyncVirtualEvaluator` **and** for the
queue-based :class:`~repro.service.ServiceEvaluator` on a private pool — the
same properties against both backends pin the protocol equivalence the
``evaluator_factory`` seam relies on:

* ``collect``/``wait_any`` return evaluations ordered by completion time, and
  completion times never decrease across successive collections;
* ``utilization`` stays within ``[0, 1]``;
* ``num_pending + num_idle == num_workers`` (each worker runs at most one
  evaluation);
* driven by the same randomly generated submission script, both backends
  produce identical completion sequences and utilisation.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.evaluator import AsyncVirtualEvaluator
from repro.service import ServiceEvaluator

NUM_WORKERS = 5

#: One scripted step: submit ``num_configs`` configurations whose runtimes are
#: taken from the script's runtime stream, then wait for the next completion.
steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=NUM_WORKERS),
        st.lists(
            st.one_of(
                st.floats(min_value=0.25, max_value=500.0),
                st.just(float("nan")),  # failures occupy failure_duration
            ),
            min_size=NUM_WORKERS + 1,
            max_size=NUM_WORKERS + 1,
        ),
    ),
    min_size=1,
    max_size=12,
)


def make_run_function(runtime_stream):
    """A run function handing out scripted runtimes in call order."""
    iterator = iter(runtime_stream)

    def run(config):
        return next(iterator)

    return run


BACKENDS = {
    "async": lambda run: AsyncVirtualEvaluator(run, num_workers=NUM_WORKERS),
    "service": lambda run: ServiceEvaluator(run, num_workers=NUM_WORKERS),
}


def drive(evaluator, script):
    """Run a submission script; returns the collected evaluations.

    Like the search manager, it only waits while evaluations are outstanding
    (an uncapped wait with nothing pending would just burn the clock to the
    cap).
    """
    collected = []
    for i, (num_configs, _) in enumerate(script):
        batch = [{"step": i, "k": j} for j in range(min(num_configs, evaluator.num_idle))]
        if batch:
            evaluator.submit(batch)
        if evaluator.num_pending:
            _, done = evaluator.wait_any(math.inf)
            collected.extend(done)
    # Drain everything still running.
    while evaluator.num_pending:
        _, done = evaluator.wait_any(math.inf)
        collected.extend(done)
    return collected


@pytest.mark.parametrize("backend", sorted(BACKENDS))
class TestProtocolInvariants:
    @given(script=steps)
    @settings(max_examples=40, deadline=None)
    def test_collect_ordering_is_monotone_in_completion_time(self, backend, script):
        runtimes = [rt for _, stream in script for rt in stream]
        evaluator = BACKENDS[backend](make_run_function(runtimes))
        last = -math.inf
        for i, (num_configs, _) in enumerate(script):
            batch = [{"step": i, "k": j} for j in range(min(num_configs, evaluator.num_idle))]
            if batch:
                evaluator.submit(batch)
            if not evaluator.num_pending:
                continue
            _, done = evaluator.wait_any(math.inf)
            times = [ev.completed for ev in done]
            assert times == sorted(times)
            for t in times:
                assert t >= last
                last = t

    @given(script=steps, horizon=st.floats(min_value=1.0, max_value=5000.0))
    @settings(max_examples=40, deadline=None)
    def test_utilization_within_unit_interval(self, backend, script, horizon):
        runtimes = [rt for _, stream in script for rt in stream]
        evaluator = BACKENDS[backend](make_run_function(runtimes))
        drive(evaluator, script)
        value = evaluator.utilization(horizon)
        assert 0.0 <= value <= 1.0 + 1e-12

    @given(script=steps)
    @settings(max_examples=40, deadline=None)
    def test_pending_plus_idle_is_num_workers(self, backend, script):
        runtimes = [rt for _, stream in script for rt in stream]
        evaluator = BACKENDS[backend](make_run_function(runtimes))
        assert evaluator.num_pending + evaluator.num_idle == NUM_WORKERS
        for i, (num_configs, _) in enumerate(script):
            batch = [{"step": i, "k": j} for j in range(min(num_configs, evaluator.num_idle))]
            if batch:
                evaluator.submit(batch)
            assert evaluator.num_pending + evaluator.num_idle == NUM_WORKERS
            if evaluator.num_pending:
                evaluator.wait_any(math.inf)
            assert evaluator.num_pending + evaluator.num_idle == NUM_WORKERS


class TestBackendEquivalence:
    @given(script=steps)
    @settings(max_examples=40, deadline=None)
    def test_both_backends_produce_identical_completions(self, script):
        runtimes = [rt for _, stream in script for rt in stream]
        results = {}
        for name, factory in BACKENDS.items():
            evaluator = factory(make_run_function(list(runtimes)))
            collected = drive(evaluator, script)
            results[name] = (
                [
                    (ev.configuration["step"], ev.configuration["k"], ev.worker,
                     ev.submitted, ev.completed)
                    for ev in collected
                ],
                evaluator.num_submitted,
                evaluator.num_collected,
                evaluator.utilization(1000.0),
            )
        assert results["async"] == results["service"]


class TestServiceQueueing:
    def test_excess_submissions_queue_instead_of_dropping(self):
        evaluator = ServiceEvaluator(lambda c: 10.0, num_workers=2)
        accepted = evaluator.submit([{"i": i} for i in range(5)])
        assert accepted == 5
        assert evaluator.num_pending == 2
        assert evaluator.num_queued == 3
        assert evaluator.num_pending + evaluator.num_idle == 2
        # Queued requests start back-to-back as workers free up.
        _, first = evaluator.wait_any(1e9)
        assert [ev.configuration["i"] for ev in first] == [0, 1]
        assert evaluator.num_queued == 1
        _, second = evaluator.wait_any(1e9)
        assert [ev.configuration["i"] for ev in second] == [2, 3]
        _, third = evaluator.wait_any(1e9)
        assert [ev.configuration["i"] for ev in third] == [4]
        assert evaluator.now == 30.0

    def test_async_evaluator_drops_excess_submissions(self):
        evaluator = AsyncVirtualEvaluator(lambda c: 10.0, num_workers=2)
        accepted = evaluator.submit([{"i": i} for i in range(5)])
        assert accepted == 2
        assert evaluator.num_pending == 2

    def test_shared_pool_clients_share_clock_and_workers(self):
        from repro.service import SharedWorkerPool

        pool = SharedWorkerPool(num_workers=3)
        a = ServiceEvaluator(lambda c: 5.0, pool=pool)
        b = ServiceEvaluator(lambda c: 7.0, pool=pool)
        a.submit([{"c": 0}, {"c": 1}])
        b.submit([{"c": 2}, {"c": 3}])  # only one worker left: one queues
        assert pool.num_pending == 3 and pool.num_queued == 1
        now_a, done_a = a.wait_any(1e9)
        assert [ev.configuration["c"] for ev in done_a] == [0, 1]
        assert now_a == 5.0 and b.now == 5.0  # shared clock advanced for b too
        _, done_b = b.wait_any(1e9)
        assert [ev.configuration["c"] for ev in done_b] == [2]
        _, done_b2 = b.wait_any(1e9)
        # The queued request started at t=5 when a worker freed.
        assert [ev.configuration["c"] for ev in done_b2] == [3]
        assert done_b2[0].submitted == 5.0 and done_b2[0].completed == 12.0
