"""JournalReader: zero-copy reads at the checkpoint watermark.

The read side's contract has three legs:

* **watermark visibility** — a reader attached while a writer is live (or
  after a crash left a torn tail) sees exactly the checkpointed prefix,
  bit-identical to the writer's in-memory history at that watermark;
* **read-only zero-copy views** — the history handed out shares the mapped
  column files (no parse, no copy), rejects mutation, and thaws via
  ``copy()``;
* **bounded resources** — readers are served through an LRU cache with a
  settable limit, attach failures leak no handles, and ``close()`` is
  idempotent.

The Hypothesis property drives random append/checkpoint/crash schedules
against a reference in-memory history and checks the reader at every stage.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fixtures import make_service_space, make_service_search, make_wide_space
from repro.core.history import Evaluation, SearchHistory
from repro.core.journal import (
    CampaignJournal,
    JournalError,
    JournalReader,
    _READER_CACHE,
    clear_journal_cache,
    open_journal_reader,
    set_journal_cache_limit,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_journal_cache()
    previous = set_journal_cache_limit(128)
    yield
    set_journal_cache_limit(previous)
    clear_journal_cache()


def synth_history(space, n, seed=0):
    """A deterministic n-row history over ``space``."""
    rng = np.random.default_rng(seed)
    history = SearchHistory(space)
    for i, config in enumerate(space.sample(n, rng)):
        runtime = float(rng.uniform(10.0, 60.0))
        submitted = float(i)
        history.append(
            Evaluation(
                configuration=config,
                objective=-runtime,
                runtime=runtime,
                submitted=submitted,
                completed=submitted + runtime,
                worker=i % 4,
                eval_id=i,
            )
        )
    return history


def write_journal(directory, history, rows=None, intervals=()):
    """Create a journal holding ``rows`` checkpointed rows of ``history``."""
    journal = CampaignJournal.create(directory, history.space, fsync=False)
    try:
        journal.write_meta({})
        journal.append_rows(
            history if rows is None else history.truncated(rows)
        )
        journal.append_intervals(list(intervals))
        journal.checkpoint({"finished": True})
    finally:
        journal.close()


def assert_history_rows_equal(view, reference, what=""):
    assert len(view) == len(reference), what
    for ev_v, ev_r in zip(view, reference):
        assert ev_v.configuration == ev_r.configuration, what
        assert ev_v.submitted == ev_r.submitted, what
        assert ev_v.completed == ev_r.completed, what
        assert ev_v.worker == ev_r.worker, what
        assert ev_v.eval_id == ev_r.eval_id, what
        assert (ev_v.runtime == ev_r.runtime) or (
            math.isnan(ev_v.runtime) and math.isnan(ev_r.runtime)
        ), what
        assert (ev_v.objective == ev_r.objective) or (
            math.isnan(ev_v.objective) and math.isnan(ev_r.objective)
        ), what


class TestWatermark:
    def test_reader_sees_only_checkpointed_prefix_of_live_writer(self, tmp_path):
        space = make_wide_space()
        master = synth_history(space, 20)
        journal = CampaignJournal.create(tmp_path / "j", space, fsync=False)
        try:
            journal.write_meta({})
            journal.append_rows(master.truncated(12))
            journal.checkpoint({})
            # The writer keeps appending past the checkpoint — a live tail
            # the reader must not see.
            journal.append_rows(master)
        finally:
            journal.close()
        reader = JournalReader(tmp_path / "j", space)
        assert reader.num_rows == 12
        assert_history_rows_equal(reader.history(), master.truncated(12))

    def test_torn_tail_bytes_are_invisible(self, tmp_path):
        space = make_service_space()
        master = synth_history(space, 10)
        write_journal(tmp_path / "j", master, rows=10)
        # A crash mid-append leaves a torn, partial row at the end of a
        # column file; the watermark mapping never reaches it.
        with open(tmp_path / "j" / "m_objective.bin", "ab") as handle:
            handle.write(b"\x01\x02\x03")
        reader = JournalReader(tmp_path / "j", space)
        assert_history_rows_equal(reader.history(), master)

    def test_journal_without_checkpoint_reads_empty(self, tmp_path):
        space = make_service_space()
        journal = CampaignJournal.create(tmp_path / "j", space, fsync=False)
        journal.write_meta({})
        journal.close()
        reader = JournalReader(tmp_path / "j", space)
        assert reader.num_rows == 0
        assert len(reader.history()) == 0
        assert reader.intervals() == []

    def test_short_data_file_raises(self, tmp_path):
        space = make_service_space()
        write_journal(tmp_path / "j", synth_history(space, 8))
        with open(tmp_path / "j" / "m_runtime.bin", "r+b") as handle:
            handle.truncate(3 * 8)
        with pytest.raises(JournalError, match="m_runtime.bin"):
            JournalReader(tmp_path / "j", space).history()

    def test_space_mismatch_raises(self, tmp_path):
        write_journal(tmp_path / "j", synth_history(make_service_space(), 4))
        with pytest.raises(JournalError, match="fingerprint"):
            JournalReader(tmp_path / "j", make_wide_space())

    def test_reader_survives_writer_checkpointing_more(self, tmp_path):
        """A mapped prefix stays valid while the writer commits new rows."""
        space = make_service_space()
        master = synth_history(space, 16)
        journal = CampaignJournal.create(tmp_path / "j", space, fsync=False)
        try:
            journal.write_meta({})
            journal.append_rows(master.truncated(6))
            journal.checkpoint({})
            early = JournalReader(tmp_path / "j", space).history()
            journal.append_rows(master)
            journal.checkpoint({})
        finally:
            journal.close()
        # The old view still reads the first 6 rows; a fresh reader sees 16.
        assert_history_rows_equal(early, master.truncated(6))
        late = JournalReader(tmp_path / "j", space)
        assert_history_rows_equal(late.history(), master)

    def test_mid_campaign_reader_matches_writer_history(self, tmp_path):
        """Against a real campaign: attach mid-run, compare at the watermark."""
        execution = make_service_search(3).start(
            max_time=600.0,
            max_evaluations=24,
            journal_dir=tmp_path / "j",
            journal_fsync=False,
            checkpoint_interval=3,
        )
        for _ in range(4):
            execution.advance()
        checkpoint = CampaignJournal.read_checkpoint(tmp_path / "j")
        watermark = int(checkpoint["num_rows"])
        reader = JournalReader(tmp_path / "j", execution.search.space)
        assert reader.num_rows == watermark
        assert watermark <= len(execution.history)
        assert_history_rows_equal(
            reader.history(), execution.history.truncated(watermark)
        )
        while execution.advance():
            pass


class TestReadOnlyView:
    def test_view_is_zero_copy_and_rejects_append(self, tmp_path):
        space = make_service_space()
        master = synth_history(space, 12)
        write_journal(tmp_path / "j", master)
        view = JournalReader(tmp_path / "j", space).history()
        assert view.read_only
        with pytest.raises(TypeError, match="read-only"):
            view.append(master[0])
        # Metadata access must not trigger parameter decoding.
        assert view.best_runtime() == master.best_runtime()
        assert view._param_store is None
        # best() materialises one row through the element loaders — still no
        # full-column decode.
        assert view.best().configuration == master.best().configuration
        assert view._param_store is None
        # Full config access decodes; values are the exact Python objects.
        assert view.configurations() == master.configurations()

    def test_copy_thaws_to_mutable(self, tmp_path):
        space = make_service_space()
        master = synth_history(space, 6)
        write_journal(tmp_path / "j", master)
        thawed = JournalReader(tmp_path / "j", space).history().copy()
        assert not thawed.read_only
        thawed.append(master[0])
        assert len(thawed) == 7

    def test_csv_round_trip_from_view(self, tmp_path):
        space = make_service_space()
        master = synth_history(space, 9)
        write_journal(tmp_path / "j", master)
        view = JournalReader(tmp_path / "j", space).history()
        reparsed = SearchHistory.from_csv(view.to_csv(), space)
        assert reparsed.configurations() == master.configurations()

    def test_intervals_round_trip(self, tmp_path):
        space = make_service_space()
        pairs = [(0.0, 10.5), (1.25, 31.75), (2.0, 12.125)]
        write_journal(tmp_path / "j", synth_history(space, 3), intervals=pairs)
        assert JournalReader(tmp_path / "j", space).intervals() == pairs


class TestPeek:
    def test_peek_summarises_without_space(self, tmp_path):
        space = make_service_space()
        master = synth_history(space, 15)
        write_journal(tmp_path / "j", master)
        peeked = JournalReader.peek(tmp_path / "j")
        assert peeked["num_evaluations"] == 15
        assert peeked["finished"] is True
        assert peeked["best_runtime"] == master.best_runtime()
        assert peeked["num_failures"] == 0

    def test_peek_before_first_checkpoint(self, tmp_path):
        space = make_service_space()
        journal = CampaignJournal.create(tmp_path / "j", space, fsync=False)
        journal.write_meta({})
        journal.close()
        peeked = JournalReader.peek(tmp_path / "j")
        assert peeked["num_evaluations"] == 0
        assert peeked["best_runtime"] is None


class TestReaderCache:
    def test_unchanged_journal_returns_cached_reader(self, tmp_path):
        space = make_service_space()
        write_journal(tmp_path / "j", synth_history(space, 5))
        first = open_journal_reader(tmp_path / "j", space)
        assert open_journal_reader(tmp_path / "j", space) is first
        # The shared history is built once.
        assert first.history() is open_journal_reader(tmp_path / "j", space).history()

    def test_new_checkpoint_invalidates_cached_reader(self, tmp_path):
        space = make_service_space()
        master = synth_history(space, 10)
        journal = CampaignJournal.create(tmp_path / "j", space, fsync=False)
        try:
            journal.write_meta({})
            journal.append_rows(master.truncated(4))
            journal.checkpoint({})
            stale = open_journal_reader(tmp_path / "j", space)
            assert stale.num_rows == 4
            journal.append_rows(master)
            journal.checkpoint({})
        finally:
            journal.close()
        fresh = open_journal_reader(tmp_path / "j", space)
        assert fresh is not stale
        assert fresh.num_rows == 10
        # Only the fresh entry remains cached for this directory.
        assert len(_READER_CACHE) == 1

    def test_cache_limit_bounds_and_evicts_lru(self, tmp_path):
        space = make_service_space()
        previous = set_journal_cache_limit(3)
        assert previous == 128
        for i in range(6):
            write_journal(tmp_path / f"j{i}", synth_history(space, 3, seed=i))
            open_journal_reader(tmp_path / f"j{i}", space)
        assert len(_READER_CACHE) == 3

    def test_zero_limit_disables_caching(self, tmp_path):
        space = make_service_space()
        write_journal(tmp_path / "j", synth_history(space, 3))
        set_journal_cache_limit(0)
        a = open_journal_reader(tmp_path / "j", space)
        b = open_journal_reader(tmp_path / "j", space)
        assert a is not b
        assert len(_READER_CACHE) == 0

    def test_clear_journal_cache(self, tmp_path):
        space = make_service_space()
        write_journal(tmp_path / "j", synth_history(space, 3))
        open_journal_reader(tmp_path / "j", space)
        assert len(_READER_CACHE) == 1
        clear_journal_cache()
        assert len(_READER_CACHE) == 0


class TestCacheThreadSafety:
    """Regression: the reader cache raced under parallel tick stepping.

    Before the cache lock, two threads opening the same directory could
    both miss and insert (duplicating mmap handles), and an eviction could
    close a reader *while another thread was using it* — the mmap views
    died under the user's feet.  The lock serialises lookups and the
    refcount makes eviction close-safe: a retained reader survives its
    eviction until the holder releases it.
    """

    def test_concurrent_opens_share_one_reader(self, tmp_path):
        import threading

        space = make_service_space()
        write_journal(tmp_path / "j", synth_history(space, 5))
        readers = []
        barrier = threading.Barrier(8)

        def hit():
            barrier.wait()
            readers.append(open_journal_reader(tmp_path / "j", space))

        threads = [threading.Thread(target=hit) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(r) for r in readers}) == 1
        assert len(_READER_CACHE) == 1

    def test_open_evict_clear_hammer_from_threads(self, tmp_path):
        import threading

        space = make_service_space()
        for i in range(6):
            write_journal(tmp_path / f"j{i}", synth_history(space, 4, seed=i))
        set_journal_cache_limit(2)  # force constant eviction pressure
        errors = []

        def hammer(worker):
            try:
                for round_ in range(30):
                    index = (worker + round_) % 6
                    reader = open_journal_reader(
                        tmp_path / f"j{index}", space, retain=True
                    )
                    try:
                        # The retained reader must stay readable even if a
                        # sibling thread's open just evicted it.
                        assert reader.num_rows == 4
                        assert len(reader.history()) == 4
                    finally:
                        reader.close()
                    if worker == 0 and round_ % 10 == 9:
                        clear_journal_cache()
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(worker,)) for worker in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(_READER_CACHE) <= 2

    def test_retained_reader_survives_eviction(self, tmp_path):
        space = make_service_space()
        write_journal(tmp_path / "j", synth_history(space, 3))
        set_journal_cache_limit(1)
        reader = open_journal_reader(tmp_path / "j", space, retain=True)
        # Opening another directory evicts j's entry (limit 1) — which
        # releases the cache's reference, not the caller's.
        write_journal(tmp_path / "k", synth_history(space, 2))
        open_journal_reader(tmp_path / "k", space)
        assert all(key != str(tmp_path / "j") for key in list(_READER_CACHE))
        assert len(reader.history()) == 3
        reader.close()
        with pytest.raises(JournalError, match="closed"):
            reader.history()

    def test_unretained_close_still_closes_for_real(self, tmp_path):
        # The refcount must not weaken the direct-construction contract:
        # a reader you build yourself closes on the first close() call.
        space = make_service_space()
        write_journal(tmp_path / "j", synth_history(space, 2))
        reader = JournalReader(tmp_path / "j", space)
        reader.close()
        with pytest.raises(JournalError, match="closed"):
            reader.history()

    def test_retain_on_closed_reader_raises(self, tmp_path):
        space = make_service_space()
        write_journal(tmp_path / "j", synth_history(space, 2))
        reader = JournalReader(tmp_path / "j", space)
        reader.close()
        with pytest.raises(JournalError, match="closed"):
            reader.retain()


class TestWriterResourceHandling:
    def test_attach_failure_leaks_no_handles(self, tmp_path):
        space = make_service_space()
        write_journal(tmp_path / "j", synth_history(space, 8))
        # Destroy one column file entirely: attach validates sizes first and
        # must fail without leaving any append handle open.
        (tmp_path / "j" / "m_worker.bin").unlink()
        with pytest.raises(JournalError):
            CampaignJournal.attach(tmp_path / "j", space)

    def test_open_handles_failure_closes_already_opened(self, tmp_path, monkeypatch):
        space = make_service_space()
        journal = CampaignJournal.create(tmp_path / "j", space, fsync=False)
        journal.close()
        opened = []
        real_open = open

        def flaky_open(path, mode="r", *args, **kwargs):
            if len(opened) == 3:
                raise OSError("out of descriptors")
            handle = real_open(path, mode, *args, **kwargs)
            opened.append(handle)
            return handle

        monkeypatch.setattr("builtins.open", flaky_open)
        with pytest.raises(OSError):
            journal._open_handles()
        assert journal._handles == {}
        assert all(handle.closed for handle in opened)

    def test_close_is_idempotent(self, tmp_path):
        space = make_service_space()
        journal = CampaignJournal.create(tmp_path / "j", space, fsync=False)
        journal.close()
        journal.close()
        # A reader's close is also idempotent, and a closed reader refuses
        # to hand out new views.
        write_journal(tmp_path / "j2", synth_history(space, 2))
        reader = JournalReader(tmp_path / "j2", space)
        reader.history()
        reader.close()
        reader.close()
        with pytest.raises(JournalError, match="closed"):
            reader.history()


# ------------------------------------------------------------------ property
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.integers(min_value=1, max_value=5)),
        st.tuples(st.just("checkpoint"), st.just(0)),
        st.tuples(st.just("crash"), st.just(0)),
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=40, deadline=None)
@given(ops=_OPS)
def test_reader_always_sees_committed_prefix(tmp_path_factory, ops):
    """Property: under any append/checkpoint/crash schedule, a fresh reader
    observes exactly the last checkpointed prefix of the master history."""
    space = make_service_space()
    master = synth_history(space, 64, seed=7)
    directory = tmp_path_factory.mktemp("journal-prop") / "j"
    journal = CampaignJournal.create(directory, space, fsync=False)
    journal.write_meta({})
    appended = 0
    committed = 0
    try:
        for op, arg in ops:
            if op == "append":
                appended = min(appended + arg, len(master))
                journal.append_rows(master.truncated(appended))
            elif op == "checkpoint":
                journal.checkpoint({})
                committed = appended
            else:  # crash: drop the writer, reattach at the last checkpoint
                journal.close()
                if committed == 0:
                    # No checkpoint yet: nothing to attach to; recreate.
                    journal = CampaignJournal.create(directory, space, fsync=False)
                    journal.write_meta({})
                else:
                    journal = CampaignJournal.attach(directory, space, fsync=False)
                appended = committed
            reader = JournalReader(directory, space)
            assert reader.num_rows == committed
            assert_history_rows_equal(
                reader.history(), master.truncated(committed), f"after {op}"
            )
    finally:
        journal.close()
