"""Equivalence tests: vectorised (columnar) codecs vs the scalar references.

The columnar pipeline rewrote all four space codecs (`to_unit_array`,
`to_numeric_array`, `to_one_hot_array`, `from_unit_array`) as column-wise
NumPy operations.  The original per-element loops are kept as ``*_loop``
reference implementations; these property-based tests assert both paths agree
over mixed Real/Integer/Categorical/Ordinal spaces.

Exactness note: linear transforms and index encodings must agree *bitwise*;
log-scaled columns go through ``np.log``/``np.exp`` in the vectorised path and
``math.log``/``math.exp`` in the scalar path, which may differ in the last
ulp, so those comparisons allow a relative tolerance of 1e-12.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.space import (
    CategoricalParameter,
    ColumnBatch,
    IntegerParameter,
    OrdinalParameter,
    RealParameter,
    SearchSpace,
)


def mixed_space():
    return SearchSpace(
        [
            IntegerParameter("batch", 1, 2048, log=True),
            IntegerParameter("count", -3, 7),
            RealParameter("rate", 0.5, 100.0, log=True),
            RealParameter("fraction", -1.0, 1.0),
            CategoricalParameter("pool", ("fifo", "fifo_wait", "prio_wait")),
            CategoricalParameter.boolean("busy"),
            OrdinalParameter("pes", (1, 2, 4, 8, 16, 32)),
        ],
        name="mixed",
    )


def sample_configs(n, seed):
    space = mixed_space()
    rng = np.random.default_rng(seed)
    return space, space.sample(n, rng)


class TestCodecEquivalence:
    @given(st.integers(min_value=0, max_value=100_000), st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_to_unit_array_matches_loop(self, seed, n):
        space, configs = sample_configs(n, seed)
        fast = space.to_unit_array(configs)
        slow = space.to_unit_array_loop(configs)
        assert fast.shape == slow.shape
        np.testing.assert_allclose(fast, slow, rtol=1e-12, atol=0.0)

    @given(st.integers(min_value=0, max_value=100_000), st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_to_numeric_array_matches_loop(self, seed, n):
        space, configs = sample_configs(n, seed)
        fast = space.to_numeric_array(configs)
        slow = space.to_numeric_array_loop(configs)
        np.testing.assert_allclose(fast, slow, rtol=1e-12, atol=0.0)

    @given(st.integers(min_value=0, max_value=100_000), st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_to_one_hot_array_matches_loop(self, seed, n):
        space, configs = sample_configs(n, seed)
        fast = space.to_one_hot_array(configs)
        slow = space.to_one_hot_array_loop(configs)
        # One-hot indicator columns must match bitwise; unit columns get the
        # log tolerance.
        np.testing.assert_allclose(fast, slow, rtol=1e-12, atol=0.0)

    @given(st.integers(min_value=0, max_value=100_000), st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_from_unit_array_matches_loop(self, seed, n):
        space = mixed_space()
        rng = np.random.default_rng(seed)
        U = rng.random((n, len(space)))
        fast = space.from_unit_array(U)
        slow = space.from_unit_array_loop(U)
        assert len(fast) == len(slow) == n
        for cf, cs in zip(fast, slow):
            for p in space:
                if isinstance(p, RealParameter):
                    assert cf[p.name] == pytest.approx(cs[p.name], rel=1e-12)
                else:
                    assert cf[p.name] == cs[p.name]
                    assert type(cf[p.name]) is type(cs[p.name])

    @given(st.integers(min_value=0, max_value=100_000), st.integers(min_value=1, max_value=48))
    @settings(max_examples=40, deadline=None)
    def test_clip_columns_matches_per_row_clip(self, seed, n):
        """clip_columns is the row-path clip mapped over whole columns —
        including out-of-domain numerics that need clipping/rounding and
        discrete values that must snap."""
        space = mixed_space()
        rng = np.random.default_rng(seed)
        configs = space.sample(n, rng)
        # Perturb some rows out of domain the way a changed-bounds transfer
        # source would: numeric overshoot, non-integral ints, bogus category.
        for config in configs:
            if rng.random() < 0.4:
                config["batch"] = int(config["batch"]) * 10
            if rng.random() < 0.3:
                config["fraction"] = float(config["fraction"]) + 5.0
            if rng.random() < 0.2:
                config["pes"] = 5  # not an allowed ordinal value, snaps
            if rng.random() < 0.15:
                # Non-finite values settle on a bound in both paths.
                config["count"] = float("nan") if rng.random() < 0.5 else float("inf")
        reference = [space.clip(config) for config in configs]
        columns = {name: [c[name] for c in configs] for name in space.parameter_names}
        clipped = space.clip_columns({k: np.asarray(v, dtype=object) for k, v in columns.items()})
        for j, config in enumerate(reference):
            for name, value in config.items():
                assert clipped[name][j] == value
                assert type(clipped[name][j]) is type(value)

    def test_clip_columns_missing_parameter_rejected(self):
        space = mixed_space()
        with pytest.raises(ValueError):
            space.clip_columns({"batch": np.asarray([1])})

    def test_linear_columns_match_bitwise(self):
        # No transcendental functions involved → exact equality required.
        space = SearchSpace(
            [
                RealParameter("a", -2.0, 9.0),
                IntegerParameter("b", 0, 1000),
                OrdinalParameter("c", (1, 5, 9)),
                CategoricalParameter("d", ("x", "y")),
            ]
        )
        configs = space.sample(200, np.random.default_rng(0))
        assert np.array_equal(space.to_unit_array(configs), space.to_unit_array_loop(configs))
        assert np.array_equal(
            space.to_numeric_array(configs), space.to_numeric_array_loop(configs)
        )
        assert np.array_equal(
            space.to_one_hot_array(configs), space.to_one_hot_array_loop(configs)
        )


class TestLogClipFix:
    def test_non_positive_values_clip_to_low_in_numeric_encoding(self):
        """A non-positive value in a log column encodes as log(low), never linearly."""
        space = SearchSpace(
            [IntegerParameter("batch", 2, 2048, log=True), RealParameter("x", 0.0, 1.0)]
        )
        bad = [{"batch": 0, "x": 0.5}, {"batch": -7, "x": 0.5}, {"batch": 2, "x": 0.5}]
        arr = space.to_numeric_array(bad)
        assert np.allclose(arr[:, 0], np.log(2.0))
        loop = space.to_numeric_array_loop(bad)
        np.testing.assert_allclose(arr, loop, rtol=1e-12)

    def test_log_column_never_mixes_scales(self):
        space = SearchSpace([RealParameter("r", 0.5, 100.0, log=True)])
        arr = space.to_numeric_array([{"r": -50.0}, {"r": 0.5}, {"r": 100.0}])
        assert arr.min() >= np.log(0.5) - 1e-12
        assert arr.max() <= np.log(100.0) + 1e-12


class TestColumnBatch:
    def test_round_trip_preserves_values_and_types(self):
        space, configs = sample_configs(32, seed=7)
        batch = ColumnBatch.from_configurations(space, configs)
        assert len(batch) == 32
        back = batch.to_configurations()
        assert back == configs
        for config in back:
            space.validate(config)

    def test_take_and_row(self):
        space, configs = sample_configs(10, seed=3)
        batch = ColumnBatch.from_configurations(space, configs)
        sub = batch.take([4, 1, 7])
        assert sub.to_configurations() == [configs[4], configs[1], configs[7]]
        assert batch.row(5) == configs[5]

    def test_sample_columns_matches_sample(self):
        """Columnar and row-major sampling consume the same RNG stream."""
        space = mixed_space()
        cols = space.sample_columns(25, np.random.default_rng(11)).to_configurations()
        rows = space.sample(25, np.random.default_rng(11))
        assert cols == rows

    def test_encodings_accept_column_batches(self):
        space, configs = sample_configs(16, seed=5)
        batch = ColumnBatch.from_configurations(space, configs)
        assert np.array_equal(space.to_unit_array(batch), space.to_unit_array(configs))
        assert np.array_equal(space.to_numeric_array(batch), space.to_numeric_array(configs))
        assert np.array_equal(space.to_one_hot_array(batch), space.to_one_hot_array(configs))

    def test_mismatched_column_lengths_rejected(self):
        space = SearchSpace([RealParameter("a", 0, 1), RealParameter("b", 0, 1)])
        with pytest.raises(ValueError):
            ColumnBatch(space, {"a": np.zeros(3), "b": np.zeros(2)})
        with pytest.raises(ValueError):
            ColumnBatch(space, {"a": np.zeros(3)})


class TestKeyArray:
    def test_keys_are_stable_across_materialisation(self):
        """Raw-value keys match between columnar candidates and told-back dicts."""
        space, _ = sample_configs(1, seed=0)
        batch = space.sample_columns(64, np.random.default_rng(2))
        keys_cols = [row.tobytes() for row in space.key_array(batch)]
        materialised = batch.to_configurations()
        keys_rows = [row.tobytes() for row in space.key_array(materialised)]
        assert keys_cols == keys_rows

    def test_distinct_configs_have_distinct_keys(self):
        space, configs = sample_configs(200, seed=9)
        keys = {row.tobytes() for row in space.key_array(configs)}
        distinct = {tuple(sorted((k, repr(v)) for k, v in c.items())) for c in configs}
        assert len(keys) == len(distinct)
