"""Failure-path coverage: outcome resolution, the stall valve, NaN telling,
and property-based fault schedules.

The fault-free evaluator protocol is pinned by
``tests/core/test_evaluator_properties.py``; this suite exercises the paths
only faults reach — the shared :func:`~repro.core.evaluator.resolve_outcome`
edge cases, the ``wait_any`` stall valve
(:class:`~repro.core.evaluator.EvaluatorStalledError`), NaN objectives
flowing through ``ingest``/``fit_now``, and a Hypothesis sweep asserting that
*no* seeded fault schedule can violate the evaluator protocol invariants.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from fixtures import make_service_search as make_search
from repro.core.evaluator import (
    AsyncVirtualEvaluator,
    EvaluatorStalledError,
    resolve_duration,
    resolve_outcome,
)
from repro.service import ServiceEvaluator, SharedWorkerPool
from repro.sim import FaultDecision, FaultPlan

NUM_WORKERS = 5


# --------------------------------------------------------- outcome resolution
class TestResolveDuration:
    @pytest.mark.parametrize("runtime", [0.0, -3.0, float("nan"), float("inf"), float("-inf")])
    def test_non_positive_or_non_finite_runtime_occupies_failure_duration(self, runtime):
        assert resolve_duration({}, runtime, None, 600.0) == 600.0

    def test_finite_positive_runtime_is_its_own_duration(self):
        assert resolve_duration({}, 42.5, None, 600.0) == 42.5

    def test_duration_function_overrides_even_failures(self):
        assert resolve_duration({}, float("nan"), lambda c, r: 7.0, 600.0) == 7.0


class TestResolveOutcome:
    def test_healthy_decision_matches_fault_free_path(self):
        assert resolve_outcome({}, 42.5, None, 600.0) == (42.5, 42.5)
        assert resolve_outcome({}, 42.5, None, 600.0, decision=FaultDecision()) == (42.5, 42.5)

    def test_fail_decision_replaces_measurement_before_duration(self):
        runtime, duration = resolve_outcome(
            {}, 42.5, None, 600.0, decision=FaultDecision(fail=True)
        )
        assert math.isnan(runtime) and duration == 600.0

    def test_straggler_multiplies_duration_not_measurement(self):
        runtime, duration = resolve_outcome(
            {}, 40.0, None, 600.0, decision=FaultDecision(straggler_factor=4.0)
        )
        assert runtime == 40.0 and duration == 160.0

    def test_hang_is_infinite_without_deadline(self):
        runtime, duration = resolve_outcome(
            {}, 40.0, None, 600.0, decision=FaultDecision(hang=True)
        )
        assert runtime == 40.0 and duration == math.inf

    def test_deadline_kills_hangs_and_long_stragglers(self):
        runtime, duration = resolve_outcome(
            {}, 40.0, None, 600.0, deadline=100.0, decision=FaultDecision(hang=True)
        )
        assert math.isnan(runtime) and duration == 100.0
        runtime, duration = resolve_outcome(
            {}, 40.0, None, 600.0, deadline=100.0,
            decision=FaultDecision(straggler_factor=4.0),
        )
        assert math.isnan(runtime) and duration == 100.0

    def test_deadline_leaves_fast_evaluations_alone(self):
        assert resolve_outcome({}, 40.0, None, 600.0, deadline=100.0) == (40.0, 40.0)


# ---------------------------------------------------------------- stall valve
ALL_HANG = FaultPlan(seed=0, hang_rate=1.0)


class TestStallValve:
    def test_async_evaluator_raises_when_everything_hangs(self):
        evaluator = AsyncVirtualEvaluator(
            lambda c: 10.0, num_workers=2, fault_plan=ALL_HANG
        )
        evaluator.submit([{"i": 0}, {"i": 1}])
        with pytest.raises(EvaluatorStalledError):
            evaluator.wait_any(math.inf)

    def test_service_evaluator_raises_when_everything_hangs(self):
        evaluator = ServiceEvaluator(
            lambda c: 10.0, num_workers=2, fault_plan=ALL_HANG
        )
        evaluator.submit([{"i": 0}, {"i": 1}])
        with pytest.raises(EvaluatorStalledError):
            evaluator.wait_any(math.inf)

    def test_deadline_defuses_the_hang(self):
        evaluator = ServiceEvaluator(
            lambda c: 10.0, num_workers=2, fault_plan=ALL_HANG, deadline=600.0
        )
        evaluator.submit([{"i": 0}, {"i": 1}])
        now, done = evaluator.wait_any(math.inf)
        assert now == 600.0
        assert all(math.isnan(ev.runtime) for ev in done)

    def test_pool_raises_when_queued_work_cannot_start(self):
        pool = SharedWorkerPool(
            num_workers=1,
            fault_plan=FaultPlan(seed=0, crash_rate=1.0),
            max_retries=0,
        )
        evaluator = ServiceEvaluator(lambda c: 10.0, pool=pool)
        evaluator.submit([{"i": 0}, {"i": 1}])  # second request queues
        # The crash kills the only worker; the queued request can never start.
        with pytest.raises(EvaluatorStalledError, match="dead"):
            while True:
                evaluator.wait_any(math.inf)


# -------------------------------------------------------------- NaN objectives
class TestNaNObjectives:
    def test_ingest_and_fit_accept_nan_objectives(self):
        import numpy as np

        search = make_search(0)
        optimizer = search.optimizer
        configs = search.space.sample(12, np.random.default_rng(3))
        objectives = [float("nan") if i % 3 == 0 else -float(i) for i in range(12)]
        optimizer.ingest(configs, objectives)
        optimizer.fit_now()
        assert optimizer.surrogate.fitted
        X, y = optimizer.training_data()
        assert not any(math.isnan(v) for v in y)  # failures filled, not NaN
        assert len(optimizer.ask(4)) == 4

    def test_campaign_survives_elevated_failure_rate(self):
        plan = FaultPlan(seed=7, failure_rate=0.5)

        def factory(run, num_workers, failure_duration):
            return ServiceEvaluator(
                run,
                num_workers=num_workers,
                failure_duration=failure_duration,
                fault_plan=plan,
            )

        result = make_search(0, evaluator_factory=factory).run(
            max_time=1200.0, max_evaluations=30
        )
        objectives = [ev.objective for ev in result.history]
        assert any(math.isnan(v) for v in objectives)
        assert any(not math.isnan(v) for v in objectives)
        assert math.isfinite(result.best_runtime)


# ------------------------------------------------- fault schedules (property)
fault_plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    failure_rate=st.floats(min_value=0.0, max_value=0.5),
    crash_rate=st.floats(min_value=0.0, max_value=0.2),
    hang_rate=st.floats(min_value=0.0, max_value=0.2),
    loss_rate=st.floats(min_value=0.0, max_value=0.2),
    straggler_rate=st.floats(min_value=0.0, max_value=0.2),
    straggler_factor=st.floats(min_value=1.0, max_value=10.0),
)

submissions = st.lists(
    st.integers(min_value=0, max_value=NUM_WORKERS), min_size=2, max_size=10
)

FAULT_BACKENDS = {
    "async": lambda run, plan: AsyncVirtualEvaluator(
        run, num_workers=NUM_WORKERS, fault_plan=plan, deadline=600.0
    ),
    "service": lambda run, plan: ServiceEvaluator(
        run, num_workers=NUM_WORKERS, fault_plan=plan, deadline=600.0
    ),
}


def workers_accounted_for(evaluator):
    """Busy + idle + dead workers always partition the pool."""
    if isinstance(evaluator, ServiceEvaluator):
        pool = evaluator.pool
        return pool.num_pending + pool.num_idle + pool.num_dead == pool.num_workers
    return (
        evaluator.num_pending + evaluator.num_idle + evaluator.num_dead
        == evaluator.num_workers
    )


@pytest.mark.parametrize("backend", sorted(FAULT_BACKENDS))
class TestFaultScheduleInvariants:
    @given(plan=fault_plans, script=submissions)
    @settings(max_examples=30, deadline=None)
    def test_no_fault_schedule_violates_the_protocol(self, backend, plan, script):
        """Under any seeded fault schedule (with the deadline valve on), the
        evaluator keeps its books: completion times stay monotone, workers
        are always accounted for, and the drive loop always drains."""
        evaluator = FAULT_BACKENDS[backend](lambda c: 25.0 + 5.0 * c["k"], plan)
        last = -math.inf
        assert workers_accounted_for(evaluator)
        for i, num_configs in enumerate(script):
            batch = [
                {"step": i, "k": j}
                for j in range(min(num_configs, evaluator.num_idle))
            ]
            if batch:
                evaluator.submit(batch)
            assert workers_accounted_for(evaluator)
            if not evaluator.num_pending:
                continue
            try:
                _, done = evaluator.wait_any(math.inf)
            except EvaluatorStalledError:
                # The valve fired (queued retries with every worker dead) —
                # legitimate, but the books must still balance.
                assert workers_accounted_for(evaluator)
                return
            assert workers_accounted_for(evaluator)
            times = [ev.completed for ev in done]
            assert times == sorted(times)
            for t in times:
                assert math.isfinite(t) and t >= last
                last = t
        guard = 0
        while evaluator.num_pending or getattr(evaluator, "num_queued", 0):
            try:
                evaluator.wait_any(math.inf)
            except EvaluatorStalledError:
                assert workers_accounted_for(evaluator)
                return
            assert workers_accounted_for(evaluator)
            guard += 1
            assert guard < 1000  # the deadline bounds every fault: no spinning
        assert evaluator.num_pending == 0
        assert evaluator.num_collected <= evaluator.num_submitted
