"""Equivalence tests for the columnar history and the incremental GP.

The columnar :class:`~repro.core.history.SearchHistory` must be
observationally identical to the former row-major storage: these tests pit
it against :class:`~repro.core.history_reference.RowHistoryReference` (the
original per-row algorithms, kept verbatim in the library) and assert,
property-style over randomized histories with NaN failures, that
``objectives()``, ``incumbent_trajectory()``, ``top_quantile()`` and the CSV
text are identical.

The GP's rank-1 Cholesky extension must match a full refit with the same
(frozen) hyperparameters to tight tolerance — the ≤ 1e-8 acceptance bar of
the incremental-fit PR — and the optimizer's ``tell`` must actually route new
observations through it.
"""

import copy
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.history import Evaluation, SearchHistory, _parse_typed
from repro.core.history_reference import RowHistoryReference
from repro.core.optimizer import BayesianOptimizer
from repro.core.space import (
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
    RealParameter,
    SearchSpace,
)
from repro.core.surrogate.gaussian_process import GaussianProcessSurrogate


def make_space():
    return SearchSpace(
        [
            IntegerParameter("batch", 1, 2048, log=True),
            RealParameter("rate", 0.5, 100.0, log=True),
            CategoricalParameter("pool", ("fifo", "fifo_wait", "prio_wait")),
            OrdinalParameter("pes", (1, 2, 4, 8, 16, 32)),
            CategoricalParameter.boolean("busy"),
        ]
    )


def build_histories(runtimes, seed):
    """Fill a columnar history and the row reference with the same records."""
    space = make_space()
    rng = np.random.default_rng(seed)
    columnar = SearchHistory(space)
    reference = RowHistoryReference(space)
    # Shuffled completion times exercise the stable completion-order sort.
    completed = rng.permutation(len(runtimes)).astype(float) + 1.0
    for i, rt in enumerate(runtimes):
        config = space.sample(1, rng)[0]
        ev = columnar.record(
            config,
            runtime=rt,
            submitted=float(i),
            completed=float(completed[i]),
            worker=i % 4,
        )
        reference.append(ev)
    return columnar, reference


# runtime 0.0 is the tricky case: record() marks the evaluation failed
# (objective NaN) while storing a finite runtime, so the incumbent trajectory
# must skip it although best_runtime_at historically considers it.
runtime_lists = st.lists(
    st.one_of(
        st.floats(min_value=0.1, max_value=600.0),
        st.just(float("nan")),
        st.just(0.0),
    ),
    min_size=1,
    max_size=40,
)


class TestColumnarRowEquivalence:
    @given(runtimes=runtime_lists, seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_objectives_and_trajectory_identical(self, runtimes, seed):
        columnar, reference = build_histories(runtimes, seed)
        assert np.array_equal(
            columnar.objectives(), reference.objectives(), equal_nan=True
        )
        assert columnar.incumbent_trajectory() == reference.incumbent_trajectory()

    @given(
        runtimes=runtime_lists,
        seed=st.integers(0, 2**16),
        q=st.sampled_from([0.05, 0.1, 0.25, 0.5, 1.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_top_quantile_identical(self, runtimes, seed, q):
        columnar, reference = build_histories(runtimes, seed)
        assert columnar.top_quantile(q) == reference.top_quantile(q)

    @given(runtimes=runtime_lists, seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_best_runtime_at_identical(self, runtimes, seed):
        columnar, reference = build_histories(runtimes, seed)
        for t in (-1.0, 0.0, 1.0, len(runtimes) / 2.0, float(len(runtimes) + 1)):
            assert columnar.best_runtime_at(t) == reference.best_runtime_at(t)

    @given(runtimes=runtime_lists, seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_csv_text_identical_to_row_serialisation(self, runtimes, seed):
        """The CSV text matches a row-by-row DictWriter serialisation."""
        import csv as csv_mod
        import io

        columnar, reference = build_histories(runtimes, seed)
        buffer = io.StringIO()
        fieldnames = list(SearchHistory.CSV_META_COLUMNS) + list(
            columnar.space.parameter_names
        )
        writer = csv_mod.DictWriter(buffer, fieldnames=fieldnames)
        writer.writeheader()
        for ev in reference.evaluations:
            row = {
                "eval_id": ev.eval_id,
                "worker": ev.worker,
                "submitted": f"{ev.submitted:.6f}",
                "completed": f"{ev.completed:.6f}",
                "runtime": f"{ev.runtime:.6f}" if math.isfinite(ev.runtime) else "nan",
                "objective": f"{ev.objective:.6f}"
                if math.isfinite(ev.objective)
                else "nan",
            }
            for name in columnar.space.parameter_names:
                row[name] = ev.configuration.get(name, "")
            writer.writerow(row)
        assert columnar.to_csv() == buffer.getvalue()

    @given(runtimes=runtime_lists, seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_csv_round_trip_preserves_values_and_types(self, runtimes, seed):
        columnar, _ = build_histories(runtimes, seed)
        loaded = SearchHistory.from_csv(columnar.to_csv(), columnar.space)
        assert len(loaded) == len(columnar)
        for a, b in zip(columnar, loaded):
            assert a.configuration == b.configuration
            for name in columnar.space.parameter_names:
                assert type(a.configuration[name]) is type(b.configuration[name])

    @staticmethod
    def _same_evaluation(a, b):
        def same(x, y):
            if isinstance(x, float) and isinstance(y, float):
                return (x == y) or (math.isnan(x) and math.isnan(y))
            return x == y

        return (
            a.configuration == b.configuration
            and same(a.objective, b.objective)
            and same(a.runtime, b.runtime)
            and a.submitted == b.submitted
            and a.completed == b.completed
            and a.worker == b.worker
            and a.eval_id == b.eval_id
        )

    def test_materialised_views_round_trip(self):
        columnar, reference = build_histories([30.0, float("nan"), 12.0, 50.0], 7)
        assert len(columnar.evaluations) == len(reference.evaluations)
        for a, b in zip(columnar.evaluations, reference.evaluations):
            assert self._same_evaluation(a, b)
        assert self._same_evaluation(columnar[2], reference.evaluations[2])
        assert self._same_evaluation(columnar[-1], reference.evaluations[-1])
        for a, b in zip(columnar, reference.evaluations):
            assert self._same_evaluation(a, b)
        successes = [ev for ev in reference.evaluations if not ev.failed]
        assert columnar.successful() == successes

    def test_top_quantile_columns_matches_dicts(self):
        columnar, _ = build_histories([50.0, 20.0, float("nan"), 35.0, 10.0, 27.0], 3)
        batch = columnar.top_quantile_columns(0.5)
        assert batch.to_configurations() == columnar.top_quantile(0.5)

    def test_incomplete_rows_survive_round_trip(self):
        """Hand-built evaluations with missing/extra keys stay intact."""
        space = make_space()
        history = SearchHistory(space)
        odd = Evaluation(
            {"batch": 4, "pool": "fifo", "extra_key": 99},
            objective=1.0,
            runtime=2.0,
            submitted=0.0,
            completed=1.0,
        )
        history.append(odd)
        assert history[0].configuration == {"batch": 4, "pool": "fifo", "extra_key": 99}
        # The incomplete row is excluded from the columnar top-q batch.
        assert len(history.top_quantile_columns(1.0)) == 0

    def test_incumbent_at_matches_scalar_queries(self):
        columnar, reference = build_histories([40.0, float("nan"), 25.0, 31.0, 8.0], 9)
        grid = np.linspace(0.0, 7.0, 29)
        vec = columnar.incumbent_at(grid)
        scalar = np.asarray([reference.best_runtime_at(t) for t in grid])
        assert np.array_equal(vec, scalar)

    def test_failed_with_finite_runtime_excluded_from_trajectory(self):
        """runtime=0 records a failure with a finite runtime cell."""
        columnar, reference = build_histories([40.0, 0.0, 25.0], 11)
        assert math.isnan(columnar.objectives()[1])
        assert columnar.runtimes()[1] == 0.0
        trajectory = columnar.incumbent_trajectory()
        assert trajectory == reference.incumbent_trajectory()
        assert all(value > 0.0 for _, value in trajectory)
        # best_runtime_at keeps its historical runtime-finiteness semantics.
        assert columnar.best_runtime_at(100.0) == reference.best_runtime_at(100.0)

    def test_slice_indexing(self):
        columnar, reference = build_histories([30.0, 12.0, 45.0, 20.0], 5)
        assert columnar[1:3] == reference.evaluations[1:3]
        assert columnar[::-1] == reference.evaluations[::-1]
        assert columnar[:0] == []

    def test_transfer_learns_from_rows_missing_source_only_parameters(self):
        """Evaluations lacking a source-only parameter still feed Q_p."""
        from repro.core.transfer import fit_transfer_prior

        source_space = SearchSpace(
            [
                IntegerParameter("a", 1, 100),
                RealParameter("b", 0.0, 1.0),
                IntegerParameter("source_only", 1, 10),
            ]
        )
        target_space = SearchSpace(
            [IntegerParameter("a", 1, 100), RealParameter("b", 0.0, 1.0)]
        )
        history = SearchHistory(source_space)
        rng = np.random.default_rng(0)
        for i in range(20):
            config = {"a": int(rng.integers(1, 100)), "b": float(rng.random())}
            history.append(
                Evaluation(config, objective=float(i), runtime=float(20 - i),
                           submitted=float(i), completed=float(i + 1))
            )
        assert history.has_incomplete_rows
        prior = fit_transfer_prior(history, target_space, quantile=0.5, epochs=5)
        assert len(prior.top_configurations) == 10

    def test_extra_keys_do_not_disable_columnar_top_quantile(self):
        space = make_space()
        history = SearchHistory(space)
        rng = np.random.default_rng(0)
        for i in range(6):
            config = dict(space.sample(1, rng)[0], extra_key=i)
            history.record(config, 10.0 + i, float(i), float(i + 1))
        assert not history._incomplete_rows
        batch = history.top_quantile_columns(0.5)
        assert len(batch) == len(history.top_quantile(0.5))


class TestTopKColumnsAndCopy:
    @given(runtime_lists, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_top_k_matches_sorted_reference(self, runtimes, seed):
        columnar, _ = build_histories(runtimes, seed)
        k = max(1, len(runtimes) // 3)
        batch = columnar.top_k_columns(k)
        # Reference: best-objective-first over the successful evaluations,
        # ties broken by insertion order.
        successes = [
            (ev.objective, i, ev)
            for i, ev in enumerate(columnar)
            if math.isfinite(ev.objective)
        ]
        successes.sort(key=lambda item: (-item[0], item[1]))
        expected = [ev.configuration for _, _, ev in successes[:k]]
        assert len(batch) == len(expected)
        assert batch.to_configurations() == expected

    def test_top_k_validation_and_empty(self):
        space = make_space()
        history = SearchHistory(space)
        with pytest.raises(ValueError):
            history.top_k_columns(0)
        assert len(history.top_k_columns(3)) == 0

    def test_copy_is_independent(self):
        columnar, _ = build_histories([10.0, 20.0, float("nan"), 5.0], seed=3)
        clone = columnar.copy()
        assert clone.to_csv() == columnar.to_csv()
        config = dict(columnar[0].configuration)
        clone.record(config, 7.0, 10.0, 11.0)
        assert len(clone) == len(columnar) + 1
        assert columnar.to_csv() != clone.to_csv()
        # The original keeps appending on its own buffers too.
        columnar.record(config, 8.0, 12.0, 13.0)
        assert len(columnar) == len(clone)
        assert columnar[len(columnar) - 1].runtime != clone[len(clone) - 1].runtime


class TestTypedCsvParsing:
    def test_integer_parameter_scientific_notation(self):
        param = IntegerParameter("batch", 1, 2048, log=True)
        assert _parse_typed("1e3", param) == 1000
        assert isinstance(_parse_typed("1e3", param), int)
        assert _parse_typed("42", param) == 42

    def test_real_parameter_stays_float(self):
        param = RealParameter("rate", 0.5, 100.0)
        value = _parse_typed("2", param)
        assert value == 2.0 and isinstance(value, float)

    def test_string_category_true_is_not_a_bool(self):
        param = CategoricalParameter("mode", ("True", "False", "auto"))
        value = _parse_typed("True", param)
        assert value == "True" and isinstance(value, str)

    def test_boolean_category_parses_to_bool(self):
        param = CategoricalParameter.boolean("busy")
        assert _parse_typed("True", param) is True
        assert _parse_typed("False", param) is False

    def test_ordinal_int_values(self):
        param = OrdinalParameter("pes", (1, 2, 4, 8, 16, 32))
        value = _parse_typed("16", param)
        assert value == 16 and isinstance(value, int)

    def test_string_valued_parameter_round_trips_through_csv(self):
        space = SearchSpace(
            [
                CategoricalParameter("mode", ("True", "1e3", "plain")),
                IntegerParameter("n", 1, 10000),
            ]
        )
        history = SearchHistory(space)
        history.record({"mode": "True", "n": 1000}, 5.0, 0.0, 1.0)
        history.record({"mode": "1e3", "n": 7}, 6.0, 1.0, 2.0)
        loaded = SearchHistory.from_csv(history.to_csv(), space)
        assert loaded[0].configuration == {"mode": "True", "n": 1000}
        assert isinstance(loaded[0].configuration["mode"], str)
        assert loaded[1].configuration == {"mode": "1e3", "n": 7}
        assert isinstance(loaded[1].configuration["mode"], str)


class TestIncrementalGP:
    def _data(self, n, d=5, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.random((n, d))
        y = np.sin(2.0 * X.sum(axis=1)) + 0.1 * rng.standard_normal(n)
        return X, y

    def test_rank_one_posterior_matches_frozen_full_refit(self):
        """Acceptance bar: rank-1 updates match a full refit to ≤ 1e-8."""
        X, y = self._data(140)
        gp = GaussianProcessSurrogate(noise=1e-3, refresh_growth=100.0)
        gp.fit(X[:90], y[:90])
        for i in range(90, 140, 5):
            gp.partial_fit(X[i : i + 5], y[i : i + 5])
        assert gp.num_partial_fits == 10

        reference = copy.deepcopy(gp)
        reference.refit_with_current_hyperparameters(X, y)
        X_test = self._data(64, seed=99)[0]
        mean_inc, std_inc = gp.predict(X_test)
        mean_ref, std_ref = reference.predict(X_test)
        assert np.max(np.abs(mean_inc - mean_ref)) <= 1e-8
        assert np.max(np.abs(std_inc - std_ref)) <= 1e-8

    def test_refresh_schedule_triggers_full_fit(self):
        X, y = self._data(60)
        gp = GaussianProcessSurrogate(refresh_growth=1.25)
        gp.fit(X[:32], y[:32])
        assert gp.num_full_fits == 1
        for i in range(32, 60, 2):
            gp.partial_fit(X[i : i + 2], y[i : i + 2])
        # 32 → refresh due at 40 and again at ≥ 50.
        assert gp.num_full_fits >= 3
        assert gp.num_partial_fits > 0
        # The model stays a sane GP after mixed updates.
        mean, std = gp.predict(X[:4])
        assert np.all(np.isfinite(mean)) and np.all(std > 0)

    def test_non_incremental_flag_always_full_fits(self):
        X, y = self._data(40)
        gp = GaussianProcessSurrogate(incremental=False)
        assert not gp.supports_partial_fit
        gp.fit(X[:30], y[:30])
        gp.partial_fit(X[30:], y[30:])
        assert gp.num_partial_fits == 0
        assert gp.num_full_fits == 2

    def test_partial_fit_before_fit_falls_back_to_fit(self):
        X, y = self._data(20)
        gp = GaussianProcessSurrogate()
        gp.partial_fit(X, y)
        assert gp.fitted and gp.num_full_fits == 1

    def test_optimizer_tell_routes_through_partial_fit(self):
        space = make_space()
        gp = GaussianProcessSurrogate(refresh_growth=100.0)
        opt = BayesianOptimizer(space, surrogate=gp, n_initial_points=8, seed=4)
        rng = np.random.default_rng(1)
        for _ in range(5):
            configs = space.sample(4, rng)
            opt.tell(configs, [float(c["pes"]) for c in configs])
        assert gp.num_full_fits == 1  # the initial fit only
        assert gp.num_partial_fits == 3  # every later tell extends the factor
        assert opt._n_fitted_rows == opt.num_observations
