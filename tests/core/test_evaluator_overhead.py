"""Tests for the virtual-clock evaluator and the overhead models."""

import math

import numpy as np
import pytest

from repro.core.evaluator import AsyncVirtualEvaluator
from repro.core.optimizer import BayesianOptimizer
from repro.core.overhead import (
    AnalyticOverheadModel,
    MeasuredOverheadModel,
    make_overhead_model,
)
from repro.core.space import IntegerParameter, RealParameter, SearchSpace


def simple_space():
    return SearchSpace([RealParameter("x", 0.0, 1.0), IntegerParameter("k", 1, 10)])


def runtime_of(config):
    """Deterministic run time: 10 s scaled by x, failures for k == 1."""
    if config["k"] == 1:
        return float("nan")
    return 10.0 * (0.5 + config["x"])


class TestAsyncVirtualEvaluator:
    def test_submit_bounded_by_idle_workers(self):
        ev = AsyncVirtualEvaluator(runtime_of, num_workers=3)
        configs = [{"x": 0.1, "k": 2}] * 5
        assert ev.submit(configs) == 3
        assert ev.num_pending == 3
        assert ev.num_idle == 0

    def test_results_arrive_in_runtime_order(self):
        ev = AsyncVirtualEvaluator(runtime_of, num_workers=3)
        ev.submit([{"x": 0.9, "k": 2}, {"x": 0.1, "k": 2}, {"x": 0.5, "k": 2}])
        now, completed = ev.wait_any(max_time=1000.0)
        assert len(completed) == 1
        assert completed[0].configuration["x"] == pytest.approx(0.1)
        assert now == pytest.approx(10.0 * 0.6)

    def test_collect_returns_all_completed_up_to_now(self):
        ev = AsyncVirtualEvaluator(runtime_of, num_workers=3)
        ev.submit([{"x": 0.1, "k": 2}, {"x": 0.2, "k": 2}, {"x": 0.9, "k": 2}])
        ev.advance_to(8.0)
        done = ev.collect()
        assert len(done) == 2
        assert ev.num_pending == 1

    def test_failed_evaluations_occupy_failure_duration(self):
        ev = AsyncVirtualEvaluator(runtime_of, num_workers=1, failure_duration=600.0)
        ev.submit([{"x": 0.5, "k": 1}])
        now, completed = ev.wait_any(max_time=1e9)
        assert now == pytest.approx(600.0)
        assert math.isnan(completed[0].runtime)

    def test_custom_duration_function(self):
        ev = AsyncVirtualEvaluator(
            runtime_of,
            num_workers=1,
            duration_function=lambda config, runtime: 42.0,
        )
        ev.submit([{"x": 0.5, "k": 2}])
        now, completed = ev.wait_any(max_time=1e9)
        assert now == pytest.approx(42.0)
        assert completed[0].runtime == pytest.approx(10.0)

    def test_wait_any_respects_max_time(self):
        ev = AsyncVirtualEvaluator(runtime_of, num_workers=1)
        ev.submit([{"x": 0.9, "k": 2}])  # completes at 14
        now, completed = ev.wait_any(max_time=5.0)
        assert now == pytest.approx(5.0)
        assert completed == []

    def test_worker_reuse_after_completion(self):
        ev = AsyncVirtualEvaluator(runtime_of, num_workers=1)
        ev.submit([{"x": 0.1, "k": 2}])
        ev.wait_any(max_time=100.0)
        assert ev.num_idle == 1
        assert ev.submit([{"x": 0.2, "k": 2}]) == 1

    def test_time_cannot_move_backwards(self):
        ev = AsyncVirtualEvaluator(runtime_of, num_workers=1)
        ev.advance_to(10.0)
        with pytest.raises(ValueError):
            ev.advance_to(5.0)

    def test_utilization_full_when_always_busy(self):
        ev = AsyncVirtualEvaluator(lambda c: 10.0, num_workers=2)
        horizon = 100.0
        t = 0.0
        ev.submit([{"x": 0}, {"x": 1}])
        while True:
            now, done = ev.wait_any(max_time=horizon)
            if not done:
                break
            ev.submit([{"x": 0}] * len(done))
        assert ev.utilization(horizon) == pytest.approx(1.0, abs=1e-6)

    def test_utilization_half_when_half_idle(self):
        ev = AsyncVirtualEvaluator(lambda c: 50.0, num_workers=1)
        ev.submit([{"x": 0}])
        ev.wait_any(max_time=100.0)
        # worker busy 50 s of a 100 s horizon, then left idle
        assert ev.utilization(100.0) == pytest.approx(0.5)

    def test_utilization_clips_overrunning_evaluations(self):
        ev = AsyncVirtualEvaluator(lambda c: 1000.0, num_workers=1)
        ev.submit([{"x": 0}])
        assert ev.utilization(100.0) == pytest.approx(1.0)

    def test_invalid_constructor_arguments(self):
        with pytest.raises(ValueError):
            AsyncVirtualEvaluator(runtime_of, num_workers=0)
        with pytest.raises(ValueError):
            AsyncVirtualEvaluator(runtime_of, num_workers=1, failure_duration=0.0)


class TestOverheadModels:
    def _optimizer(self, surrogate, n_points):
        space = simple_space()
        opt = BayesianOptimizer(space, surrogate=surrogate, n_initial_points=2, seed=0)
        rng = np.random.default_rng(0)
        configs = space.sample(n_points, rng)
        opt.tell(configs, [float(i) for i in range(n_points)])
        return opt

    def test_gp_overhead_grows_cubically(self):
        model = AnalyticOverheadModel()
        small = model.tell_cost(self._optimizer("GP", 50), 1)
        large = model.tell_cost(self._optimizer("GP", 200), 1)
        assert large > 20 * small

    def test_rf_overhead_much_cheaper_than_gp_at_scale(self):
        model = AnalyticOverheadModel()
        rf = model.tell_cost(self._optimizer("RF", 200), 1)
        gp = model.tell_cost(self._optimizer("GP", 200), 1)
        assert gp > 5 * rf

    def test_random_sampling_is_nearly_free(self):
        model = AnalyticOverheadModel()
        space = simple_space()
        opt = BayesianOptimizer(space, random_sampling=True, seed=0)
        assert model.tell_cost(opt, 1) < 0.1
        assert model.ask_cost(opt, 8) < 0.1

    def test_gp_utilisation_collapse_scale(self):
        # At ~600 observations a GP update should take minutes (Fig. 4f).
        model = AnalyticOverheadModel()
        cost = model.tell_cost(self._optimizer("GP", 600), 1)
        assert 60.0 < cost < 1200.0

    def test_measured_model_uses_recorded_durations(self):
        opt = self._optimizer("RF", 30)
        model = MeasuredOverheadModel(scale=2.0)
        assert model.tell_cost(opt, 1) == pytest.approx(2.0 * opt.last_tell_duration)
        opt.ask(2)
        assert model.ask_cost(opt, 2) == pytest.approx(2.0 * opt.last_ask_duration)

    def test_factory(self):
        assert isinstance(make_overhead_model("analytic"), AnalyticOverheadModel)
        assert isinstance(make_overhead_model("measured"), MeasuredOverheadModel)
        model = AnalyticOverheadModel()
        assert make_overhead_model(model) is model
        with pytest.raises(ValueError):
            make_overhead_model("exact")
