"""Crash-safe journal + resume: the fault-tolerance acceptance properties.

The contract under test (ISSUE 6 tentpole): a journaled campaign killed at an
*arbitrary* tick and resumed from its sidecar directory finishes bit-identical
to the same campaign run uninterrupted — across surrogate kinds (from-scratch
RF replay vs. partial-fit GP replay), prior-refresh retuning, the queue-based
service evaluator, and active fault injection.  Journaling itself must not
perturb the fault-free path: a journaled run matches an unjournaled baseline
bit for bit.
"""

import math

import pytest

from fixtures import (
    assert_results_identical as assert_identical,
    make_gp_search,
    make_service_search as make_search,
    make_service_space as make_space,
    service_run_function as run_function,
)
from repro.core.journal import CampaignJournal, JournalError
from repro.core.search import CBOSearch
from repro.core.surrogate import RandomForestSurrogate
from repro.service import ServiceEvaluator
from repro.sim import FaultPlan

BUDGET = dict(max_time=600.0, max_evaluations=30)


def finish(execution):
    while execution.advance():
        pass
    return execution.result()


def crash_after(search, ticks, journal_dir, **kwargs):
    """Start a journaled campaign and abandon it after ``ticks`` advances.

    Abandoning the execution object mid-run is exactly what a process crash
    leaves behind: journal data files plus the last committed checkpoint.
    """
    execution = search.start(journal_dir=journal_dir, **kwargs)
    for _ in range(ticks):
        if not execution.advance():
            break
    return execution


def make_refresh_search(seed, space, **kwargs):
    params = dict(
        num_workers=6,
        surrogate=RandomForestSurrogate(n_estimators=6, seed=seed),
        num_candidates=48,
        n_initial_points=5,
        prior_refresh_interval=8,
        prior_refresh_top_k=8,
        prior_refresh_epochs=12,
        seed=seed,
    )
    params.update(kwargs)
    return CBOSearch(space, run_function, **params)


class TestJournalOverheadFreePath:
    def test_journaled_run_matches_unjournaled(self, tmp_path):
        baseline = make_search(0).run(**BUDGET)
        journaled = make_search(0).run(journal_dir=tmp_path / "j", **BUDGET)
        assert_identical(baseline, journaled)
        assert (tmp_path / "j" / "meta.json").exists()
        checkpoint = CampaignJournal.read_checkpoint(tmp_path / "j")
        assert checkpoint is not None
        assert checkpoint["finished"] is True
        assert checkpoint["num_rows"] == len(journaled.history)

    def test_sparse_checkpoint_interval_matches(self, tmp_path):
        baseline = make_search(0).run(**BUDGET)
        execution = make_search(0).start(
            journal_dir=tmp_path / "j", checkpoint_interval=3, **BUDGET
        )
        assert_identical(baseline, finish(execution))
        # The final tick force-commits even off-cadence.
        assert CampaignJournal.read_checkpoint(tmp_path / "j")["finished"] is True


class TestResumeBitIdentity:
    @pytest.mark.parametrize("kill_tick", [1, 3, 7, 12])
    def test_rf_resume_is_bit_identical(self, tmp_path, kill_tick):
        baseline = make_search(0).run(**BUDGET)
        crash_after(make_search(0), kill_tick, tmp_path / "j", **BUDGET)
        resumed = make_search(0).resume(tmp_path / "j")
        assert_identical(baseline, finish(resumed))

    @pytest.mark.parametrize("kill_tick", [2, 6, 11])
    def test_gp_partial_fit_resume_is_bit_identical(self, tmp_path, kill_tick):
        budget = dict(max_time=600.0, max_evaluations=24)
        baseline = make_gp_search(0).run(**budget)
        crash_after(make_gp_search(0), kill_tick, tmp_path / "j", **budget)
        resumed = make_gp_search(0).resume(tmp_path / "j")
        assert_identical(baseline, finish(resumed))

    @pytest.mark.parametrize("kill_tick", [5, 15, 25])
    def test_prior_refresh_resume_is_bit_identical(self, tmp_path, kill_tick):
        """Kills land before the first refresh, between refreshes, and after
        the second — each replays a different number of VAE retunings."""
        space = make_space()
        budget = dict(max_time=700.0, max_evaluations=32)
        baseline = make_refresh_search(0, space).run(**budget)
        crash_after(make_refresh_search(0, space), kill_tick, tmp_path / "j", **budget)
        resumed = make_refresh_search(0, space).resume(tmp_path / "j")
        result = finish(resumed)
        assert_identical(baseline, result)
        assert resumed.num_prior_refreshes > 0

    @pytest.mark.parametrize("kill_tick", [2, 8])
    def test_service_evaluator_resume_is_bit_identical(self, tmp_path, kill_tick):
        def factory(run, num_workers, failure_duration):
            return ServiceEvaluator(
                run, num_workers=num_workers, failure_duration=failure_duration
            )

        baseline = make_search(0, evaluator_factory=factory).run(**BUDGET)
        crash_after(
            make_search(0, evaluator_factory=factory),
            kill_tick,
            tmp_path / "j",
            **BUDGET,
        )
        resumed = make_search(0, evaluator_factory=factory).resume(tmp_path / "j")
        assert_identical(baseline, finish(resumed))

    @pytest.mark.parametrize("kill_tick", [3, 9])
    def test_resume_under_fault_injection_is_bit_identical(self, tmp_path, kill_tick):
        """The fault schedule is keyed by (plan seed, submission seq), and the
        journal persists the sequence cursor — a resumed campaign meets
        exactly the faults the uninterrupted run would have met."""
        plan = FaultPlan(
            seed=42,
            failure_rate=0.1,
            crash_rate=0.03,
            hang_rate=0.05,
            loss_rate=0.15,
            straggler_rate=0.1,
            straggler_factor=4.0,
        )

        def factory(run, num_workers, failure_duration):
            return ServiceEvaluator(
                run,
                num_workers=num_workers,
                failure_duration=failure_duration,
                fault_plan=plan,
                deadline=600.0,
            )

        budget = dict(max_time=900.0, max_evaluations=30)
        baseline = make_search(0, evaluator_factory=factory).run(**budget)
        crash_after(
            make_search(0, evaluator_factory=factory),
            kill_tick,
            tmp_path / "j",
            **budget,
        )
        resumed = make_search(0, evaluator_factory=factory).resume(tmp_path / "j")
        assert_identical(baseline, finish(resumed))

    def test_crash_before_first_checkpoint_restarts_fresh(self, tmp_path):
        baseline = make_search(0).run(**BUDGET)
        # start() writes meta and the initial submit, but the first checkpoint
        # only lands at the end of the first advance() — crash before it.
        make_search(0).start(journal_dir=tmp_path / "j", **BUDGET)
        assert CampaignJournal.read_checkpoint(tmp_path / "j") is None
        resumed = make_search(0).resume(tmp_path / "j")
        assert_identical(baseline, finish(resumed))

    def test_torn_tail_is_rolled_back_on_attach(self, tmp_path):
        """Bytes written after the last committed checkpoint (a crash mid
        append) are truncated away on attach instead of corrupting state."""
        baseline = make_search(0).run(**BUDGET)
        crash_after(make_search(0), 5, tmp_path / "j", **BUDGET)
        for name in ("m_objective.bin", "intervals.bin"):
            with open(tmp_path / "j" / name, "ab") as handle:
                handle.write(b"\x7f" * 11)  # torn partial records
        resumed = make_search(0).resume(tmp_path / "j")
        assert_identical(baseline, finish(resumed))


class TestResumeValidation:
    def test_resume_rejects_mismatched_search(self, tmp_path):
        crash_after(make_search(0), 3, tmp_path / "j", **BUDGET)
        with pytest.raises(JournalError, match="seed"):
            make_search(1).resume(tmp_path / "j")

    def test_resume_rejects_mismatched_space(self, tmp_path):
        from repro.core.space import RealParameter, SearchSpace

        crash_after(make_search(0), 3, tmp_path / "j", **BUDGET)
        other = SearchSpace([RealParameter("rate", 0.1, 50.0, log=True)])
        with pytest.raises(JournalError):
            make_search(0, space=other).resume(tmp_path / "j")

    def test_resume_requires_fresh_search(self, tmp_path):
        crash_after(make_search(0), 3, tmp_path / "j", **BUDGET)
        dirty = make_search(0)
        dirty.run(max_time=300.0, max_evaluations=10)
        with pytest.raises(JournalError, match="freshly constructed"):
            dirty.resume(tmp_path / "j")

    def test_resume_requires_meta(self, tmp_path):
        (tmp_path / "j").mkdir()
        with pytest.raises(JournalError):
            make_search(0).resume(tmp_path / "j")


class TestJournalRecord:
    def test_checkpoint_counts_track_history(self, tmp_path):
        execution = crash_after(make_search(0), 4, tmp_path / "j", **BUDGET)
        checkpoint = CampaignJournal.read_checkpoint(tmp_path / "j")
        assert checkpoint["num_rows"] == len(execution.history)
        assert checkpoint["num_intervals"] == len(execution.intervals)
        assert checkpoint["finished"] is False
        meta = CampaignJournal.read_meta(tmp_path / "j")
        assert meta["seed"] == 0
        assert meta["surrogate"] == "RandomForestSurrogate"

    def test_read_data_rebuilds_exact_rows(self, tmp_path):
        execution = crash_after(make_search(0), 6, tmp_path / "j", **BUDGET)
        checkpoint = CampaignJournal.read_checkpoint(tmp_path / "j")
        history, intervals = CampaignJournal.read_data(
            tmp_path / "j", make_space(), checkpoint
        )
        assert len(history) == len(execution.history)
        for stored, live in zip(history, execution.history):
            assert stored.configuration == live.configuration
            assert stored.submitted == live.submitted
            assert stored.completed == live.completed
            assert (stored.objective == live.objective) or (
                math.isnan(stored.objective) and math.isnan(live.objective)
            )
        assert intervals == execution.intervals
