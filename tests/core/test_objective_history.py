"""Tests for the objective transform and the search history."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.history import Evaluation, SearchHistory
from repro.core.objective import Objective, runtime_objective
from repro.core.space import CategoricalParameter, IntegerParameter, SearchSpace


def space():
    return SearchSpace(
        [IntegerParameter("x", 1, 100, log=True), CategoricalParameter.boolean("flag")]
    )


class TestObjective:
    def test_log_objective_round_trip(self):
        obj = Objective()
        for runtime in (0.5, 1.0, 10.0, 600.0):
            assert obj.to_runtime(obj.from_runtime(runtime)) == pytest.approx(runtime)

    def test_better_runtime_gives_higher_objective(self):
        obj = Objective()
        assert obj.from_runtime(10.0) > obj.from_runtime(100.0)

    def test_nan_and_nonpositive_runtimes_map_to_nan(self):
        obj = Objective()
        assert math.isnan(obj.from_runtime(float("nan")))
        assert math.isnan(obj.from_runtime(0.0))
        assert math.isnan(obj.from_runtime(-3.0))

    def test_linear_objective(self):
        obj = Objective(use_log=False)
        assert obj.from_runtime(42.0) == -42.0
        assert obj.to_runtime(-42.0) == 42.0

    def test_fill_failure_and_is_failure(self):
        obj = Objective()
        assert obj.fill_failure(float("nan")) == obj.failure_value
        assert obj.fill_failure(1.5) == 1.5
        assert obj.is_failure(float("nan")) and not obj.is_failure(0.0)

    def test_runtime_objective_wrapper(self):
        evaluate = lambda config: 10.0 if config["x"] > 5 else float("nan")
        wrapped = runtime_objective(evaluate)
        assert wrapped({"x": 10}) == pytest.approx(-math.log(10.0))
        assert math.isnan(wrapped({"x": 1}))


class TestSearchHistory:
    def make_history(self):
        history = SearchHistory(space())
        runtimes = [50.0, float("nan"), 20.0, 35.0, 10.0]
        for i, rt in enumerate(runtimes):
            history.record(
                {"x": i + 1, "flag": bool(i % 2)},
                runtime=rt,
                submitted=float(i),
                completed=float(i + 1),
                worker=i % 2,
            )
        return history

    def test_lengths_and_failures(self):
        history = self.make_history()
        assert len(history) == 5
        assert history.num_failures() == 1
        assert len(history.successful()) == 4

    def test_best_is_minimum_runtime(self):
        history = self.make_history()
        assert history.best_runtime() == pytest.approx(10.0)
        assert history.best().configuration["x"] == 5

    def test_incumbent_trajectory_is_monotone_decreasing(self):
        trajectory = self.make_history().incumbent_trajectory()
        values = [v for _, v in trajectory]
        assert values == sorted(values, reverse=True)
        assert values[-1] == pytest.approx(10.0)

    def test_best_runtime_at_times(self):
        history = self.make_history()
        assert history.best_runtime_at(0.5) == float("inf")
        assert history.best_runtime_at(1.0) == pytest.approx(50.0)
        assert history.best_runtime_at(3.5) == pytest.approx(20.0)
        assert history.best_runtime_at(100.0) == pytest.approx(10.0)

    def test_top_quantile_returns_best_fraction(self):
        history = self.make_history()
        top = history.top_quantile(0.25)
        assert {c["x"] for c in top} == {5}
        top_half = history.top_quantile(0.5)
        assert {c["x"] for c in top_half} == {3, 5}

    def test_top_quantile_invalid_q(self):
        history = self.make_history()
        with pytest.raises(ValueError):
            history.top_quantile(0.0)
        with pytest.raises(ValueError):
            history.top_quantile(1.5)

    def test_top_quantile_on_empty_history(self):
        assert SearchHistory(space()).top_quantile(0.1) == []

    def test_evaluation_properties(self):
        ev = Evaluation({"x": 1}, objective=float("nan"), runtime=float("nan"),
                        submitted=1.0, completed=3.0)
        assert ev.failed
        assert ev.duration == pytest.approx(2.0)

    def test_csv_round_trip(self, tmp_path):
        history = self.make_history()
        path = tmp_path / "history.csv"
        history.to_csv(path)
        loaded = SearchHistory.from_csv(path, space())
        assert len(loaded) == len(history)
        for a, b in zip(history, loaded):
            assert a.configuration == b.configuration
            assert (math.isnan(a.runtime) and math.isnan(b.runtime)) or a.runtime == pytest.approx(b.runtime)
            assert a.completed == pytest.approx(b.completed)

    def test_csv_round_trip_from_text(self):
        history = self.make_history()
        text = history.to_csv()
        loaded = SearchHistory.from_csv(text, space())
        assert loaded.best_runtime() == pytest.approx(history.best_runtime())

    @given(st.lists(st.floats(min_value=0.1, max_value=600.0), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_property_best_is_minimum_of_recorded_runtimes(self, runtimes):
        history = SearchHistory(space())
        for i, rt in enumerate(runtimes):
            history.record({"x": 1 + i % 99, "flag": False}, rt, float(i), float(i + 1))
        assert history.best_runtime() == pytest.approx(min(runtimes))

    @given(
        st.lists(
            st.one_of(st.floats(min_value=0.1, max_value=600.0), st.just(float("nan"))),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_trajectory_monotone(self, runtimes):
        history = SearchHistory(space())
        for i, rt in enumerate(runtimes):
            history.record({"x": 1 + i % 99, "flag": False}, rt, float(i), float(i + 1))
        values = [v for _, v in history.incumbent_trajectory()]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestDerivedArrayCaches:
    def make_history(self):
        history = SearchHistory(space())
        for i, rt in enumerate((30.0, 12.0, float("nan"), 45.0)):
            history.record({"x": 1 + i, "flag": False}, rt, float(i), float(i + 1))
        return history

    def test_objectives_cached_until_append(self):
        history = self.make_history()
        first = history.objectives()
        assert history.objectives() is first  # same cached array
        history.record({"x": 50, "flag": True}, 20.0, 10.0, 11.0)
        second = history.objectives()
        assert second is not first
        assert second.shape == (5,)

    def test_runtimes_cached_and_invalidated(self):
        history = self.make_history()
        first = history.runtimes()
        assert history.runtimes() is first
        history.extend(
            [Evaluation({"x": 9, "flag": False}, -1.0, 2.0, 0.0, 1.0, eval_id=4)]
        )
        assert history.runtimes() is not first
        assert history.runtimes().shape == (5,)

    def test_cached_arrays_are_read_only(self):
        history = self.make_history()
        arr = history.objectives()
        with pytest.raises(ValueError):
            arr[0] = 0.0

    def test_cached_values_match_evaluations(self):
        history = self.make_history()
        expected = [ev.runtime for ev in history]
        got = history.runtimes()
        for a, b in zip(got, expected):
            assert (a == b) or (math.isnan(a) and math.isnan(b))

    def test_best_runtime_at_uses_completion_times(self):
        history = self.make_history()
        assert history.best_runtime_at(-1.0) == float("inf")
        assert history.best_runtime_at(1.5) == pytest.approx(30.0)
        assert history.best_runtime_at(10.0) == pytest.approx(12.0)
