"""Tests for the level-wise (breadth-first, joint-frontier) forest builder.

The level-wise builder must implement exactly the same split criterion as the
recursive reference (:class:`DecisionTreeRegressor`): variance-reduction
scores over random feature subsets, distinct-value/min-leaf validity, midpoint
thresholds and the degenerate-tie guard.  With randomness removed
(``bootstrap=False``, ``max_features=None``) both builders face identical
decisions, so their trees must predict identically; with randomness enabled
the forests differ tree-by-tree (different RNG draw order) but must be
statistically equivalent.
"""

import numpy as np
import pytest

from repro.core.surrogate.random_forest import (
    DecisionTreeRegressor,
    RandomForestSurrogate,
    _ArrayTree,
)


def make_data(n=200, d=6, seed=0, noise=0.05, quantized=False):
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    if quantized:
        # Heavy value ties exercise the distinct-value and tie-guard logic.
        X = np.round(X * 8) / 8
    w = rng.normal(size=d)
    y = X @ w + np.sin(3 * X[:, 0]) + noise * rng.normal(size=n)
    return X, y


class TestDeterministicEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("quantized", [False, True])
    def test_single_tree_matches_reference_without_randomness(self, seed, quantized):
        X, y = make_data(n=120, d=4, seed=seed, quantized=quantized)
        kwargs = dict(n_estimators=1, bootstrap=False, max_features=None, seed=0)
        fast = RandomForestSurrogate(fit_algorithm="levelwise", **kwargs).fit(X, y)
        ref = RandomForestSurrogate(fit_algorithm="recursive", **kwargs).fit(X, y)
        np.testing.assert_allclose(fast.predict(X)[0], ref.predict(X)[0])
        assert fast._trees[0].node_count == ref._trees[0].node_count

    def test_shallow_tree_matches_reference(self):
        X, y = make_data(n=80, d=3, seed=5)
        kwargs = dict(
            n_estimators=1, bootstrap=False, max_features=None, max_depth=3, seed=0
        )
        fast = RandomForestSurrogate(fit_algorithm="levelwise", **kwargs).fit(X, y)
        ref = RandomForestSurrogate(fit_algorithm="recursive", **kwargs).fit(X, y)
        np.testing.assert_allclose(fast.predict(X)[0], ref.predict(X)[0])


class TestStatisticalEquivalence:
    def test_forest_quality_matches_reference(self):
        X_all, y_all = make_data(n=600, d=8, seed=1)
        X, y = X_all[:400], y_all[:400]
        X_test, y_test = X_all[400:], y_all[400:]
        fast = RandomForestSurrogate(seed=0).fit(X, y)
        ref = RandomForestSurrogate(seed=0, fit_algorithm="recursive").fit(X, y)
        mse = lambda f: float(np.mean((f.predict(X_test)[0] - y_test) ** 2))
        base = float(np.mean((np.mean(y) - y_test) ** 2))
        assert mse(fast) < 0.5 * base
        # Within 50% of each other's test error: same model family, same
        # hyperparameters, different RNG draw order.
        assert mse(fast) < 1.5 * mse(ref)
        assert mse(ref) < 1.5 * mse(fast)

    def test_uncertainty_positive_and_larger_away_from_data(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-0.3, 0.3, size=(150, 2))
        y = X[:, 0] + X[:, 1]
        forest = RandomForestSurrogate(n_estimators=20, seed=0).fit(X, y)
        _, std_in = forest.predict(np.array([[0.0, 0.0]]))
        _, std_out = forest.predict(np.array([[3.0, -3.0]]))
        assert std_out[0] >= std_in[0] > 0


class TestLevelwiseEdgeCases:
    def test_single_sample(self):
        forest = RandomForestSurrogate(n_estimators=3, seed=0)
        forest.fit(np.array([[1.0, 2.0]]), np.array([5.0]))
        mean, _ = forest.predict(np.array([[1.0, 2.0]]))
        assert mean[0] == pytest.approx(5.0)
        assert all(t.node_count == 1 for t in forest._trees)

    def test_constant_targets_yield_single_leaf(self):
        X = np.random.default_rng(0).random((50, 3))
        forest = RandomForestSurrogate(n_estimators=4, seed=0).fit(X, np.full(50, 2.5))
        assert all(t.node_count == 1 for t in forest._trees)
        mean, _ = forest.predict(X[:7])
        assert np.allclose(mean, 2.5)

    def test_constant_features_yield_single_leaf(self):
        X = np.ones((30, 2))
        y = np.random.default_rng(0).normal(size=30)
        forest = RandomForestSurrogate(n_estimators=2, seed=0, bootstrap=False).fit(X, y)
        # No feature can produce a valid (distinct-value) split.
        assert all(t.node_count == 1 for t in forest._trees)
        mean, _ = forest.predict(X[:1])
        assert mean[0] == pytest.approx(float(np.mean(y)))

    def test_max_depth_respected(self):
        X, y = make_data(n=300, d=4, seed=3, noise=0.0)
        forest = RandomForestSurrogate(
            n_estimators=2, max_depth=2, bootstrap=False, max_features=None, seed=0
        ).fit(X, y)
        # Depth-2 binary tree has at most 7 nodes.
        assert all(t.node_count <= 7 for t in forest._trees)

    def test_deterministic_given_seed(self):
        X, y = make_data(n=150, d=5, seed=4)
        f1 = RandomForestSurrogate(n_estimators=5, seed=42).fit(X, y)
        f2 = RandomForestSurrogate(n_estimators=5, seed=42).fit(X, y)
        assert np.array_equal(f1.predict(X)[0], f2.predict(X)[0])

    def test_trees_are_array_backed(self):
        X, y = make_data(n=60, d=3, seed=6)
        forest = RandomForestSurrogate(n_estimators=2, seed=0).fit(X, y)
        for tree in forest._trees:
            assert isinstance(tree, _ArrayTree)
            internal = tree.feature >= 0
            # Children of internal nodes are in range and self-consistent.
            assert np.all(tree.left[internal] > 0)
            assert np.all(tree.right[internal] > 0)
            assert np.all(tree.left[internal] < tree.node_count)
            assert np.all(tree.right[internal] < tree.node_count)
            assert np.all(np.isfinite(tree.threshold[internal]))

    def test_refit_reuses_instance(self):
        X, y = make_data(n=100, d=4, seed=7)
        forest = RandomForestSurrogate(n_estimators=3, seed=0)
        forest.fit(X, y)
        first = forest.predict(X[:5])[0]
        forest.fit(X, y + 1.0)
        second = forest.predict(X[:5])[0]
        assert np.allclose(second - first, 1.0, atol=0.5)

    def test_invalid_fit_algorithm_rejected(self):
        with pytest.raises(ValueError):
            RandomForestSurrogate(fit_algorithm="iterative")


class TestSpeedAssumption:
    def test_levelwise_not_slower_than_recursive_at_scale(self):
        """The whole point: level-wise refits must beat the recursive builder."""
        import time

        X, y = make_data(n=600, d=12, seed=8)
        t0 = time.perf_counter()
        RandomForestSurrogate(seed=0).fit(X, y)
        fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        RandomForestSurrogate(seed=0, fit_algorithm="recursive").fit(X, y)
        slow = time.perf_counter() - t0
        # Conservative bound (CI machines are noisy); locally the ratio is ~5-7x.
        assert fast < slow
