"""GPFleet identity and error-path tests.

The GP counterpart of ``test_random_forest_fleet``: every batched fleet
operation — stacked full refits, concatenated factor extensions, fused
posterior prediction — must leave each member **bitwise identical** to the
solo :class:`~repro.core.surrogate.gaussian_process.GaussianProcessSurrogate`
method, and a rejected batch (bad shapes, NaNs, refresh-due members) must not
corrupt any member's cached Cholesky factor.
"""

import numpy as np
import pytest

from repro.core.surrogate import GaussianProcessSurrogate, GPFleet, gp_fleet_key

D = 5


def make_data(key, n, d=D):
    rng = np.random.default_rng(10_000 + key)
    X = rng.random((n, d))
    y = np.sin(X @ rng.random(d)) + 0.1 * rng.random(n)
    return X, y


def make_pair(count, ns, fit=True):
    """Matched (solo, fleet) member lists fitted on identical data."""
    solo = [GaussianProcessSurrogate() for _ in range(count)]
    fleet = [GaussianProcessSurrogate() for _ in range(count)]
    sets = [make_data(k, n) for k, n in enumerate(ns)]
    if fit:
        for a, b, (X, y) in zip(solo, fleet, sets):
            a.fit(X, y)
            b.fit(X, y)
    return solo, fleet, sets


def assert_members_identical(solo, fleet, num_queries=17):
    Xq = np.random.default_rng(999).random((num_queries, D))
    for k, (a, b) in enumerate(zip(solo, fleet)):
        assert a._n == b._n, f"member {k}: training size"
        assert a._noise_used == b._noise_used, f"member {k}: noise"
        assert a._signal_var == b._signal_var, f"member {k}: signal"
        assert a.num_full_fits == b.num_full_fits, f"member {k}: full fits"
        assert a.num_partial_fits == b.num_partial_fits, f"member {k}: partial fits"
        assert np.array_equal(
            a._L_buf[: a._n, : a._n], b._L_buf[: b._n, : b._n]
        ), f"member {k}: factor"
        ma, sa = a.predict(Xq)
        mb, sb = b.predict(Xq)
        assert np.array_equal(ma, mb), f"member {k}: posterior mean"
        assert np.array_equal(sa, sb), f"member {k}: posterior std"


class TestFleetFullFit:
    def test_batched_full_fit_bitwise_identical(self):
        solo, fleet, sets = make_pair(5, [40] * 5, fit=False)
        for gp, (X, y) in zip(solo, sets):
            gp.fit(X, y)
        GPFleet(fleet).fit([X for X, _ in sets], [y for _, y in sets])
        assert_members_identical(solo, fleet)

    def test_heterogeneous_hyperparameter_flags(self):
        """Members may mix auto/fixed hyperparameters and normalisation."""
        variants = [
            dict(),
            dict(auto_hyperparameters=False),
            dict(normalize_y=False),
            dict(noise=1e-3, length_scale=0.5),
        ]
        solo = [GaussianProcessSurrogate(**kw) for kw in variants]
        fleet = [GaussianProcessSurrogate(**kw) for kw in variants]
        sets = [make_data(k, 32) for k in range(len(variants))]
        for gp, (X, y) in zip(solo, sets):
            gp.fit(X, y)
        GPFleet(fleet).fit([X for X, _ in sets], [y for _, y in sets])
        assert_members_identical(solo, fleet)

    def test_unequal_training_shapes_rejected_without_mutation(self):
        _, fleet, _ = make_pair(2, [30, 30])
        before = [gp._L_buf[: gp._n, : gp._n].copy() for gp in fleet]
        X1, y1 = make_data(7, 30)
        X2, y2 = make_data(8, 31)
        with pytest.raises(ValueError, match="equal-shape"):
            GPFleet(fleet).fit([X1, X2], [y1, y2])
        for gp, L in zip(fleet, before):
            assert np.array_equal(gp._L_buf[: gp._n, : gp._n], L)

    def test_single_member_fleet_is_the_solo_fit(self):
        solo, fleet, sets = make_pair(1, [24], fit=False)
        solo[0].fit(*sets[0])
        GPFleet(fleet).fit([sets[0][0]], [sets[0][1]])
        assert_members_identical(solo, fleet)


class TestFleetExtension:
    def test_ragged_extension_bitwise_identical(self):
        """History sizes differ per member — the norm for GP campaigns."""
        ns = [30, 45, 52, 30, 61]
        solo, fleet, _ = make_pair(5, ns)
        for round_idx in range(5):
            new = [make_data(100 + k + 10 * round_idx, 1) for k in range(5)]
            for gp, (X, y) in zip(solo, new):
                gp.partial_fit(X, y)
            GPFleet(fleet).partial_fit([X for X, _ in new], [y for _, y in new])
        assert_members_identical(solo, fleet)

    def test_multi_row_updates_bitwise_identical(self):
        solo, fleet, _ = make_pair(3, [40, 55, 47])
        new = [make_data(200 + k, 3) for k in range(3)]
        for gp, (X, y) in zip(solo, new):
            gp.partial_fit(X, y)
        GPFleet(fleet).partial_fit([X for X, _ in new], [y for _, y in new])
        assert_members_identical(solo, fleet)

    def test_refresh_due_member_rejected_without_mutation(self):
        _, fleet, _ = make_pair(2, [20, 20])
        state = [gp._L_buf[: gp._n, : gp._n].copy() for gp in fleet]
        # 20 rows at refresh_growth=1.25 refresh at ≥ 25: an 8-row update
        # crosses the boundary and must be refused by the extension.
        X1, y1 = make_data(31, 8)
        X2, y2 = make_data(32, 8)
        with pytest.raises(ValueError, match="refresh"):
            GPFleet(fleet).partial_fit([X1, X2], [y1, y2])
        for gp, L in zip(fleet, state):
            assert np.array_equal(gp._L_buf[: gp._n, : gp._n], L)
            assert gp.num_partial_fits == 0

    def test_unequal_update_shapes_rejected(self):
        _, fleet, _ = make_pair(2, [30, 30])
        with pytest.raises(ValueError, match="equal update shapes"):
            GPFleet(fleet).partial_fit(
                [make_data(1, 1)[0], make_data(2, 2)[0]],
                [make_data(1, 1)[1], make_data(2, 2)[1]],
            )

    def test_unfitted_member_rejected(self):
        fitted = GaussianProcessSurrogate()
        fitted.fit(*make_data(0, 20))
        with pytest.raises(RuntimeError, match="fitted"):
            GPFleet([fitted, GaussianProcessSurrogate()]).partial_fit(
                [make_data(1, 1)[0]] * 2, [make_data(1, 1)[1]] * 2
            )


class TestFleetPredict:
    def test_ragged_training_sizes_fused_prediction(self):
        ns = [25, 40, 33, 58]
        solo, fleet, _ = make_pair(4, ns)
        pools = [make_data(300 + k, 23)[0] for k in range(4)]
        fused = GPFleet(fleet).predict(pools)
        for gp, X, (mean, std) in zip(solo, pools, fused):
            m_ref, s_ref = gp.predict(X)
            assert np.array_equal(mean, m_ref)
            assert np.array_equal(std, s_ref)

    def test_unequal_candidate_counts_rejected(self):
        _, fleet, _ = make_pair(2, [30, 30])
        with pytest.raises(ValueError, match="candidate counts"):
            GPFleet(fleet).predict([make_data(1, 8)[0], make_data(2, 9)[0]])

    def test_feature_width_mismatch_rejected(self):
        _, fleet, _ = make_pair(2, [30, 30])
        with pytest.raises(ValueError, match="features"):
            GPFleet(fleet).predict([np.zeros((4, D + 1))] * 2)


class TestFleetConstruction:
    def test_duplicate_member_rejected(self):
        gp = GaussianProcessSurrogate()
        with pytest.raises(ValueError, match="once"):
            GPFleet([gp, gp])

    def test_non_gp_member_rejected(self):
        with pytest.raises(TypeError):
            GPFleet([GaussianProcessSurrogate(), object()])

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            GPFleet([])


class TestFleetKey:
    def test_modes(self):
        gp = GaussianProcessSurrogate()
        assert gp_fleet_key(gp, 20, 20, D)[0] == "full"  # unfitted
        gp.fit(*make_data(0, 20))
        assert gp_fleet_key(gp, 22, 2, D) == ("extend", D, 2)
        assert gp_fleet_key(gp, 40, 20, D) == (
            "full", D, 40, gp.hyperparameter_grid,
        )  # past refresh
        frozen = GaussianProcessSurrogate(incremental=False)
        frozen.fit(*make_data(1, 20))
        assert gp_fleet_key(frozen, 22, 2, D)[0] == "full"

    def test_extend_keys_ignore_history_size(self):
        """Ragged histories share one extension group."""
        a = GaussianProcessSurrogate()
        b = GaussianProcessSurrogate()
        a.fit(*make_data(0, 30))
        b.fit(*make_data(1, 47))
        assert gp_fleet_key(a, 31, 1, D) == gp_fleet_key(b, 48, 1, D)

    def test_factor_state_mismatch_gets_singleton_key(self):
        gp = GaussianProcessSurrogate()
        gp.fit(*make_data(0, 20))
        # Claiming 23 fitted rows (≠ the factor's 20) must not be groupable.
        assert gp_fleet_key(gp, 24, 1, D)[0] == "solo"
        # Same past the refresh boundary: the solo path would full-refit on
        # the member's own stored rows plus the update, not on all claimed
        # rows, so a desynced member is never "full"-groupable either.
        assert gp_fleet_key(gp, 30, 7, D)[0] == "solo"
        # A synced member past the boundary stays a groupable full refit.
        assert gp_fleet_key(gp, 30, 10, D) == ("full", D, 30, gp.hyperparameter_grid)


class TestHyperparameterGridGrouping:
    """Full-refit grouping must respect each member's length-scale grid.

    ``gp_fleet_key`` once keyed full refits on history size alone, so two
    same-size members with different ``hyperparameter_grid`` settings could
    be fused into one :meth:`GPFleet.fit` sweep — which walks exactly one
    grid and would silently refine a member over the wrong candidates.
    """

    CUSTOM_GRID = ((1e-5, 0.75), (1e-3, 1.5))

    def test_grid_disagreement_splits_full_keys(self):
        default = GaussianProcessSurrogate()
        custom = GaussianProcessSurrogate(hyperparameter_grid=self.CUSTOM_GRID)
        default.fit(*make_data(0, 20))
        custom.fit(*make_data(1, 20))
        # Same history size and width, but the keys must differ.
        assert gp_fleet_key(default, 40, 20, D) != gp_fleet_key(custom, 40, 20, D)
        # Members sharing the custom grid still group together.
        twin = GaussianProcessSurrogate(hyperparameter_grid=self.CUSTOM_GRID)
        twin.fit(*make_data(2, 20))
        assert gp_fleet_key(custom, 40, 20, D) == gp_fleet_key(twin, 40, 20, D)

    def test_fixed_hyperparameter_members_ignore_the_grid(self):
        """Members that never refine group regardless of their grid."""
        a = GaussianProcessSurrogate(auto_hyperparameters=False)
        b = GaussianProcessSurrogate(
            auto_hyperparameters=False, hyperparameter_grid=self.CUSTOM_GRID
        )
        a.fit(*make_data(0, 20))
        b.fit(*make_data(1, 20))
        assert gp_fleet_key(a, 40, 20, D) == gp_fleet_key(b, 40, 20, D)

    def test_fleet_fit_rejects_mixed_refine_grids(self):
        fleet = [
            GaussianProcessSurrogate(),
            GaussianProcessSurrogate(hyperparameter_grid=self.CUSTOM_GRID),
        ]
        sets = [make_data(k, 24) for k in range(2)]
        with pytest.raises(ValueError, match="hyperparameter grid"):
            GPFleet(fleet).fit([X for X, _ in sets], [y for _, y in sets])

    def test_custom_grid_fleet_fit_bitwise_identical(self):
        solo = [
            GaussianProcessSurrogate(hyperparameter_grid=self.CUSTOM_GRID)
            for _ in range(3)
        ]
        fleet = [
            GaussianProcessSurrogate(hyperparameter_grid=self.CUSTOM_GRID)
            for _ in range(3)
        ]
        sets = [make_data(k, 28) for k in range(3)]
        for gp, (X, y) in zip(solo, sets):
            gp.fit(X, y)
        GPFleet(fleet).fit([X for X, _ in sets], [y for _, y in sets])
        assert_members_identical(solo, fleet)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            GaussianProcessSurrogate(hyperparameter_grid=())


class TestPartialFitValidation:
    """A rejected update must never corrupt the cached Cholesky factor."""

    def snapshot(self, gp, Xq):
        return gp.predict(Xq), gp._n, gp._L_buf[: gp._n, : gp._n].copy()

    def assert_unchanged(self, gp, Xq, snap):
        (mean, std), n, L = snap
        assert gp._n == n
        assert np.array_equal(gp._L_buf[: gp._n, : gp._n], L)
        m2, s2 = gp.predict(Xq)
        assert np.array_equal(mean, m2)
        assert np.array_equal(std, s2)

    def test_nan_rows_raise_and_preserve_state(self):
        gp = GaussianProcessSurrogate()
        gp.fit(*make_data(0, 25))
        Xq = np.random.default_rng(1).random((6, D))
        snap = self.snapshot(gp, Xq)
        bad = make_data(1, 2)[0]
        bad[0, 1] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            gp.partial_fit(bad, [1.0, 2.0])
        with pytest.raises(ValueError, match="non-finite"):
            gp.partial_fit(make_data(2, 2)[0], [1.0, np.nan])
        self.assert_unchanged(gp, Xq, snap)
        # The factor still extends correctly after the rejected updates.
        X_new, y_new = make_data(3, 1)
        gp.partial_fit(X_new, y_new)
        assert gp.num_partial_fits == 1

    def test_width_mismatch_raises_and_preserves_state(self):
        gp = GaussianProcessSurrogate()
        gp.fit(*make_data(0, 25))
        Xq = np.random.default_rng(2).random((6, D))
        snap = self.snapshot(gp, Xq)
        with pytest.raises(ValueError, match="features"):
            gp.partial_fit(np.zeros((2, D + 3)), [1.0, 2.0])
        self.assert_unchanged(gp, Xq, snap)

    def test_length_mismatch_raises(self):
        gp = GaussianProcessSurrogate()
        gp.fit(*make_data(0, 25))
        with pytest.raises(ValueError, match="inconsistent"):
            gp.partial_fit(make_data(1, 3)[0], [1.0, 2.0])

    def test_fleet_rejects_bad_member_without_touching_any(self):
        """Fleet validation completes before any member is mutated."""
        _, fleet, _ = make_pair(3, [30, 41, 35])
        Xq = np.random.default_rng(3).random((6, D))
        snaps = [self.snapshot(gp, Xq) for gp in fleet]
        updates = [make_data(400 + k, 1) for k in range(3)]
        bad_X = updates[2][0].copy()
        bad_X[0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            GPFleet(fleet).partial_fit(
                [updates[0][0], updates[1][0], bad_X],
                [updates[0][1], updates[1][1], updates[2][1]],
            )
        for gp, snap in zip(fleet, snaps):
            self.assert_unchanged(gp, Xq, snap)
            assert gp.num_partial_fits == 0
