"""Tests for the NumPy VAE stack: layers, Adam, tabular transform and the TVAE."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.space import (
    CategoricalParameter,
    ColumnBatch,
    IntegerParameter,
    OrdinalParameter,
    SearchSpace,
)
from repro.core.vae.layers import MLP, Dense, ReLU, Tanh
from repro.core.vae.optim import Adam
from repro.core.vae.transforms import TabularTransform
from repro.core.vae.tvae import TabularVAE


class TestLayers:
    def test_dense_forward_shape(self):
        layer = Dense(4, 3, rng=np.random.default_rng(0))
        out = layer.forward(np.ones((7, 4)))
        assert out.shape == (7, 3)

    def test_dense_gradients_match_finite_differences(self):
        rng = np.random.default_rng(0)
        layer = Dense(3, 2, rng=rng)
        x = rng.standard_normal((5, 3))
        target = rng.standard_normal((5, 2))

        def loss():
            out = layer.forward(x)
            return 0.5 * np.sum((out - target) ** 2)

        out = layer.forward(x)
        layer.zero_grad()
        layer.backward(out - target)
        analytic = layer.dW.copy()

        eps = 1e-6
        numeric = np.zeros_like(layer.W)
        for i in range(layer.W.shape[0]):
            for j in range(layer.W.shape[1]):
                layer.W[i, j] += eps
                up = loss()
                layer.W[i, j] -= 2 * eps
                down = loss()
                layer.W[i, j] += eps
                numeric[i, j] = (up - down) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_mlp_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(1)
        mlp = MLP.build(3, [8], 2, rng=rng, activation="tanh")
        x = rng.standard_normal((4, 3))
        target = rng.standard_normal((4, 2))

        def loss():
            return 0.5 * np.sum((mlp.forward(x) - target) ** 2)

        out = mlp.forward(x)
        mlp.zero_grad()
        mlp.backward(out - target)
        first_dense = mlp.layers[0]
        analytic = first_dense.dW.copy()

        eps = 1e-6
        numeric = np.zeros_like(first_dense.W)
        for i in range(min(3, first_dense.W.shape[0])):
            for j in range(min(4, first_dense.W.shape[1])):
                first_dense.W[i, j] += eps
                up = loss()
                first_dense.W[i, j] -= 2 * eps
                down = loss()
                first_dense.W[i, j] += eps
                numeric[i, j] = (up - down) / (2 * eps)
        assert np.allclose(analytic[:3, :4], numeric[:3, :4], atol=1e-4)

    def test_relu_and_tanh_backward(self):
        relu, tanh = ReLU(), Tanh()
        x = np.array([[-1.0, 2.0]])
        assert np.allclose(relu.forward(x), [[0.0, 2.0]])
        assert np.allclose(relu.backward(np.ones((1, 2))), [[0.0, 1.0]])
        out = tanh.forward(x)
        grad = tanh.backward(np.ones((1, 2)))
        assert np.allclose(grad, 1 - out**2)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Dense(2, 2).backward(np.ones((1, 2)))
        with pytest.raises(RuntimeError):
            ReLU().backward(np.ones((1, 2)))

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Dense(0, 3)


class TestAdam:
    def test_minimises_a_quadratic(self):
        w = np.array([5.0, -3.0])
        grad = np.zeros_like(w)
        opt = Adam([(w, grad)], lr=0.1)
        for _ in range(500):
            grad[...] = 2 * w  # d/dw of ||w||²
            opt.step()
        assert np.linalg.norm(w) < 1e-2
        assert opt.steps_taken == 500

    def test_invalid_hyperparameters(self):
        w = np.zeros(2)
        with pytest.raises(ValueError):
            Adam([(w, np.zeros(2))], lr=0.0)
        with pytest.raises(ValueError):
            Adam([(w, np.zeros(2))], beta1=1.5)


def mixed_space():
    return SearchSpace(
        [
            IntegerParameter("batch", 1, 1024, log=True),
            OrdinalParameter("pes", (1, 2, 4, 8)),
            CategoricalParameter("pool", ("fifo", "fifo_wait", "prio_wait")),
            CategoricalParameter.boolean("busy"),
        ]
    )


class TestTabularTransform:
    def test_dimension_counts_one_hot_blocks(self):
        transform = TabularTransform(mixed_space())
        # 1 (batch) + 1 (pes ordinal) + 3 (pool) + 2 (busy)
        assert transform.dimension == 7
        assert transform.numeric_columns == [0, 1]
        assert transform.categorical_blocks == [(2, 5), (5, 7)]

    def test_encode_decode_round_trip_recovers_categories(self):
        space = mixed_space()
        transform = TabularTransform(space)
        rng = np.random.default_rng(0)
        configs = space.sample(30, rng)
        X = transform.encode(configs)
        decoded = transform.decode(X, sample_categories=False)
        for original, recovered in zip(configs, decoded):
            assert recovered["pool"] == original["pool"]
            assert recovered["busy"] == original["busy"]
            assert recovered["pes"] == original["pes"]
            # numeric parameters round-trip within discretisation error
            assert abs(np.log(recovered["batch"]) - np.log(original["batch"])) < 0.02

    def test_encoded_rows_live_in_unit_interval(self):
        space = mixed_space()
        transform = TabularTransform(space)
        X = transform.encode(space.sample(50, np.random.default_rng(0)))
        assert np.all(X >= 0.0) and np.all(X <= 1.0)

    def test_decode_validates_column_count(self):
        transform = TabularTransform(mixed_space())
        with pytest.raises(ValueError):
            transform.decode(np.zeros((2, 3)))

    def test_decode_samples_categories_with_rng(self):
        space = mixed_space()
        transform = TabularTransform(space)
        row = np.zeros((1, transform.dimension))
        row[0, 0] = 0.5
        row[0, 1] = 0.5
        row[0, 2:5] = [0.5, 0.5, 0.0]
        row[0, 5:7] = [0.5, 0.5]
        rng = np.random.default_rng(0)
        decoded = [transform.decode(row, rng=rng)[0]["pool"] for _ in range(50)]
        assert set(decoded) <= {"fifo", "fifo_wait"}
        assert len(set(decoded)) == 2


#: Strategy drawing one full configuration of ``mixed_space()``.
mixed_configs = st.fixed_dictionaries(
    {
        "batch": st.integers(min_value=1, max_value=1024),
        "pes": st.sampled_from((1, 2, 4, 8)),
        "pool": st.sampled_from(("fifo", "fifo_wait", "prio_wait")),
        "busy": st.booleans(),
    }
)


class TestEncodeColumnsProperties:
    """encode_columns/decode_columns vs the row reference (Hypothesis)."""

    @given(st.lists(mixed_configs, min_size=1, max_size=40))
    def test_encode_columns_bit_identical_to_row_encode(self, configs):
        space = mixed_space()
        transform = TabularTransform(space)
        reference = transform.encode(configs)
        batch = ColumnBatch.from_configurations(space, configs)
        assert np.array_equal(transform.encode_columns(batch), reference)
        # A plain {name: column} mapping (e.g. straight from history columns)
        # rides the same codecs.
        columns = {name: [c[name] for c in configs] for name in space.parameter_names}
        assert np.array_equal(transform.encode_columns(columns), reference)

    @given(st.lists(mixed_configs, min_size=1, max_size=40))
    def test_column_round_trip_matches_row_round_trip(self, configs):
        space = mixed_space()
        transform = TabularTransform(space)
        X = transform.encode_columns(ColumnBatch.from_configurations(space, configs))
        columnar = transform.decode_columns(X, sample_categories=False).to_configurations()
        rows = transform.decode(X, sample_categories=False)
        assert columnar == rows
        for original, recovered in zip(configs, columnar):
            # Discrete parameters recover exactly; numerics within the
            # unit-grid discretisation error of the transform.
            assert recovered["pes"] == original["pes"]
            assert recovered["pool"] == original["pool"]
            assert recovered["busy"] == original["busy"]
            assert (
                abs(np.log(recovered["batch"]) - np.log(original["batch"])) < 0.02
            )

    def test_encode_columns_rejects_ragged_columns(self):
        transform = TabularTransform(mixed_space())
        columns = {"batch": [1, 2], "pes": [1], "pool": ["fifo", "fifo"], "busy": [True, False]}
        with pytest.raises(ValueError):
            transform.encode_columns(columns)


class TestTabularVAE:
    def make_clustered_configs(self, n=120):
        """Configurations clustered in a specific region of the space."""
        space = mixed_space()
        rng = np.random.default_rng(0)
        configs = []
        for _ in range(n):
            configs.append(
                {
                    "batch": int(np.clip(rng.normal(600, 60), 1, 1024)),
                    "pes": 8,
                    "pool": "fifo_wait",
                    "busy": True,
                }
            )
        return space, configs

    def test_training_reduces_the_loss(self):
        space, configs = self.make_clustered_configs()
        transform = TabularTransform(space)
        X = transform.encode(configs)
        vae = TabularVAE(
            input_dim=transform.dimension,
            numeric_columns=transform.numeric_columns,
            categorical_blocks=transform.categorical_blocks,
            latent_dim=3,
            hidden=(32, 32),
            seed=0,
        )
        trace = vae.fit(X, epochs=60, batch_size=32)
        assert trace.loss[-1] < trace.loss[0]
        assert vae.fitted

    def test_samples_concentrate_on_the_training_region(self):
        space, configs = self.make_clustered_configs()
        transform = TabularTransform(space)
        X = transform.encode(configs)
        vae = TabularVAE(
            input_dim=transform.dimension,
            numeric_columns=transform.numeric_columns,
            categorical_blocks=transform.categorical_blocks,
            latent_dim=3,
            hidden=(32, 32),
            seed=0,
        )
        vae.fit(X, epochs=150, batch_size=32)
        rng = np.random.default_rng(1)
        samples = transform.decode(vae.sample(200, rng), rng=rng)
        pool_match = np.mean([s["pool"] == "fifo_wait" for s in samples])
        busy_match = np.mean([s["busy"] is True or s["busy"] == True for s in samples])  # noqa: E712
        batch_values = np.array([s["batch"] for s in samples])
        assert pool_match > 0.8
        assert busy_match > 0.8
        # Training batches cluster around 600 (log-scale ~0.92 in unit space).
        assert 300 < np.median(batch_values) <= 1024

    def test_sample_rows_are_valid_probability_blocks(self):
        space, configs = self.make_clustered_configs(60)
        transform = TabularTransform(space)
        vae = TabularVAE(
            transform.dimension,
            transform.numeric_columns,
            transform.categorical_blocks,
            latent_dim=2,
            hidden=(16, 16),
            seed=0,
        )
        vae.fit(transform.encode(configs), epochs=20)
        rows = vae.sample(20)
        for start, stop in transform.categorical_blocks:
            assert np.allclose(rows[:, start:stop].sum(axis=1), 1.0, atol=1e-6)
        assert np.all(rows[:, transform.numeric_columns] >= 0.0)
        assert np.all(rows[:, transform.numeric_columns] <= 1.0)

    def test_reconstruction_of_training_rows(self):
        space, configs = self.make_clustered_configs(80)
        transform = TabularTransform(space)
        X = transform.encode(configs)
        vae = TabularVAE(
            transform.dimension,
            transform.numeric_columns,
            transform.categorical_blocks,
            latent_dim=3,
            hidden=(32, 32),
            seed=0,
        )
        vae.fit(X, epochs=120, batch_size=32)
        recon = vae.reconstruct(X[:10])
        # categorical blocks should reconstruct the dominant category
        pool_block = recon[:, 2:5]
        assert np.all(np.argmax(pool_block, axis=1) == 1)  # "fifo_wait"

    def test_errors_on_misuse(self):
        vae = TabularVAE(4, [0, 1], [(2, 4)], latent_dim=2, seed=0)
        with pytest.raises(RuntimeError):
            vae.sample(3)
        with pytest.raises(ValueError):
            vae.fit(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            vae.fit(np.zeros((5, 4)), epochs=0)
        with pytest.raises(ValueError):
            TabularVAE(0, [], [])
