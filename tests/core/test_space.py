"""Unit and property-based tests for the search-space module."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.space import (
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
    RealParameter,
    SearchSpace,
)


def example_space():
    return SearchSpace(
        [
            IntegerParameter("batch", 1, 2048, log=True),
            RealParameter("fraction", 0.0, 1.0),
            CategoricalParameter("pool", ("fifo", "fifo_wait", "prio_wait")),
            OrdinalParameter("pes", (1, 2, 4, 8, 16, 32)),
            CategoricalParameter.boolean("busy"),
        ],
        name="example",
    )


class TestParameters:
    def test_integer_bounds_and_membership(self):
        param = IntegerParameter("x", 0, 10)
        assert param.contains(0) and param.contains(10)
        assert not param.contains(11) and not param.contains(2.5)
        assert param.cardinality == 11

    def test_integer_requires_high_greater_than_low(self):
        with pytest.raises(ValueError):
            IntegerParameter("x", 5, 5)

    def test_log_integer_requires_positive_lower_bound(self):
        with pytest.raises(ValueError):
            IntegerParameter("x", 0, 10, log=True)

    def test_real_unit_round_trip(self):
        param = RealParameter("x", -5.0, 5.0)
        for value in (-5.0, 0.0, 2.5, 5.0):
            assert param.from_unit(param.to_unit(value)) == pytest.approx(value)

    def test_log_parameter_sampling_covers_orders_of_magnitude(self):
        param = IntegerParameter("x", 1, 2048, log=True)
        rng = np.random.default_rng(0)
        values = param.sample(rng, size=2000)
        # Log-uniform sampling puts roughly half the mass below sqrt(1*2048)≈45.
        below = np.mean(values <= 45)
        assert 0.35 < below < 0.65

    def test_categorical_index_and_unit_round_trip(self):
        param = CategoricalParameter("c", ("a", "b", "c"))
        for value in param.categories:
            assert param.from_unit(param.to_unit(value)) == value
        with pytest.raises(ValueError):
            param.index_of("z")

    def test_categorical_needs_two_categories(self):
        with pytest.raises(ValueError):
            CategoricalParameter("c", ("only",))

    def test_boolean_helper(self):
        param = CategoricalParameter.boolean("flag")
        assert set(param.categories) == {True, False}

    def test_ordinal_requires_sorted_unique_values(self):
        with pytest.raises(ValueError):
            OrdinalParameter("o", (2, 1))
        with pytest.raises(ValueError):
            OrdinalParameter("o", (1, 1, 2))

    def test_ordinal_round_trip(self):
        param = OrdinalParameter("o", (1, 2, 4, 8))
        for value in param.values:
            assert param.from_unit(param.to_unit(value)) == value


class TestSearchSpace:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace([IntegerParameter("x", 0, 1), RealParameter("x", 0, 1)])

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace([])

    def test_len_iteration_and_lookup(self):
        space = example_space()
        assert len(space) == 5
        assert "pool" in space
        assert space["pes"].name == "pes"
        assert [p.name for p in space] == list(space.parameter_names)

    def test_validate_reports_missing_extra_and_illegal(self):
        space = example_space()
        with pytest.raises(ValueError, match="missing"):
            space.validate({"batch": 1})
        config = {p.name: p.from_unit(0.5) for p in space}
        with pytest.raises(ValueError, match="unknown"):
            space.validate({**config, "extra": 1})
        with pytest.raises(ValueError, match="illegal"):
            space.validate({**config, "batch": 10_000})

    def test_sampled_configurations_are_valid(self):
        space = example_space()
        rng = np.random.default_rng(0)
        for config in space.sample(50, rng):
            space.validate(config)

    def test_sampling_zero_returns_empty(self):
        assert example_space().sample(0, np.random.default_rng(0)) == []

    def test_numeric_encoding_shape_and_log_scaling(self):
        space = example_space()
        rng = np.random.default_rng(0)
        configs = space.sample(10, rng)
        X = space.to_numeric_array(configs)
        assert X.shape == (10, 5)
        # log-scaled column for the log parameter
        batch_col = X[:, 0]
        assert np.all(batch_col <= np.log(2048) + 1e-9)

    def test_one_hot_dimension_and_rows_sum(self):
        space = example_space()
        rng = np.random.default_rng(0)
        configs = space.sample(5, rng)
        X = space.to_one_hot_array(configs)
        # 3 (pool) + 2 (busy) + 3 single columns
        assert X.shape == (5, space.one_hot_dimension()) == (5, 8)
        pool_block = X[:, 2:5]
        assert np.allclose(pool_block.sum(axis=1), 1.0)

    def test_unit_array_round_trip_preserves_validity(self):
        space = example_space()
        rng = np.random.default_rng(0)
        configs = space.sample(20, rng)
        decoded = space.from_unit_array(space.to_unit_array(configs))
        for config in decoded:
            space.validate(config)

    def test_clip_projects_out_of_range_values(self):
        space = example_space()
        config = {"batch": 100000, "fraction": 1.7, "pool": "fifo", "pes": 5, "busy": True}
        clipped = space.clip(config)
        space.validate(clipped)
        assert clipped["batch"] == 2048
        assert clipped["fraction"] == pytest.approx(1.0)
        assert clipped["pes"] in (4, 8)

    def test_subspace_and_union(self):
        space = example_space()
        sub = space.subspace(["batch", "busy"])
        assert sub.parameter_names == ("batch", "busy")
        other = SearchSpace([IntegerParameter("new", 0, 3)])
        merged = space.union(other)
        assert "new" in merged and len(merged) == 6

    def test_new_and_common_parameters(self):
        space = example_space()
        sub = space.subspace(["batch", "busy"])
        assert space.new_parameters(sub) == ["fraction", "pool", "pes"]
        assert sub.common_parameters(space) == ["batch", "busy"]

    def test_cardinality_infinite_with_real_parameter(self):
        assert example_space().cardinality == float("inf")


class TestPropertyBased:
    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_integer_from_unit_always_in_bounds(self, u):
        param = IntegerParameter("x", 3, 97, log=True)
        value = param.from_unit(u)
        assert 3 <= value <= 97

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_real_unit_round_trip_is_monotone(self, u):
        param = RealParameter("x", 1.0, 100.0, log=True)
        value = param.from_unit(u)
        assert 1.0 <= value <= 100.0
        assert param.to_unit(value) == pytest.approx(u, abs=1e-9)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_sampled_integer_round_trips_through_unit_space(self, seed):
        param = IntegerParameter("x", 1, 2048, log=True)
        rng = np.random.default_rng(seed)
        value = param.sample(rng)
        assert param.contains(value)
        round_tripped = param.from_unit(param.to_unit(value))
        assert abs(round_tripped - value) <= 1

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=40, deadline=None)
    def test_space_samples_always_validate(self, seed):
        space = example_space()
        rng = np.random.default_rng(seed)
        config = space.sample(1, rng)[0]
        space.validate(config)
