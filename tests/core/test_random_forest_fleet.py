"""Fleet fitting and fused prediction must be bit-identical per forest.

:func:`~repro.core.surrogate.random_forest.fit_forest_fleet` builds many
independent forests in one level-wise pass; every forest's node arrays must
equal — bit for bit — what ``forest.fit`` produces on its own, and the
forests' RNGs must end in the same state (so subsequent fits agree too).
:func:`~repro.core.surrogate.random_forest.predict_forest_fleet` must return
exactly the per-forest ``predict`` results.  The multi-campaign batch
runner's bit-identity guarantee rests on these two properties.
"""

import numpy as np
import pytest

from repro.core.surrogate.random_forest import (
    RandomForestSurrogate,
    fit_forest_fleet,
    predict_forest_fleet,
)

TREE_ARRAYS = ("feature", "threshold", "left", "right", "value")


def dataset(seed, n=140, d=6, quantized=False):
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    if quantized:
        # Heavy value ties exercise the distinct-value and tie-guard paths.
        X = np.round(X * 6) / 6
    y = X @ rng.normal(size=d) + 0.05 * rng.normal(size=n)
    return X, y


def assert_forests_equal(a, b):
    assert len(a._trees) == len(b._trees)
    for tree_a, tree_b in zip(a._trees, b._trees):
        for attr in TREE_ARRAYS:
            assert np.array_equal(getattr(tree_a, attr), getattr(tree_b, attr)), attr


class TestFleetFitBitIdentity:
    @pytest.mark.parametrize("num_jobs", [1, 2, 5, 8])
    def test_fleet_fit_equals_solo_fits(self, num_jobs):
        datasets = [dataset(s, n=90 + 23 * s, quantized=(s % 2 == 0)) for s in range(num_jobs)]
        solo = [
            RandomForestSurrogate(n_estimators=4 + (i % 3), seed=10 + i, max_depth=9).fit(X, y)
            for i, (X, y) in enumerate(datasets)
        ]
        fleet = [
            RandomForestSurrogate(n_estimators=4 + (i % 3), seed=10 + i, max_depth=9)
            for i in range(num_jobs)
        ]
        fit_forest_fleet([(m, X, y) for m, (X, y) in zip(fleet, datasets)])
        for a, b in zip(solo, fleet):
            assert b.fitted
            assert_forests_equal(a, b)

    def test_rng_state_advances_identically(self):
        """A refit after a fleet fit equals a refit after a solo fit."""
        X, y = dataset(0)
        X2, y2 = dataset(42, n=110)
        solo = RandomForestSurrogate(seed=3).fit(X, y)
        member = RandomForestSurrogate(seed=3)
        other = RandomForestSurrogate(seed=4)
        fit_forest_fleet([(member, X, y), (other, X, y)])
        solo.fit(X2, y2)
        member.fit(X2, y2)
        assert_forests_equal(solo, member)

    def test_fleet_predictions_equal_solo_predictions(self):
        datasets = [dataset(s) for s in range(4)]
        solo = [RandomForestSurrogate(seed=i).fit(X, y) for i, (X, y) in enumerate(datasets)]
        fleet = [RandomForestSurrogate(seed=i) for i in range(4)]
        fit_forest_fleet([(m, X, y) for m, (X, y) in zip(fleet, datasets)])
        rng = np.random.default_rng(9)
        for a, b in zip(solo, fleet):
            Xc = rng.random((64, 6))
            mean_a, std_a = a.predict(Xc)
            mean_b, std_b = b.predict(Xc)
            assert np.array_equal(mean_a, mean_b)
            assert np.array_equal(std_a, std_b)

    def test_incompatible_hyperparameters_rejected(self):
        X, y = dataset(0)
        a = RandomForestSurrogate(seed=0, max_depth=9)
        b = RandomForestSurrogate(seed=1, max_depth=12)
        with pytest.raises(ValueError, match="incompatible"):
            fit_forest_fleet([(a, X, y), (b, X, y)])

    def test_recursive_members_rejected(self):
        X, y = dataset(0)
        a = RandomForestSurrogate(seed=0, fit_algorithm="recursive")
        with pytest.raises(ValueError, match="levelwise"):
            fit_forest_fleet([(a, X, y)])

    def test_duplicate_member_rejected(self):
        X, y = dataset(0)
        a = RandomForestSurrogate(seed=0)
        with pytest.raises(ValueError, match="once"):
            fit_forest_fleet([(a, X, y), (a, X, y)])

    def test_empty_fleet_is_a_no_op(self):
        fit_forest_fleet([])


class TestFleetPredict:
    def test_fused_predict_equals_per_forest_predict(self):
        datasets = [dataset(s, n=70 + 11 * s) for s in range(5)]
        forests = [RandomForestSurrogate(seed=i).fit(X, y) for i, (X, y) in enumerate(datasets)]
        rng = np.random.default_rng(1)
        jobs = [(forest, rng.random((20 + 9 * i, 6))) for i, forest in enumerate(forests)]
        fused = predict_forest_fleet(jobs)
        for (mean_f, std_f), (forest, Xc) in zip(fused, jobs):
            mean, std = forest.predict(Xc)
            assert np.array_equal(mean_f, mean)
            assert np.array_equal(std_f, std)

    def test_single_row_jobs_match(self):
        """One-row scoring must agree between fused, solo and batched paths."""
        X, y = dataset(3)
        forest = RandomForestSurrogate(seed=0).fit(X, y)
        rows = np.random.default_rng(2).random((16, 6))
        batch_mean, batch_std = forest.predict(rows)
        for i in range(16):
            mean, std = forest.predict(rows[i : i + 1])
            assert mean[0] == batch_mean[i] and std[0] == batch_std[i]
            (fleet_result,) = predict_forest_fleet([(forest, rows[i : i + 1])])
            assert fleet_result[0][0] == batch_mean[i]

    def test_unfitted_forest_rejected(self):
        with pytest.raises(RuntimeError):
            predict_forest_fleet([(RandomForestSurrogate(), np.zeros((2, 3)))])

    def test_empty_jobs(self):
        assert predict_forest_fleet([]) == []
