"""Unit tests for the Mercury RPC/RDMA transfer model."""

import pytest

from repro.sim import Environment
from repro.mochi.mercury import NetworkInterface, NetworkModel, TransferKind


class TestNetworkModel:
    def test_default_constants_are_positive(self):
        model = NetworkModel()
        assert model.latency > 0
        assert model.bandwidth > 0
        assert model.rdma_bandwidth > 0

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(latency=-1e-6)

    def test_small_payload_is_eager(self):
        model = NetworkModel(eager_threshold=4096)
        assert model.transfer_kind(1024, use_rdma=True) is TransferKind.EAGER

    def test_large_payload_uses_rdma_when_allowed(self):
        model = NetworkModel(eager_threshold=4096)
        assert model.transfer_kind(1 << 20, use_rdma=True) is TransferKind.RDMA
        assert model.transfer_kind(1 << 20, use_rdma=False) is TransferKind.EAGER

    def test_transfer_time_increases_with_size(self):
        model = NetworkModel()
        assert model.transfer_time(10_000) < model.transfer_time(10_000_000)

    def test_rdma_faster_than_eager_for_large_payloads(self):
        model = NetworkModel(bandwidth=5e9, rdma_bandwidth=10e9)
        size = 50 * 1024 * 1024
        assert model.transfer_time(size, use_rdma=True) < model.transfer_time(
            size, use_rdma=False
        )

    def test_zero_size_transfer_costs_latency_only(self):
        model = NetworkModel()
        assert model.transfer_time(0) == pytest.approx(model.latency)

    def test_negative_size_rejected(self):
        model = NetworkModel()
        with pytest.raises(ValueError):
            model.transfer_time(-1)

    def test_round_trip_is_sum_of_both_directions(self):
        model = NetworkModel()
        rt = model.rpc_round_trip(1000, 2000)
        assert rt == pytest.approx(model.transfer_time(1000) + model.transfer_time(2000))


class TestNetworkInterface:
    def test_transfer_accumulates_statistics(self):
        env = Environment()
        nic = NetworkInterface(env, NetworkModel(), node_name="n0")

        def proc(env, nic):
            yield from nic.transfer(1_000_000)
            yield from nic.transfer(2_000_000)

        env.process(proc(env, nic))
        env.run()
        assert nic.transfers == 2
        assert nic.bytes_sent == 3_000_000

    def test_channel_contention_serialises_transfers(self):
        model = NetworkModel(bandwidth=1e9, rdma_bandwidth=1e9, latency=0.0, rdma_setup=0.0)
        size = 100_000_000  # 0.1 s per transfer at 1 GB/s

        def run_with_channels(channels, senders):
            env = Environment()
            nic = NetworkInterface(env, model, channels=channels)

            def sender(env, nic):
                yield from nic.transfer(size, use_rdma=False)

            for _ in range(senders):
                env.process(sender(env, nic))
            env.run()
            return env.now

        serial = run_with_channels(channels=1, senders=4)
        parallel = run_with_channels(channels=4, senders=4)
        assert serial == pytest.approx(4 * 0.1, rel=1e-6)
        assert parallel == pytest.approx(0.1, rel=1e-6)

    def test_invalid_channel_count(self):
        env = Environment()
        with pytest.raises(ValueError):
            NetworkInterface(env, NetworkModel(), channels=0)
