"""Unit tests for the Argobots pool model."""

import pytest

from repro.sim import Environment
from repro.mochi.argobots import Pool, PoolCostModel, PoolKind


class TestPoolKind:
    def test_all_paper_pool_types_exist(self):
        assert {k.value for k in PoolKind} == {"fifo", "fifo_wait", "prio_wait"}

    def test_cost_model_orders_overheads(self):
        costs = PoolCostModel()
        fifo = costs.per_item_overhead(PoolKind.FIFO, was_idle=True)
        fifo_wait = costs.per_item_overhead(PoolKind.FIFO_WAIT, was_idle=True)
        prio_wait = costs.per_item_overhead(PoolKind.PRIO_WAIT, was_idle=True)
        assert fifo < fifo_wait < prio_wait

    def test_wakeup_only_charged_when_idle(self):
        costs = PoolCostModel()
        idle = costs.per_item_overhead(PoolKind.FIFO_WAIT, was_idle=True)
        busy = costs.per_item_overhead(PoolKind.FIFO_WAIT, was_idle=False)
        assert idle > busy


class TestPool:
    def test_requires_at_least_one_xstream(self):
        env = Environment()
        with pytest.raises(ValueError):
            Pool(env, num_xstreams=0)

    def test_negative_work_time_rejected(self):
        env = Environment()
        pool = Pool(env)

        def proc(env, pool):
            yield from pool.execute(-1.0)

        env.process(proc(env, pool))
        with pytest.raises(ValueError):
            env.run()

    def test_concurrency_bounded_by_xstreams(self):
        env = Environment()
        pool = Pool(env, num_xstreams=2)

        def work(env, pool):
            yield from pool.execute(1.0)

        for _ in range(4):
            env.process(work(env, pool))
        env.run()
        # 4 items of 1 s on 2 streams ≈ 2 s (plus tiny scheduling overheads).
        assert env.now == pytest.approx(2.0, abs=1e-3)
        assert pool.items_executed == 4

    def test_fifo_pins_cores_waiting_pools_do_not(self):
        env = Environment()
        busy = Pool(env, kind=PoolKind.FIFO, num_xstreams=4)
        idle = Pool(env, kind=PoolKind.FIFO_WAIT, num_xstreams=4)
        assert busy.cpu_occupancy() == 4.0
        assert idle.cpu_occupancy() == 0.0

    def test_prio_wait_uses_priority_ordering(self):
        env = Environment()
        pool = Pool(env, kind=PoolKind.PRIO_WAIT, num_xstreams=1)
        order = []

        def blocker(env, pool):
            yield from pool.execute(1.0)

        def work(env, pool, name, prio, delay):
            yield env.timeout(delay)
            yield from pool.execute(0.1, priority=prio)
            order.append(name)

        env.process(blocker(env, pool))
        env.process(work(env, pool, "low", 5, 0.1))
        env.process(work(env, pool, "high", 0, 0.2))
        env.run()
        assert order == ["high", "low"]

    def test_utilization_tracks_busy_time(self):
        env = Environment()
        pool = Pool(env, num_xstreams=1)

        def work(env, pool):
            yield from pool.execute(2.0)

        env.process(work(env, pool))
        env.run(until=4.0)
        assert 0.45 < pool.utilization(horizon=4.0) < 0.55

    def test_run_executes_nested_generator_and_returns_value(self):
        env = Environment()
        pool = Pool(env, num_xstreams=1)
        results = []

        def nested(env):
            yield env.timeout(0.5)
            return "done"

        def proc(env, pool):
            value = yield from pool.run(nested(env))
            results.append((env.now, value))

        env.process(proc(env, pool))
        env.run()
        assert results[0][1] == "done"
        assert results[0][0] >= 0.5

    def test_run_holds_stream_for_nested_duration(self):
        env = Environment()
        pool = Pool(env, num_xstreams=1)
        finish_times = []

        def nested(env, duration):
            yield env.timeout(duration)

        def proc(env, pool, duration):
            yield from pool.run(nested(env, duration))
            finish_times.append(env.now)

        env.process(proc(env, pool, 1.0))
        env.process(proc(env, pool, 1.0))
        env.run()
        # Second item cannot start before the first finished.
        assert finish_times[1] >= 2.0
