"""Unit tests for the Yokan key/value database model."""

import pytest

from repro.sim import Environment
from repro.mochi.argobots import Pool
from repro.mochi.yokan import Database, DatabaseType, Provider, YokanCostModel


def run_proc(env, gen):
    """Run one generator to completion and return its value."""
    result = {}

    def wrapper():
        result["value"] = yield from gen

    env.process(wrapper())
    env.run()
    return result.get("value")


class TestCostModel:
    def test_batching_amortises_per_item_cost(self):
        costs = YokanCostModel()
        single = 100 * costs.put_time(1000)
        batched = costs.multi_put_time(100, 100 * 1000)
        assert batched < single

    def test_costs_scale_with_bytes(self):
        costs = YokanCostModel()
        assert costs.put_time(10_000) > costs.put_time(10)
        assert costs.multi_get_time(10, 100_000) > costs.multi_get_time(10, 100)

    def test_empty_batch_costs_nothing(self):
        costs = YokanCostModel()
        assert costs.multi_put_time(0, 0) == 0.0
        assert costs.multi_get_time(0, 0) == 0.0

    def test_list_cost_scales_with_keys(self):
        costs = YokanCostModel()
        assert costs.list_time(1000) > costs.list_time(1)


class TestDatabase:
    def test_put_then_get_round_trips_value(self):
        env = Environment()
        db = Database(env, "db0")

        def proc():
            yield from db.put(b"key", b"value")
            value = yield from db.get(b"key")
            return value

        assert run_proc(env, proc()) == b"value"
        assert db.puts == 1 and db.gets == 1

    def test_get_missing_key_returns_none(self):
        env = Environment()
        db = Database(env, "db0")

        def proc():
            return (yield from db.get(b"missing"))

        assert run_proc(env, proc()) is None

    def test_put_multi_stores_all_items(self):
        env = Environment()
        db = Database(env, "db0")
        items = [(f"k{i}".encode(), f"v{i}".encode()) for i in range(10)]

        def proc():
            yield from db.put_multi(items)

        run_proc(env, proc())
        assert len(db) == 10
        assert db.value_of(b"k3") == b"v3"

    def test_get_multi_preserves_order_and_missing(self):
        env = Environment()
        db = Database(env, "db0")

        def proc():
            yield from db.put(b"a", b"1")
            yield from db.put(b"c", b"3")
            return (yield from db.get_multi([b"a", b"b", b"c"]))

        assert run_proc(env, proc()) == [b"1", None, b"3"]

    def test_list_keys_prefix_filter_and_sorted(self):
        env = Environment()
        db = Database(env, "db0")

        def proc():
            yield from db.put(b"EV|2", b"x")
            yield from db.put(b"EV|1", b"x")
            yield from db.put(b"PR|1", b"x")
            return (yield from db.list_keys(prefix=b"EV|"))

        assert run_proc(env, proc()) == [b"EV|1", b"EV|2"]

    def test_writes_serialise_through_the_write_lock(self):
        env = Environment()
        costs = YokanCostModel(put_overhead=1.0, per_byte=0.0)
        db = Database(env, "db0", cost_model=costs)

        def writer(env, db, key):
            yield from db.put(key, b"v")

        for i in range(3):
            env.process(writer(env, db, f"k{i}".encode()))
        env.run()
        assert env.now == pytest.approx(3.0, abs=1e-6)

    def test_bulk_put_accounted_charges_time_and_stores_record(self):
        env = Environment()
        db = Database(env, "db0")

        def proc():
            yield from db.bulk_put_accounted(
                count=1000, total_bytes=1_000_000, record_key=b"BLOCK|f0", record_value=b"1000"
            )

        run_proc(env, proc())
        assert db.puts == 1000
        assert db.value_of(b"BLOCK|f0") == b"1000"
        assert env.now == pytest.approx(
            db.cost_model.multi_put_time(1000, 1_000_000), abs=1e-9
        )

    def test_bulk_accounted_rejects_negative_counts(self):
        env = Environment()
        db = Database(env, "db0")

        def proc():
            yield from db.bulk_get_accounted(-1, 0)

        env.process(proc())
        with pytest.raises(ValueError):
            env.run()


class TestProvider:
    def test_database_lookup_by_name(self):
        env = Environment()
        pool = Pool(env)
        db = Database(env, "events-0")
        provider = Provider(0, pool, [db])
        assert provider.database_by_name("events-0") is db
        with pytest.raises(KeyError):
            provider.database_by_name("missing")

    def test_negative_provider_id_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            Provider(-1, Pool(env))
