"""Unit tests for the Margo engine (progress loop + RPC round trips)."""

import pytest

from repro.sim import Environment
from repro.mochi.argobots import Pool
from repro.mochi.margo import MargoEngine, ProgressCostModel, ProgressMode
from repro.mochi.mercury import NetworkInterface, NetworkModel


def make_engine(env, busy_spin=False, dedicated=False, pool=None, name=""):
    nic = NetworkInterface(env, NetworkModel(), node_name=name)
    return MargoEngine(
        env,
        nic=nic,
        progress_mode=ProgressMode.BUSY_SPIN if busy_spin else ProgressMode.EPOLL,
        dedicated_progress_thread=dedicated,
        handler_pool=pool,
        name=name,
    )


class TestProgressCosts:
    def test_busy_spin_has_lower_latency_than_epoll(self):
        costs = ProgressCostModel()
        busy = costs.per_event_latency(ProgressMode.BUSY_SPIN, dedicated_thread=True)
        epoll = costs.per_event_latency(ProgressMode.EPOLL, dedicated_thread=True)
        assert busy < epoll

    def test_shared_progress_adds_penalty(self):
        costs = ProgressCostModel()
        dedicated = costs.per_event_latency(ProgressMode.EPOLL, dedicated_thread=True)
        shared = costs.per_event_latency(ProgressMode.EPOLL, dedicated_thread=False)
        assert shared > dedicated

    def test_pinned_cores(self):
        env = Environment()
        spin = make_engine(env, busy_spin=True, dedicated=True)
        epoll = make_engine(env, busy_spin=False, dedicated=True)
        shared = make_engine(env, busy_spin=True, dedicated=False)
        assert spin.pinned_cores() == 1.0
        assert 0 < epoll.pinned_cores() < 1.0
        assert shared.pinned_cores() == 0.0


class TestRPC:
    def test_rpc_round_trip_advances_time_and_counts(self):
        env = Environment()
        server_pool = Pool(env, num_xstreams=1)
        client = make_engine(env, name="client")
        server = make_engine(env, dedicated=True, pool=server_pool, name="server")
        durations = []

        def proc(env):
            rt = yield from client.rpc(
                server, server_pool, request_size=1024, response_size=128, handler_time=0.01
            )
            durations.append(rt)

        env.process(proc(env))
        env.run()
        assert durations[0] >= 0.01
        assert client.rpcs_issued == 1
        assert server.rpcs_handled == 1

    def test_rpc_requires_handler_pool(self):
        env = Environment()
        client = make_engine(env, name="client")
        server = make_engine(env, name="server")  # no pool

        def proc(env):
            yield from client.rpc(server, None, 10, 10, 0.0)

        env.process(proc(env))
        with pytest.raises(ValueError):
            env.run()

    def test_busy_spin_round_trip_faster_than_epoll(self):
        def round_trip(busy_spin):
            env = Environment()
            pool = Pool(env, num_xstreams=1)
            client = make_engine(env, busy_spin=busy_spin)
            server = make_engine(env, busy_spin=busy_spin, dedicated=True, pool=pool)
            out = []

            def proc(env):
                rt = yield from client.rpc(server, pool, 100, 100, 0.0)
                out.append(rt)

            env.process(proc(env))
            env.run()
            return out[0]

        assert round_trip(busy_spin=True) < round_trip(busy_spin=False)

    def test_call_runs_nested_handler_and_returns_its_value(self):
        env = Environment()
        pool = Pool(env, num_xstreams=1)
        client = make_engine(env, name="client")
        server = make_engine(env, dedicated=True, pool=pool, name="server")
        results = []

        def handler(env):
            yield env.timeout(0.2)
            return {"status": "ok"}

        def proc(env):
            rt, value = yield from client.call(
                server, pool, request_size=64, response_size=64, handler=handler(env)
            )
            results.append((rt, value))

        env.process(proc(env))
        env.run()
        rt, value = results[0]
        assert value == {"status": "ok"}
        assert rt >= 0.2

    def test_concurrent_rpcs_queue_on_server_pool(self):
        env = Environment()
        pool = Pool(env, num_xstreams=1)
        server = make_engine(env, dedicated=True, pool=pool, name="server")
        completion = []

        def one_client(env, idx):
            client = make_engine(env, name=f"client-{idx}")
            yield from client.rpc(server, pool, 100, 100, handler_time=1.0)
            completion.append(env.now)

        for i in range(3):
            env.process(one_client(env, i))
        env.run()
        # With a single execution stream the handlers serialise: ~1, ~2, ~3 s.
        assert completion[-1] >= 3.0
