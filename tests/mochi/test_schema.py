"""Tests for schema-based parameter discovery and constrained sampling.

This covers the paper's stated follow-up work (§VI): discovering the tunable
parameters of a Mochi service from a schema of its configuration file, plus a
set of feasibility constraints.
"""

import json

import numpy as np
import pytest

from repro.core.space import IntegerParameter
from repro.mochi.bedrock import ServiceConfig
from repro.mochi.schema import (
    Constraint,
    ConstrainedPrior,
    SchemaError,
    discover_space,
    instantiate,
)


def hepnos_like_schema():
    """A schema mirroring a HEPnOS server configuration with tunable knobs."""
    return {
        "margo": {
            "progress_mode": {
                "__param__": {"name": "progress_mode", "type": "categorical",
                               "choices": ["busy_spin", "epoll"]}
            },
            "dedicated_progress_thread": {
                "__param__": {"name": "progress_thread", "type": "boolean"}
            },
        },
        "pools": {
            "kind": {
                "__param__": {"name": "pool_type", "type": "categorical",
                               "choices": ["fifo", "fifo_wait", "prio_wait"]}
            },
            "num_xstreams": {
                "__param__": {"name": "rpc_threads", "type": "integer", "low": 0, "high": 63}
            },
        },
        "databases": {
            "events": {"__param__": {"name": "num_event_dbs", "type": "integer",
                                      "low": 1, "high": 16}},
            "products": {"__param__": {"name": "num_product_dbs", "type": "integer",
                                        "low": 1, "high": 16}},
            "providers": {"__param__": {"name": "num_providers", "type": "ordinal",
                                         "values": [1, 2, 4, 8, 16, 32]}},
        },
        "comment": "non-tunable content is preserved verbatim",
    }


class TestDiscoverSpace:
    def test_discovers_all_declared_parameters(self):
        space, constraints = discover_space(hepnos_like_schema())
        assert set(space.parameter_names) == {
            "progress_mode", "progress_thread", "pool_type", "rpc_threads",
            "num_event_dbs", "num_product_dbs", "num_providers",
        }
        assert constraints == []

    def test_accepts_json_text(self):
        space, _ = discover_space(json.dumps(hepnos_like_schema()))
        assert len(space) == 7

    def test_parameter_domains_match_descriptors(self):
        space, _ = discover_space(hepnos_like_schema())
        rpc = space["rpc_threads"]
        assert isinstance(rpc, IntegerParameter)
        assert (rpc.low, rpc.high) == (0, 63)
        assert set(space["pool_type"].categories) == {"fifo", "fifo_wait", "prio_wait"}
        assert space["num_providers"].values == (1, 2, 4, 8, 16, 32)

    def test_log_flag_is_honoured(self):
        schema = {"x": {"__param__": {"name": "batch", "type": "integer",
                                       "low": 1, "high": 2048, "log": True}}}
        space, _ = discover_space(schema)
        assert space["batch"].log

    def test_errors_on_malformed_descriptors(self):
        with pytest.raises(SchemaError):
            discover_space({"x": {"__param__": {"name": "p", "type": "integer"}}})
        with pytest.raises(SchemaError):
            discover_space({"x": {"__param__": {"name": "p", "type": "matrix"}}})
        with pytest.raises(SchemaError):
            discover_space({"x": {"__param__": {"type": "boolean"}, "extra": 1}})

    def test_errors_when_nothing_is_tunable(self):
        with pytest.raises(SchemaError):
            discover_space({"a": 1, "b": {"c": "d"}})

    def test_duplicate_names_rejected(self):
        schema = {
            "a": {"__param__": {"name": "p", "type": "boolean"}},
            "b": {"__param__": {"name": "p", "type": "boolean"}},
        }
        with pytest.raises(SchemaError):
            discover_space(schema)

    def test_parameter_name_defaults_to_path(self):
        schema = {"margo": {"threads": {"__param__": {"type": "integer", "low": 1, "high": 4}}}}
        space, _ = discover_space(schema)
        assert space.parameter_names == ("margo_threads",)


class TestInstantiate:
    def test_round_trip_produces_concrete_document(self):
        schema = hepnos_like_schema()
        space, _ = discover_space(schema)
        rng = np.random.default_rng(0)
        config = space.sample(1, rng)[0]
        document = instantiate(schema, config)
        assert document["pools"]["num_xstreams"] == config["rpc_threads"]
        assert document["margo"]["dedicated_progress_thread"] == config["progress_thread"]
        assert document["comment"] == "non-tunable content is preserved verbatim"

    def test_instantiated_document_feeds_bedrock(self):
        schema = hepnos_like_schema()
        space, _ = discover_space(schema)
        config = space.sample(1, np.random.default_rng(1))[0]
        document = instantiate(schema, config)
        service = ServiceConfig.from_tuning_parameters(
            num_event_dbs=document["databases"]["events"],
            num_product_dbs=document["databases"]["products"],
            num_providers=document["databases"]["providers"],
            num_rpc_threads=document["pools"]["num_xstreams"],
            pool_type=document["pools"]["kind"],
            progress_thread=document["margo"]["dedicated_progress_thread"],
            busy_spin=document["margo"]["progress_mode"] == "busy_spin",
        )
        service.validate()

    def test_missing_parameter_raises(self):
        schema = hepnos_like_schema()
        with pytest.raises(SchemaError):
            instantiate(schema, {"rpc_threads": 3})


class TestConstrainedPrior:
    def make_constraints(self):
        return [
            Constraint(
                name="providers_at_most_databases",
                predicate=lambda c: c["num_providers"] <= c["num_event_dbs"] + c["num_product_dbs"],
                description="providers without a database would be idle",
            ),
            Constraint(
                name="threads_when_busy_spin",
                predicate=lambda c: c["progress_mode"] != "busy_spin" or c["rpc_threads"] >= 1,
                description="busy spinning needs at least one RPC thread",
            ),
        ]

    def test_samples_satisfy_all_constraints(self):
        space, _ = discover_space(hepnos_like_schema())
        prior = ConstrainedPrior.uniform(space, self.make_constraints())
        rng = np.random.default_rng(0)
        for config in prior.sample_configurations(100, rng):
            assert prior.feasible(config)
            space.validate(config)

    def test_violated_lists_constraint_names(self):
        space, _ = discover_space(hepnos_like_schema())
        prior = ConstrainedPrior.uniform(space, self.make_constraints())
        bad = space.sample(1, np.random.default_rng(0))[0]
        bad.update(num_providers=32, num_event_dbs=1, num_product_dbs=1)
        assert "providers_at_most_databases" in prior.violated(bad)

    def test_unsatisfiable_constraints_raise(self):
        space, _ = discover_space(hepnos_like_schema())
        impossible = [Constraint("never", lambda c: False)]
        prior = ConstrainedPrior.uniform(space, impossible)
        with pytest.raises(SchemaError):
            prior.sample_configurations(5, np.random.default_rng(0))

    def test_invalid_max_attempts(self):
        space, _ = discover_space(hepnos_like_schema())
        with pytest.raises(ValueError):
            ConstrainedPrior.uniform(space, []).__class__(
                ConstrainedPrior.uniform(space, []).base, [], max_attempts=0
            )

    def test_constrained_prior_plugs_into_the_optimizer(self):
        from repro.core.optimizer import BayesianOptimizer

        space, _ = discover_space(hepnos_like_schema())
        prior = ConstrainedPrior.uniform(space, self.make_constraints())
        optimizer = BayesianOptimizer(space, prior=prior, n_initial_points=4, seed=0)
        batch = optimizer.ask(6)
        assert len(batch) == 6
        for config in batch:
            assert prior.feasible(config)
