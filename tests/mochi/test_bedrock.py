"""Unit tests for the Bedrock service-configuration layer."""

import json

import pytest

from repro.mochi.bedrock import (
    BedrockError,
    DatabaseConfig,
    MargoConfig,
    PoolConfig,
    ProviderConfig,
    ServiceConfig,
)


def minimal_config() -> ServiceConfig:
    return ServiceConfig(
        margo=MargoConfig(),
        pools=[PoolConfig(name="__primary__"), PoolConfig(name="p0", num_xstreams=2)],
        providers=[
            ProviderConfig(
                provider_id=0,
                pool="p0",
                databases=[
                    DatabaseConfig(name="hepnos-events-0", role="events"),
                    DatabaseConfig(name="hepnos-products-0", role="products"),
                ],
            )
        ],
    )


class TestValidation:
    def test_minimal_config_validates(self):
        minimal_config().validate()

    def test_unknown_pool_kind_rejected(self):
        config = minimal_config()
        config.pools[1].kind = "round_robin"
        with pytest.raises(BedrockError):
            config.validate()

    def test_duplicate_pool_names_rejected(self):
        config = minimal_config()
        config.pools.append(PoolConfig(name="p0"))
        with pytest.raises(BedrockError):
            config.validate()

    def test_provider_with_undeclared_pool_rejected(self):
        config = minimal_config()
        config.providers[0].pool = "ghost"
        with pytest.raises(BedrockError):
            config.validate()

    def test_duplicate_database_names_rejected(self):
        config = minimal_config()
        config.providers[0].databases.append(DatabaseConfig(name="hepnos-events-0"))
        with pytest.raises(BedrockError):
            config.validate()

    def test_unknown_database_role_rejected(self):
        with pytest.raises(BedrockError):
            DatabaseConfig(name="db", role="cache").validate()

    def test_unknown_progress_mode_rejected(self):
        config = minimal_config()
        config.margo.progress_mode = "poll"
        with pytest.raises(BedrockError):
            config.validate()

    def test_rpc_pool_must_be_declared(self):
        config = minimal_config()
        config.margo.rpc_pool = "missing"
        with pytest.raises(BedrockError):
            config.validate()


class TestJsonRoundTrip:
    def test_to_json_from_json_round_trip(self):
        config = minimal_config()
        text = config.to_json()
        parsed = ServiceConfig.from_json(text)
        assert parsed == config

    def test_json_is_valid_json(self):
        data = json.loads(minimal_config().to_json())
        assert "margo" in data and "pools" in data and "providers" in data

    def test_invalid_json_raises_bedrock_error(self):
        with pytest.raises(BedrockError):
            ServiceConfig.from_json("{not json")

    def test_malformed_dict_raises_bedrock_error(self):
        with pytest.raises(BedrockError):
            ServiceConfig.from_dict({"providers": [{"pool": "p"}]})


class TestFromTuningParameters:
    def test_builds_requested_database_counts(self):
        config = ServiceConfig.from_tuning_parameters(
            num_event_dbs=4,
            num_product_dbs=3,
            num_providers=2,
            num_rpc_threads=8,
            pool_type="fifo_wait",
            progress_thread=True,
            busy_spin=False,
        )
        config.validate()
        assert len(config.databases_with_role("events")) == 4
        assert len(config.databases_with_role("products")) == 3
        assert len(config.providers) == 2

    def test_rpc_threads_split_across_providers(self):
        config = ServiceConfig.from_tuning_parameters(
            num_event_dbs=2, num_product_dbs=2, num_providers=4, num_rpc_threads=10
        )
        assert config.total_rpc_xstreams() == 10

    def test_zero_rpc_threads_uses_primary_pool(self):
        config = ServiceConfig.from_tuning_parameters(
            num_event_dbs=1, num_product_dbs=1, num_providers=2, num_rpc_threads=0
        )
        assert all(p.pool == "__primary__" for p in config.providers)
        assert config.total_rpc_xstreams() == 0

    def test_busy_spin_sets_progress_mode(self):
        config = ServiceConfig.from_tuning_parameters(
            num_event_dbs=1, num_product_dbs=1, num_providers=1, num_rpc_threads=1, busy_spin=True
        )
        assert config.margo.progress_mode == "busy_spin"

    def test_pool_type_propagates(self):
        config = ServiceConfig.from_tuning_parameters(
            num_event_dbs=1,
            num_product_dbs=1,
            num_providers=1,
            num_rpc_threads=4,
            pool_type="prio_wait",
        )
        provider_pools = {p.pool for p in config.providers}
        kinds = {p.kind for p in config.pools if p.name in provider_pools}
        assert kinds == {"prio_wait"}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(BedrockError):
            ServiceConfig.from_tuning_parameters(0, 1, 1, 1)
        with pytest.raises(BedrockError):
            ServiceConfig.from_tuning_parameters(1, 1, 0, 1)
        with pytest.raises(BedrockError):
            ServiceConfig.from_tuning_parameters(1, 1, 1, -1)

    def test_round_robin_database_assignment(self):
        config = ServiceConfig.from_tuning_parameters(
            num_event_dbs=4, num_product_dbs=4, num_providers=2, num_rpc_threads=2
        )
        per_provider = [len(p.databases) for p in config.providers]
        assert per_provider == [4, 4]
