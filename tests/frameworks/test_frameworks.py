"""Tests for the comparator frameworks (RAND, DeepHyper-like, GPtune-like, HiPerBOt-like)."""

import numpy as np
import pytest

from repro.core.history import SearchHistory
from repro.core.space import (
    CategoricalParameter,
    IntegerParameter,
    RealParameter,
    SearchSpace,
)
from repro.frameworks import (
    DeepHyperSearch,
    FrameworkResult,
    GPTuneLike,
    HiPerBOtLike,
    RandomSearch,
)


def toy_space():
    return SearchSpace(
        [
            RealParameter("x", 0.0, 1.0),
            IntegerParameter("k", 1, 32, log=True),
            CategoricalParameter.boolean("flag"),
        ]
    )


def toy_runtime(config):
    base = 20.0 + 300.0 * (config["x"] - 0.6) ** 2
    base += 15.0 * abs(np.log(config["k"]) / np.log(32) - 0.4)
    base += 0.0 if config["flag"] else 10.0
    return base


def shared_initial_samples(n=10, seed=123):
    space = toy_space()
    return space.sample(n, np.random.default_rng(seed))


def make_source_history(n=150, seed=0):
    space = toy_space()
    history = SearchHistory(space)
    rng = np.random.default_rng(seed)
    for i, config in enumerate(space.sample(n, rng)):
        history.record(config, toy_runtime(config), float(i), float(i + 1))
    return history


BUDGET = 1500.0


class TestRandomSearch:
    def test_runs_and_reports_metrics(self):
        framework = RandomSearch(toy_space(), toy_runtime, num_workers=1, seed=0)
        result = framework.run(BUDGET, initial_configurations=shared_initial_samples())
        assert isinstance(result, FrameworkResult)
        assert result.name == "RAND"
        assert result.num_evaluations > 10
        assert np.isfinite(result.best_runtime)

    def test_sequential_mode_evaluates_few_configurations(self):
        sequential = RandomSearch(toy_space(), toy_runtime, num_workers=1, seed=0).run(BUDGET)
        parallel = RandomSearch(toy_space(), toy_runtime, num_workers=10, seed=0).run(BUDGET)
        assert parallel.num_evaluations > 3 * sequential.num_evaluations


class TestDeepHyperSearch:
    def test_names_reflect_worker_count_and_tl(self):
        dh1 = DeepHyperSearch(toy_space(), toy_runtime, num_workers=1, refit_interval=4, seed=0)
        dh10 = DeepHyperSearch(toy_space(), toy_runtime, num_workers=10, refit_interval=4, seed=0)
        assert dh1.name == "DH1W" and dh10.name == "DH10W"
        result = dh1.run(BUDGET, initial_configurations=shared_initial_samples())
        assert result.name == "DH1W"
        tl_result = dh1.run(
            BUDGET,
            initial_configurations=shared_initial_samples(),
            source_history=make_source_history(),
        )
        assert tl_result.name == "TL-DH1W"

    def test_ten_workers_evaluate_more_than_one(self):
        dh1 = DeepHyperSearch(toy_space(), toy_runtime, num_workers=1, refit_interval=4, seed=1)
        dh10 = DeepHyperSearch(toy_space(), toy_runtime, num_workers=10, refit_interval=4, seed=1)
        r1 = dh1.run(BUDGET, initial_configurations=shared_initial_samples())
        r10 = dh10.run(BUDGET, initial_configurations=shared_initial_samples())
        assert r10.num_evaluations > 2 * r1.num_evaluations
        assert r10.best_runtime <= r1.best_runtime + 5.0

    def test_transfer_learning_improves_early_incumbent(self):
        dh = DeepHyperSearch(toy_space(), toy_runtime, num_workers=1, vae_epochs=60, refit_interval=4, seed=2)
        init = shared_initial_samples()
        no_tl = dh.run(BUDGET, initial_configurations=init)
        tl = dh.run(BUDGET, initial_configurations=init, source_history=make_source_history())
        early = 600.0
        assert (
            tl.history.best_runtime_at(early)
            <= no_tl.history.best_runtime_at(early) + 5.0
        )


class TestGPTuneLike:
    def test_two_phase_run_produces_history(self):
        framework = GPTuneLike(toy_space(), toy_runtime, num_sampling=10, seed=0)
        result = framework.run(BUDGET, initial_configurations=shared_initial_samples())
        assert result.name == "GPTUNE"
        assert result.num_evaluations >= 10
        assert np.isfinite(result.best_runtime)

    def test_finds_reasonable_configuration(self):
        framework = GPTuneLike(toy_space(), toy_runtime, num_sampling=10, seed=0)
        result = framework.run(BUDGET, initial_configurations=shared_initial_samples())
        assert result.best_runtime < 40.0

    def test_transfer_requires_identical_spaces(self):
        framework = GPTuneLike(toy_space(), toy_runtime, seed=0)
        other_space = SearchSpace([RealParameter("only_x", 0.0, 1.0)])
        bad_history = SearchHistory(other_space)
        with pytest.raises(ValueError):
            framework.run(BUDGET, source_history=bad_history)

    def test_transfer_learning_pools_source_data(self):
        framework = GPTuneLike(toy_space(), toy_runtime, num_sampling=10, seed=0)
        result = framework.run(
            BUDGET,
            initial_configurations=shared_initial_samples(),
            source_history=make_source_history(),
        )
        assert result.name == "TL-GPTUNE"
        assert result.best_runtime < 45.0

    def test_sequential_evaluations_do_not_overlap(self):
        framework = GPTuneLike(toy_space(), toy_runtime, num_sampling=5, seed=0)
        result = framework.run(1000.0, initial_configurations=shared_initial_samples(5))
        evals = sorted(result.history, key=lambda ev: ev.submitted)
        for a, b in zip(evals, evals[1:]):
            assert b.submitted >= a.completed - 1e-9


class TestHiPerBOtLike:
    def test_run_produces_history_and_name(self):
        framework = HiPerBOtLike(toy_space(), toy_runtime, seed=0)
        result = framework.run(BUDGET, initial_configurations=shared_initial_samples())
        assert result.name == "HIPERBOT"
        assert result.num_evaluations >= 10

    def test_finds_reasonable_configuration(self):
        framework = HiPerBOtLike(toy_space(), toy_runtime, seed=0)
        result = framework.run(BUDGET, initial_configurations=shared_initial_samples())
        assert result.best_runtime < 45.0

    def test_transfer_learning_uses_source_density(self):
        framework = HiPerBOtLike(toy_space(), toy_runtime, source_weight=0.5, seed=0)
        result = framework.run(
            BUDGET,
            initial_configurations=shared_initial_samples(),
            source_history=make_source_history(),
        )
        assert result.name == "TL-HIPERBOT"
        assert np.isfinite(result.best_runtime)

    def test_transfer_requires_identical_spaces(self):
        framework = HiPerBOtLike(toy_space(), toy_runtime, seed=0)
        other_space = SearchSpace([RealParameter("only_x", 0.0, 1.0)])
        with pytest.raises(ValueError):
            framework.run(BUDGET, source_history=SearchHistory(other_space))

    def test_invalid_source_weight(self):
        with pytest.raises(ValueError):
            HiPerBOtLike(toy_space(), toy_runtime, source_weight=1.5)

    def test_sequential_evaluations_do_not_overlap(self):
        framework = HiPerBOtLike(toy_space(), toy_runtime, seed=0)
        result = framework.run(1500.0, initial_configurations=shared_initial_samples(5))
        evals = sorted(result.history, key=lambda ev: ev.submitted)
        for a, b in zip(evals, evals[1:]):
            assert b.submitted >= a.completed - 1e-9


class TestCrossFramework:
    def test_deephyper_with_workers_evaluates_most(self):
        init = shared_initial_samples()
        results = {
            "DH10W": DeepHyperSearch(toy_space(), toy_runtime, num_workers=10, refit_interval=4, seed=5).run(
                BUDGET, initial_configurations=init
            ),
            "GPTUNE": GPTuneLike(toy_space(), toy_runtime, seed=5).run(
                BUDGET, initial_configurations=init
            ),
            "HIPERBOT": HiPerBOtLike(toy_space(), toy_runtime, seed=5).run(
                BUDGET, initial_configurations=init
            ),
        }
        evals = {name: r.num_evaluations for name, r in results.items()}
        assert evals["DH10W"] > evals["GPTUNE"]
        assert evals["DH10W"] > evals["HIPERBOT"]
