"""Tests for the HEPnOS client API (store, list, load)."""

import math

import pytest

from repro.sim import Environment
from repro.mochi.bedrock import ServiceConfig
from repro.mochi.margo import MargoEngine, ProgressMode
from repro.platform import THETA, Node
from repro.hepnos.client import HEPnOSClient, StoredBlock
from repro.hepnos.service import HEPnOSService


def make_setup(events=2, products=2, providers=2, rpc_threads=4):
    env = Environment()
    server_node = Node(env, THETA, "hepnos-0")
    app_node = Node(env, THETA, "app-0")
    config = ServiceConfig.from_tuning_parameters(
        num_event_dbs=events,
        num_product_dbs=products,
        num_providers=providers,
        num_rpc_threads=rpc_threads,
    )
    service = HEPnOSService(env, [server_node], config)
    engine = MargoEngine(env, nic=app_node.nic, progress_mode=ProgressMode.EPOLL, name="app")
    client = HEPnOSClient(engine, service)
    return env, service, client


def run(env, gen):
    out = {}

    def wrapper():
        out["value"] = yield from gen

    env.process(wrapper())
    env.run()
    return out["value"]


class TestStoredBlock:
    def test_value_round_trip(self):
        block = StoredBlock("f.h5", 100, 1_000_000, 3, 5)
        assert StoredBlock.from_value(block.to_value()) == block


class TestStoreFile:
    def test_store_file_records_block_in_event_database(self):
        env, service, client = make_setup()
        stats = run(
            env,
            client.store_file("file-1.h5", num_events=1000, product_bytes_per_event=5000, write_batch_size=128),
        )
        assert stats.num_events == 1000
        assert stats.num_rpcs >= math.ceil(1000 / 128)
        db_idx = service.event_db_for_file("file-1.h5")
        _, db = service.event_db(db_idx)
        blocks = [k for k in db.keys() if k.startswith(b"BLOCK|")]
        assert len(blocks) == 1
        block = StoredBlock.from_value(db.value_of(blocks[0]))
        assert block.num_events == 1000
        assert block.product_db == service.product_db_for_file("file-1.h5")

    def test_smaller_batch_size_costs_more_time(self):
        def elapsed(batch_size):
            env, _, client = make_setup()
            stats = run(
                env,
                client.store_file("f.h5", 2000, 4000, write_batch_size=batch_size),
            )
            return stats.elapsed

        assert elapsed(1) > elapsed(512)

    def test_empty_file_is_noop(self):
        env, _, client = make_setup()
        stats = run(env, client.store_file("f.h5", 0, 100, 64))
        assert stats.num_events == 0 and stats.num_rpcs == 0

    def test_invalid_batch_size_rejected(self):
        env, _, client = make_setup()
        with pytest.raises(ValueError):
            run(env, client.store_file("f.h5", 10, 100, write_batch_size=0))


class TestListAndLoad:
    def test_list_event_blocks_returns_stored_blocks(self):
        env, service, client = make_setup(events=1, products=1)
        def scenario():
            yield from client.store_file("a.h5", 500, 2000, 64)
            yield from client.store_file("b.h5", 300, 2000, 64)
            blocks = yield from client.list_event_blocks(0)
            return blocks

        blocks = run(env, scenario())
        assert {b.file_name for b in blocks} == {"a.h5", "b.h5"}
        assert sum(b.num_events for b in blocks) == 800

    def test_load_products_accounts_bytes(self):
        env, service, client = make_setup(events=1, products=1)

        def scenario():
            yield from client.store_file("a.h5", 400, 1000, 64)
            blocks = yield from client.list_event_blocks(0)
            stats = yield from client.load_products(blocks[0], input_batch_size=64, preloading=True)
            return stats

        stats = run(env, scenario())
        assert stats.num_events == 400
        assert stats.bytes_loaded == 400 * 1000

    def test_preloading_is_faster_than_per_product_loads(self):
        def load_time(preloading):
            env, service, client = make_setup(events=1, products=1)

            def scenario():
                yield from client.store_file("a.h5", 1000, 5000, 128)
                blocks = yield from client.list_event_blocks(0)
                stats = yield from client.load_products(
                    blocks[0], input_batch_size=128, preloading=preloading
                )
                return stats.elapsed

            return run(env, scenario())

        assert load_time(True) < load_time(False)

    def test_partial_load_respects_event_count(self):
        env, service, client = make_setup(events=1, products=1)

        def scenario():
            yield from client.store_file("a.h5", 1000, 1000, 128)
            blocks = yield from client.list_event_blocks(0)
            stats = yield from client.load_products(
                blocks[0], input_batch_size=64, preloading=True, events=250
            )
            return stats

        stats = run(env, scenario())
        assert stats.num_events == 250
        assert stats.bytes_loaded == 250 * 1000
