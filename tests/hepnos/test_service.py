"""Tests for HEPnOS server and service composition."""

import pytest

from repro.sim import Environment
from repro.mochi.bedrock import ServiceConfig
from repro.platform import THETA, Node
from repro.hepnos.server import HEPnOSServer
from repro.hepnos.service import HEPnOSService


def make_config(events=2, products=2, providers=2, rpc_threads=4, **kwargs):
    return ServiceConfig.from_tuning_parameters(
        num_event_dbs=events,
        num_product_dbs=products,
        num_providers=providers,
        num_rpc_threads=rpc_threads,
        **kwargs,
    )


class TestHEPnOSServer:
    def test_server_materialises_configured_databases(self):
        env = Environment()
        node = Node(env, THETA, "hepnos-0")
        server = HEPnOSServer(env, node, make_config(events=3, products=2))
        assert len(server.event_databases) == 3
        assert len(server.product_databases) == 2
        assert server.num_databases == 5

    def test_every_database_has_a_provider_pool(self):
        env = Environment()
        node = Node(env, THETA, "hepnos-0")
        server = HEPnOSServer(env, node, make_config())
        for db in server.event_databases + server.product_databases:
            pool = server.pool_for(db)
            assert pool.num_xstreams >= 1

    def test_progress_thread_registers_pinned_cores(self):
        env = Environment()
        node = Node(env, THETA, "hepnos-0")
        HEPnOSServer(env, node, make_config(progress_thread=True, busy_spin=True))
        assert node.pinned_cores >= 1.0

    def test_fifo_pool_type_pins_rpc_threads(self):
        env = Environment()
        node_fifo = Node(env, THETA, "a")
        node_wait = Node(env, THETA, "b")
        HEPnOSServer(env, node_fifo, make_config(pool_type="fifo", rpc_threads=8))
        HEPnOSServer(env, node_wait, make_config(pool_type="fifo_wait", rpc_threads=8))
        assert node_fifo.pinned_cores > node_wait.pinned_cores


class TestHEPnOSService:
    def test_service_aggregates_databases_across_servers(self):
        env = Environment()
        nodes = [Node(env, THETA, f"hepnos-{i}") for i in range(2)]
        service = HEPnOSService(env, nodes, make_config(events=4, products=4), servers_per_node=2)
        assert len(service.servers) == 4
        assert service.num_event_databases == 16
        assert service.num_product_databases == 16

    def test_file_to_database_mapping_is_deterministic_and_in_range(self):
        env = Environment()
        nodes = [Node(env, THETA, "hepnos-0")]
        service = HEPnOSService(env, nodes, make_config(events=5, products=3))
        for i in range(50):
            name = f"file-{i}.h5"
            e1 = service.event_db_for_file(name)
            e2 = service.event_db_for_file(name)
            assert e1 == e2
            assert 0 <= e1 < service.num_event_databases
            assert 0 <= service.product_db_for_file(name) < service.num_product_databases

    def test_files_spread_over_databases(self):
        env = Environment()
        nodes = [Node(env, THETA, "hepnos-0")]
        service = HEPnOSService(env, nodes, make_config(events=8, products=8))
        targets = {service.event_db_for_file(f"file-{i}.h5") for i in range(200)}
        # With 200 files over 8 databases every database should receive some.
        assert len(targets) == 8

    def test_invalid_constructor_arguments(self):
        env = Environment()
        with pytest.raises(ValueError):
            HEPnOSService(env, [], make_config())
        with pytest.raises(ValueError):
            HEPnOSService(env, [Node(env, THETA, "n")], make_config(), servers_per_node=0)

    def test_handler_pools_resolve(self):
        env = Environment()
        nodes = [Node(env, THETA, "hepnos-0")]
        service = HEPnOSService(env, nodes, make_config())
        for idx in range(service.num_event_databases):
            assert service.handler_pool_for_event_db(idx) is not None
        for idx in range(service.num_product_databases):
            assert service.handler_pool_for_product_db(idx) is not None
