"""Unit tests for the HEPnOS data model and key encoding."""

import pytest

from repro.hepnos.datamodel import (
    DataSetID,
    EventID,
    ProductID,
    RunID,
    SubRunID,
    parse_event_key,
)


class TestHierarchy:
    def test_event_from_numbers_builds_full_hierarchy(self):
        event = EventID.from_numbers("nova", 5, 2, 77)
        assert event.dataset.name == "nova"
        assert event.subrun.run.run == 5
        assert event.subrun.subrun == 2
        assert event.event == 77
        assert event.as_tuple() == ("nova", 5, 2, 77)

    def test_ordering_matches_numeric_order(self):
        a = EventID.from_numbers("nova", 1, 1, 1)
        b = EventID.from_numbers("nova", 1, 1, 2)
        c = EventID.from_numbers("nova", 1, 2, 0)
        d = EventID.from_numbers("nova", 2, 0, 0)
        assert a < b < c < d

    def test_dataset_and_run_ordering(self):
        assert DataSetID("alpha") < DataSetID("beta")
        r1 = RunID(DataSetID("nova"), 1)
        r2 = RunID(DataSetID("nova"), 10)
        assert r1 < r2

    def test_product_ordering_includes_label(self):
        event = EventID.from_numbers("nova", 1, 1, 1)
        p1 = ProductID(event, "hits")
        p2 = ProductID(event, "tracks")
        assert p1 < p2


class TestKeyEncoding:
    def test_key_order_matches_event_order(self):
        events = [
            EventID.from_numbers("nova", r, s, e)
            for r in range(3)
            for s in range(3)
            for e in range(5)
        ]
        keys = [ev.key() for ev in events]
        assert keys == sorted(keys)

    def test_key_round_trip(self):
        event = EventID.from_numbers("nova", 12, 34, 56789)
        assert parse_event_key(event.key()) == ("nova", 12, 34, 56789)

    def test_product_key_shares_event_prefix(self):
        event = EventID.from_numbers("nova", 1, 2, 3)
        product = ProductID(event, "calorimeter")
        assert product.key().startswith(event.key())

    def test_subrun_key_prefixes_event_key(self):
        event = EventID.from_numbers("nova", 1, 2, 3)
        assert event.key().startswith(event.subrun.key())

    def test_out_of_range_numbers_rejected(self):
        with pytest.raises(ValueError):
            EventID.from_numbers("nova", 2**33, 0, 0).key()
        with pytest.raises(ValueError):
            EventID.from_numbers("nova", 0, 0, 2**65).key()

    def test_parse_rejects_malformed_keys(self):
        with pytest.raises(ValueError):
            parse_event_key(b"garbage")
        with pytest.raises(ValueError):
            parse_event_key(b"DS|nova|R|xx")
