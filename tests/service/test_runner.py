"""The multi-campaign batch runner must not change any campaign's results.

The acceptance property of the service layer: driving N campaigns through
:class:`~repro.service.CampaignRunner` (batch ticks, fleet surrogate fits,
fused candidate scoring, batched run-function evaluation) produces
per-campaign :class:`~repro.core.search.SearchResult`\\ s bit-identical to N
sequential ``CBOSearch.run`` calls with the same seeds.
"""

import math

import numpy as np
import pytest

from repro.core.history import SearchHistory
from repro.core.search import CBOSearch, VAEABOSearch
from repro.core.space import (
    CategoricalParameter,
    IntegerParameter,
    RealParameter,
    SearchSpace,
)
from repro.core.surrogate import RandomForestSurrogate
from repro.core.transfer import TransferLearningPrior
from repro.service import CampaignRunner, CampaignSpec, SharedWorkerPool


def make_space():
    return SearchSpace(
        [
            IntegerParameter("batch", 1, 1024, log=True),
            RealParameter("rate", 0.1, 50.0, log=True),
            CategoricalParameter("pool", ("fifo", "prio", "wait")),
            CategoricalParameter.boolean("busy"),
        ]
    )


def run_function(config):
    value = abs(math.log(config["batch"]) - 4.0) + 0.3 * math.log(config["rate"])
    value += 1.0 if config["pool"] == "wait" else 0.0
    return 30.0 + 12.0 * value


def make_search(seed, space, **kwargs):
    params = dict(
        num_workers=6,
        surrogate=RandomForestSurrogate(n_estimators=6, seed=seed),
        num_candidates=48,
        n_initial_points=5,
        seed=seed,
    )
    params.update(kwargs)
    return CBOSearch(space, run_function, **params)


def assert_identical(a, b):
    assert len(a.history) == len(b.history)
    for ev_a, ev_b in zip(a.history, b.history):
        assert ev_a.configuration == ev_b.configuration
        assert ev_a.submitted == ev_b.submitted
        assert ev_a.completed == ev_b.completed
        assert (ev_a.objective == ev_b.objective) or (
            math.isnan(ev_a.objective) and math.isnan(ev_b.objective)
        )
    assert a.busy_intervals == b.busy_intervals
    assert a.worker_utilization == b.worker_utilization
    assert a.best_configuration == b.best_configuration


class TestRunnerBitIdentity:
    @pytest.mark.parametrize("batch_fits,batch_scoring", [(True, True), (True, False), (False, True), (False, False)])
    def test_runner_matches_sequential_runs(self, batch_fits, batch_scoring):
        space = make_space()
        sequential = [
            make_search(seed, space).run(max_time=600.0, max_evaluations=30)
            for seed in range(4)
        ]
        specs = [
            CampaignSpec(
                search=make_search(seed, space),
                max_time=600.0,
                max_evaluations=30,
                label=f"c{seed}",
            )
            for seed in range(4)
        ]
        runner = CampaignRunner(
            specs,
            batch_surrogate_fits=batch_fits,
            batch_candidate_scoring=batch_scoring,
        )
        batched = runner.run()
        assert len(batched) == 4
        for a, b in zip(sequential, batched):
            assert_identical(a, b)
        if batch_fits:
            assert runner.num_fleet_fits > 0
            assert runner.num_fleet_fitted_surrogates >= 2 * runner.num_fleet_fits

    def test_runner_with_gp_campaigns_matches_sequential(self):
        space = make_space()
        sequential = [
            CBOSearch(space, run_function, num_workers=4, surrogate="GP",
                      num_candidates=32, n_initial_points=4, seed=seed).run(
                max_time=400.0, max_evaluations=16
            )
            for seed in range(2)
        ]
        specs = [
            CampaignSpec(
                search=CBOSearch(space, run_function, num_workers=4, surrogate="GP",
                                 num_candidates=32, n_initial_points=4, seed=seed),
                max_time=400.0,
                max_evaluations=16,
            )
            for seed in range(2)
        ]
        batched = CampaignRunner(specs).run()
        for a, b in zip(sequential, batched):
            assert_identical(a, b)

    def test_mixed_surrogates_and_budgets(self):
        space = make_space()
        # Surrogates are stateful (RNG): each execution needs a fresh one.
        setups = [
            lambda: dict(surrogate=RandomForestSurrogate(n_estimators=6, seed=0), seed=0),
            lambda: dict(surrogate="GP", seed=1),
            lambda: dict(surrogate=RandomForestSurrogate(n_estimators=6, seed=2), seed=2),
        ]
        budgets = [(500.0, 24), (350.0, 12), (650.0, 30)]
        sequential = [
            make_search(space=space, **kw()).run(max_time=t, max_evaluations=m)
            for kw, (t, m) in zip(setups, budgets)
        ]
        specs = [
            CampaignSpec(search=make_search(space=space, **kw()), max_time=t, max_evaluations=m)
            for kw, (t, m) in zip(setups, budgets)
        ]
        batched = CampaignRunner(specs).run()
        for a, b in zip(sequential, batched):
            assert_identical(a, b)

    def test_sharded_scoring_campaigns_match(self):
        """score_shards on inside the runner stays bit-identical too."""
        space = make_space()
        sequential = [
            make_search(seed, space, score_shards=3).run(max_time=500.0, max_evaluations=20)
            for seed in range(3)
        ]
        specs = [
            CampaignSpec(
                search=make_search(seed, space, score_shards=3),
                max_time=500.0,
                max_evaluations=20,
            )
            for seed in range(3)
        ]
        batched = CampaignRunner(specs).run()
        for a, b in zip(sequential, batched):
            assert_identical(a, b)

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            CampaignRunner([])


class TestRunBatcher:
    def test_run_batcher_receives_spec_indices_and_sets_runtimes(self):
        space = make_space()
        seen = []

        def batcher(requests):
            seen.append([idx for idx, _ in requests])
            return [[run_function(c) for c in configs] for _, configs in requests]

        specs = [
            CampaignSpec(search=make_search(seed, space), max_time=500.0, max_evaluations=15)
            for seed in range(3)
        ]
        batched = CampaignRunner(specs, run_batcher=batcher).run()
        sequential = [
            make_search(seed, space).run(max_time=500.0, max_evaluations=15)
            for seed in range(3)
        ]
        for a, b in zip(sequential, batched):
            assert_identical(a, b)
        # The initial submissions come through the batcher as one pass.
        assert seen[0] == [0, 1, 2]
        assert all(all(0 <= idx < 3 for idx in batch) for batch in seen)


class TestServiceBackedCampaigns:
    def test_campaigns_share_a_worker_pool(self):
        space = make_space()
        pool = SharedWorkerPool(num_workers=6)
        specs = [
            CampaignSpec(
                search=CBOSearch(
                    space,
                    run_function,
                    num_workers=6,
                    surrogate=RandomForestSurrogate(n_estimators=6, seed=seed),
                    num_candidates=32,
                    n_initial_points=4,
                    seed=seed,
                    evaluator_factory=pool.evaluator_factory(),
                ),
                max_time=800.0,
                max_evaluations=20,
            )
            for seed in range(2)
        ]
        results = CampaignRunner(specs).run()
        assert all(r.num_evaluations > 0 for r in results)
        # Both campaigns ran on the shared clock and the shared workers.
        assert 0.0 < pool.utilization(800.0) <= 1.0
        total = sum(r.num_evaluations for r in results)
        assert total == sum(len(r.history) for r in results)


class TestHeterogeneousFleets:
    def test_campaigns_over_different_spaces(self):
        """Fused scoring/fitting must group by space width, not crash."""
        narrow = SearchSpace(
            [IntegerParameter("batch", 1, 256, log=True), RealParameter("rate", 0.1, 10.0)]
        )

        def narrow_runtime(config):
            return 25.0 + 5.0 * abs(math.log(config["batch"]) - 3.0)

        wide = make_space()
        sequential = [
            CBOSearch(narrow, narrow_runtime, num_workers=4,
                      surrogate=RandomForestSurrogate(n_estimators=6, seed=0),
                      num_candidates=32, n_initial_points=4, seed=0).run(
                max_time=500.0, max_evaluations=18
            ),
            make_search(1, wide).run(max_time=500.0, max_evaluations=18),
        ]
        specs = [
            CampaignSpec(
                search=CBOSearch(narrow, narrow_runtime, num_workers=4,
                                 surrogate=RandomForestSurrogate(n_estimators=6, seed=0),
                                 num_candidates=32, n_initial_points=4, seed=0),
                max_time=500.0,
                max_evaluations=18,
            ),
            CampaignSpec(search=make_search(1, wide), max_time=500.0, max_evaluations=18),
        ]
        batched = CampaignRunner(specs).run()
        for a, b in zip(sequential, batched):
            assert_identical(a, b)


def make_refresh_search(seed, space, **kwargs):
    """A campaign on the continuous-retuning scenario (periodic VAE refresh)."""
    params = dict(
        num_workers=6,
        surrogate=RandomForestSurrogate(n_estimators=6, seed=seed),
        num_candidates=48,
        n_initial_points=5,
        prior_refresh_interval=8,
        prior_refresh_top_k=8,
        prior_refresh_epochs=12,
        seed=seed,
    )
    params.update(kwargs)
    return CBOSearch(space, run_function, **params)


def make_source_history(space, n=60, seed=123):
    history = SearchHistory(space)
    rng = np.random.default_rng(seed)
    for i, config in enumerate(space.sample(n, rng)):
        history.record(config, run_function(config), float(i), float(i + 1))
    return history


class TestTransferCampaignFleet:
    """The transfer scenario: TL-seeded campaigns with fused prior refreshes."""

    def test_refresh_campaigns_match_sequential_runs(self):
        space = make_space()
        sequential = [
            make_refresh_search(seed, space).run(max_time=700.0, max_evaluations=32)
            for seed in range(3)
        ]
        runner = CampaignRunner(
            [
                CampaignSpec(
                    search=make_refresh_search(seed, space),
                    max_time=700.0,
                    max_evaluations=32,
                )
                for seed in range(3)
            ]
        )
        batched = runner.run()
        for a, b in zip(sequential, batched):
            assert_identical(a, b)
        assert runner.num_prior_refreshes > 0
        assert runner.num_vae_fleet_fits > 0
        assert runner.num_vae_fleet_members <= runner.num_prior_refreshes

    def test_batch_vae_fits_escape_hatch_matches(self):
        space = make_space()
        sequential = [
            make_refresh_search(seed, space).run(max_time=600.0, max_evaluations=24)
            for seed in range(2)
        ]
        runner = CampaignRunner(
            [
                CampaignSpec(
                    search=make_refresh_search(seed, space),
                    max_time=600.0,
                    max_evaluations=24,
                )
                for seed in range(2)
            ],
            batch_vae_fits=False,
        )
        batched = runner.run()
        for a, b in zip(sequential, batched):
            assert_identical(a, b)
        assert runner.num_prior_refreshes > 0
        assert runner.num_vae_fleet_fits == 0

    def test_transfer_seeded_campaigns_refresh_in_the_runner(self):
        """Campaigns constructed with TransferLearningPriors keep refreshing
        from their own incumbents inside the batched runner."""
        space = make_space()
        source = make_source_history(space)

        def make(seed):
            return VAEABOSearch(
                space,
                run_function,
                source_history=source,
                vae_epochs=15,
                num_workers=6,
                surrogate=RandomForestSurrogate(n_estimators=6, seed=seed),
                num_candidates=48,
                n_initial_points=5,
                prior_refresh_interval=8,
                prior_refresh_top_k=8,
                prior_refresh_epochs=12,
                seed=seed,
            )

        sequential = [make(seed).run(max_time=700.0, max_evaluations=28) for seed in range(2)]
        runner = CampaignRunner(
            [
                CampaignSpec(search=make(seed), max_time=700.0, max_evaluations=28)
                for seed in range(2)
            ]
        )
        batched = runner.run()
        for a, b in zip(sequential, batched):
            assert_identical(a, b)
        assert runner.num_prior_refreshes > 0

    def test_solo_run_installs_refreshed_prior(self):
        space = make_space()
        search = make_refresh_search(0, space)
        execution = search.start(max_time=700.0, max_evaluations=32)
        while execution.advance():
            pass
        assert execution.num_prior_refreshes > 0
        prior = execution.optimizer.prior
        assert isinstance(prior, TransferLearningPrior)
        # The refreshed prior spans the whole space (no new parameters) and
        # carries the campaign's own top-k incumbents.
        assert prior.new_parameters == []
        assert len(prior.top_configurations) == search.prior_refresh_top_k

    def test_refresh_knob_validation(self):
        space = make_space()
        with pytest.raises(ValueError):
            CBOSearch(space, run_function, prior_refresh_interval=0)
        with pytest.raises(ValueError):
            CBOSearch(space, run_function, prior_refresh_interval=4, prior_refresh_top_k=0)
        with pytest.raises(ValueError):
            CBOSearch(space, run_function, prior_refresh_interval=4, prior_refresh_epochs=0)


class TestFleetFitErrorPath:
    def test_incompatible_fleet_leaves_rng_streams_untouched(self):
        """A rejected fleet must not advance any member's generator."""
        import numpy as np
        from repro.core.surrogate.random_forest import fit_forest_fleet

        rng = np.random.default_rng(0)
        X, y = rng.random((60, 4)), rng.random(60)
        good = RandomForestSurrogate(seed=1)
        reference = RandomForestSurrogate(seed=1)
        bad = RandomForestSurrogate(seed=2, max_depth=5)
        with pytest.raises(ValueError, match="incompatible"):
            fit_forest_fleet([(good, X, y), (bad, X, y)])
        good.fit(X, y)
        reference.fit(X, y)
        for ta, tb in zip(good._trees, reference._trees):
            assert np.array_equal(ta.threshold, tb.threshold)
