"""The multi-campaign batch runner must not change any campaign's results.

The acceptance property of the service layer: driving N campaigns through
:class:`~repro.service.CampaignRunner` (batch ticks, fleet surrogate fits,
fused candidate scoring, batched run-function evaluation) produces
per-campaign :class:`~repro.core.search.SearchResult`\\ s bit-identical to N
sequential ``CBOSearch.run`` calls with the same seeds.
"""

import math

import numpy as np
import pytest

from fixtures import (
    assert_results_identical as assert_identical,
    make_gp_search,
    make_refresh_search,
    make_service_search as make_search,
    make_service_space as make_space,
    service_run_function as run_function,
)
from repro.core.history import SearchHistory
from repro.core.search import CBOSearch, VAEABOSearch
from repro.core.space import IntegerParameter, RealParameter, SearchSpace
from repro.core.surrogate import RandomForestSurrogate
from repro.core.transfer import TransferLearningPrior
from repro.service import CampaignRunner, CampaignSpec, SharedWorkerPool


class TestRunnerBitIdentity:
    @pytest.mark.parametrize("batch_fits,batch_scoring", [(True, True), (True, False), (False, True), (False, False)])
    def test_runner_matches_sequential_runs(self, batch_fits, batch_scoring):
        space = make_space()
        sequential = [
            make_search(seed, space).run(max_time=600.0, max_evaluations=30)
            for seed in range(4)
        ]
        specs = [
            CampaignSpec(
                search=make_search(seed, space),
                max_time=600.0,
                max_evaluations=30,
                label=f"c{seed}",
            )
            for seed in range(4)
        ]
        runner = CampaignRunner(
            specs,
            batch_surrogate_fits=batch_fits,
            batch_candidate_scoring=batch_scoring,
            # Fusion counters below assume global groups: one shard per tick
            # regardless of the REPRO_STEP_WORKERS matrix value.
            step_shards=1,
        )
        batched = runner.run()
        assert len(batched) == 4
        for a, b in zip(sequential, batched):
            assert_identical(a, b)
        if batch_fits:
            assert runner.num_fleet_fits > 0
            assert runner.num_fleet_fitted_surrogates >= 2 * runner.num_fleet_fits

    def test_runner_with_gp_campaigns_matches_sequential(self):
        space = make_space()
        sequential = [
            make_gp_search(seed, space).run(max_time=400.0, max_evaluations=16)
            for seed in range(2)
        ]
        specs = [
            CampaignSpec(
                search=make_gp_search(seed, space),
                max_time=400.0,
                max_evaluations=16,
            )
            for seed in range(2)
        ]
        batched = CampaignRunner(specs).run()
        for a, b in zip(sequential, batched):
            assert_identical(a, b)

    def test_mixed_surrogates_and_budgets(self):
        space = make_space()
        # Surrogates are stateful (RNG): each execution needs a fresh one.
        setups = [
            lambda: dict(surrogate=RandomForestSurrogate(n_estimators=6, seed=0), seed=0),
            lambda: dict(surrogate="GP", seed=1),
            lambda: dict(surrogate=RandomForestSurrogate(n_estimators=6, seed=2), seed=2),
        ]
        budgets = [(500.0, 24), (350.0, 12), (650.0, 30)]
        sequential = [
            make_search(space=space, **kw()).run(max_time=t, max_evaluations=m)
            for kw, (t, m) in zip(setups, budgets)
        ]
        specs = [
            CampaignSpec(search=make_search(space=space, **kw()), max_time=t, max_evaluations=m)
            for kw, (t, m) in zip(setups, budgets)
        ]
        batched = CampaignRunner(specs).run()
        for a, b in zip(sequential, batched):
            assert_identical(a, b)

    def test_sharded_scoring_campaigns_match(self):
        """score_shards on inside the runner stays bit-identical too."""
        space = make_space()
        sequential = [
            make_search(seed, space, score_shards=3).run(max_time=500.0, max_evaluations=20)
            for seed in range(3)
        ]
        specs = [
            CampaignSpec(
                search=make_search(seed, space, score_shards=3),
                max_time=500.0,
                max_evaluations=20,
            )
            for seed in range(3)
        ]
        batched = CampaignRunner(specs).run()
        for a, b in zip(sequential, batched):
            assert_identical(a, b)

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            CampaignRunner([])


class TestRunBatcher:
    def test_run_batcher_receives_spec_indices_and_sets_runtimes(self):
        space = make_space()
        seen = []

        def batcher(requests):
            seen.append([idx for idx, _ in requests])
            return [[run_function(c) for c in configs] for _, configs in requests]

        specs = [
            CampaignSpec(search=make_search(seed, space), max_time=500.0, max_evaluations=15)
            for seed in range(3)
        ]
        batched = CampaignRunner(specs, run_batcher=batcher).run()
        sequential = [
            make_search(seed, space).run(max_time=500.0, max_evaluations=15)
            for seed in range(3)
        ]
        for a, b in zip(sequential, batched):
            assert_identical(a, b)
        # The initial submissions come through the batcher as one pass.
        assert seen[0] == [0, 1, 2]
        assert all(all(0 <= idx < 3 for idx in batch) for batch in seen)


class TestServiceBackedCampaigns:
    def test_campaigns_share_a_worker_pool(self):
        space = make_space()
        pool = SharedWorkerPool(num_workers=6)
        specs = [
            CampaignSpec(
                search=CBOSearch(
                    space,
                    run_function,
                    num_workers=6,
                    surrogate=RandomForestSurrogate(n_estimators=6, seed=seed),
                    num_candidates=32,
                    n_initial_points=4,
                    seed=seed,
                    evaluator_factory=pool.evaluator_factory(),
                ),
                max_time=800.0,
                max_evaluations=20,
            )
            for seed in range(2)
        ]
        results = CampaignRunner(specs).run()
        assert all(r.num_evaluations > 0 for r in results)
        # Both campaigns ran on the shared clock and the shared workers.
        assert 0.0 < pool.utilization(800.0) <= 1.0
        total = sum(r.num_evaluations for r in results)
        assert total == sum(len(r.history) for r in results)


class TestHeterogeneousFleets:
    def test_campaigns_over_different_spaces(self):
        """Fused scoring/fitting must group by space width, not crash."""
        narrow = SearchSpace(
            [IntegerParameter("batch", 1, 256, log=True), RealParameter("rate", 0.1, 10.0)]
        )

        def narrow_runtime(config):
            return 25.0 + 5.0 * abs(math.log(config["batch"]) - 3.0)

        wide = make_space()
        sequential = [
            CBOSearch(narrow, narrow_runtime, num_workers=4,
                      surrogate=RandomForestSurrogate(n_estimators=6, seed=0),
                      num_candidates=32, n_initial_points=4, seed=0).run(
                max_time=500.0, max_evaluations=18
            ),
            make_search(1, wide).run(max_time=500.0, max_evaluations=18),
        ]
        specs = [
            CampaignSpec(
                search=CBOSearch(narrow, narrow_runtime, num_workers=4,
                                 surrogate=RandomForestSurrogate(n_estimators=6, seed=0),
                                 num_candidates=32, n_initial_points=4, seed=0),
                max_time=500.0,
                max_evaluations=18,
            ),
            CampaignSpec(search=make_search(1, wide), max_time=500.0, max_evaluations=18),
        ]
        batched = CampaignRunner(specs).run()
        for a, b in zip(sequential, batched):
            assert_identical(a, b)


def make_source_history(space, n=60, seed=123):
    history = SearchHistory(space)
    rng = np.random.default_rng(seed)
    for i, config in enumerate(space.sample(n, rng)):
        history.record(config, run_function(config), float(i), float(i + 1))
    return history


class TestTransferCampaignFleet:
    """The transfer scenario: TL-seeded campaigns with fused prior refreshes."""

    def test_refresh_campaigns_match_sequential_runs(self):
        space = make_space()
        sequential = [
            make_refresh_search(seed, space).run(max_time=700.0, max_evaluations=32)
            for seed in range(3)
        ]
        runner = CampaignRunner(
            [
                CampaignSpec(
                    search=make_refresh_search(seed, space),
                    max_time=700.0,
                    max_evaluations=32,
                )
                for seed in range(3)
            ],
            step_shards=1,  # the VAE-fleet counters assume global groups
        )
        batched = runner.run()
        for a, b in zip(sequential, batched):
            assert_identical(a, b)
        assert runner.num_prior_refreshes > 0
        assert runner.num_vae_fleet_fits > 0
        assert runner.num_vae_fleet_members <= runner.num_prior_refreshes

    def test_batch_vae_fits_escape_hatch_matches(self):
        space = make_space()
        sequential = [
            make_refresh_search(seed, space).run(max_time=600.0, max_evaluations=24)
            for seed in range(2)
        ]
        runner = CampaignRunner(
            [
                CampaignSpec(
                    search=make_refresh_search(seed, space),
                    max_time=600.0,
                    max_evaluations=24,
                )
                for seed in range(2)
            ],
            batch_vae_fits=False,
        )
        batched = runner.run()
        for a, b in zip(sequential, batched):
            assert_identical(a, b)
        assert runner.num_prior_refreshes > 0
        assert runner.num_vae_fleet_fits == 0

    def test_transfer_seeded_campaigns_refresh_in_the_runner(self):
        """Campaigns constructed with TransferLearningPriors keep refreshing
        from their own incumbents inside the batched runner."""
        space = make_space()
        source = make_source_history(space)

        def make(seed):
            return VAEABOSearch(
                space,
                run_function,
                source_history=source,
                vae_epochs=15,
                num_workers=6,
                surrogate=RandomForestSurrogate(n_estimators=6, seed=seed),
                num_candidates=48,
                n_initial_points=5,
                prior_refresh_interval=8,
                prior_refresh_top_k=8,
                prior_refresh_epochs=12,
                seed=seed,
            )

        sequential = [make(seed).run(max_time=700.0, max_evaluations=28) for seed in range(2)]
        runner = CampaignRunner(
            [
                CampaignSpec(search=make(seed), max_time=700.0, max_evaluations=28)
                for seed in range(2)
            ]
        )
        batched = runner.run()
        for a, b in zip(sequential, batched):
            assert_identical(a, b)
        assert runner.num_prior_refreshes > 0

    def test_deferred_transfer_fits_fuse_at_construction(self):
        """``defer_transfer_fit=True`` cohorts train their initial transfer
        VAEs as one fleet pass at runner start, bit-identical to eager
        construction-time fits."""
        space = make_space()
        # Big enough that the top quantile clears min_configurations_for_vae.
        source = make_source_history(space, n=120)

        def make(seed, defer):
            return VAEABOSearch(
                space,
                run_function,
                source_history=source,
                vae_epochs=15,
                num_workers=6,
                surrogate=RandomForestSurrogate(n_estimators=6, seed=seed),
                num_candidates=48,
                n_initial_points=5,
                seed=seed,
                defer_transfer_fit=defer,
            )

        sequential = [
            make(seed, False).run(max_time=600.0, max_evaluations=20)
            for seed in range(3)
        ]
        specs = [
            CampaignSpec(search=make(seed, True), max_time=600.0, max_evaluations=20)
            for seed in range(3)
        ]
        assert all(spec.search.pending_transfer_fit is not None for spec in specs)
        runner = CampaignRunner(specs)
        batched = runner.run()
        for a, b in zip(sequential, batched):
            assert_identical(a, b)
        assert runner.num_transfer_fleet_fits == 1
        assert runner.num_transfer_fleet_members == 3
        assert all(spec.search.pending_transfer_fit is None for spec in specs)

    def test_deferred_singleton_takes_the_solo_backstop(self):
        """A deferred fleet of one trains through the execution backstop."""
        space = make_space()
        source = make_source_history(space, n=120)

        def make(defer):
            return VAEABOSearch(
                space,
                run_function,
                source_history=source,
                vae_epochs=15,
                num_workers=6,
                surrogate=RandomForestSurrogate(n_estimators=6, seed=0),
                num_candidates=48,
                n_initial_points=5,
                seed=0,
                defer_transfer_fit=defer,
            )

        eager = make(False).run(max_time=600.0, max_evaluations=20)
        runner = CampaignRunner(
            [CampaignSpec(search=make(True), max_time=600.0, max_evaluations=20)]
        )
        batched = runner.run()
        assert_identical(eager, batched[0])
        assert runner.num_transfer_fleet_fits == 0
        # And entirely outside a runner, a deferred solo run is unchanged.
        assert_identical(eager, make(True).run(max_time=600.0, max_evaluations=20))

    def test_solo_run_installs_refreshed_prior(self):
        space = make_space()
        search = make_refresh_search(0, space)
        execution = search.start(max_time=700.0, max_evaluations=32)
        while execution.advance():
            pass
        assert execution.num_prior_refreshes > 0
        prior = execution.optimizer.prior
        assert isinstance(prior, TransferLearningPrior)
        # The refreshed prior spans the whole space (no new parameters) and
        # carries the campaign's own top-k incumbents.
        assert prior.new_parameters == []
        assert len(prior.top_configurations) == search.prior_refresh_top_k

    def test_refresh_knob_validation(self):
        space = make_space()
        with pytest.raises(ValueError):
            CBOSearch(space, run_function, prior_refresh_interval=0)
        with pytest.raises(ValueError):
            CBOSearch(space, run_function, prior_refresh_interval=4, prior_refresh_top_k=0)
        with pytest.raises(ValueError):
            CBOSearch(space, run_function, prior_refresh_interval=4, prior_refresh_epochs=0)


class TestFleetFitErrorPath:
    def test_incompatible_fleet_leaves_rng_streams_untouched(self):
        """A rejected fleet must not advance any member's generator."""
        import numpy as np
        from repro.core.surrogate.random_forest import fit_forest_fleet

        rng = np.random.default_rng(0)
        X, y = rng.random((60, 4)), rng.random(60)
        good = RandomForestSurrogate(seed=1)
        reference = RandomForestSurrogate(seed=1)
        bad = RandomForestSurrogate(seed=2, max_depth=5)
        with pytest.raises(ValueError, match="incompatible"):
            fit_forest_fleet([(good, X, y), (bad, X, y)])
        good.fit(X, y)
        reference.fit(X, y)
        for ta, tb in zip(good._trees, reference._trees):
            assert np.array_equal(ta.threshold, tb.threshold)


class TestGPFleetRunnerIdentity:
    """GP campaigns through the batched runner are bit-identical to solo runs.

    The GP counterpart of the RF/VAE runner identity tests: batched GPFleet
    fits (stacked Cholesky full refits, concatenated factor extensions) and
    fused posterior scoring must not change any campaign's results — the
    ``batch_gp_fits``/``batch_candidate_scoring`` escape hatches reproduce the
    same searches with the fusion off.  A reduced size runs in tier-1; the
    full 8-campaign fleet is marked ``slow``.
    """

    @pytest.mark.parametrize(
        "batch_gp_fits,batch_scoring",
        [(True, True), (True, False), (False, True), (False, False)],
    )
    def test_gp_campaigns_match_sequential(self, batch_gp_fits, batch_scoring):
        space = make_space()
        sequential = [
            make_gp_search(seed, space, num_workers=6, n_initial_points=5).run(
                max_time=600.0, max_evaluations=22
            )
            for seed in range(3)
        ]
        runner = CampaignRunner(
            [
                CampaignSpec(
                    search=make_gp_search(seed, space, num_workers=6, n_initial_points=5),
                    max_time=600.0,
                    max_evaluations=22,
                )
                for seed in range(3)
            ],
            batch_gp_fits=batch_gp_fits,
            batch_candidate_scoring=batch_scoring,
            step_shards=1,  # the GP-fleet counters assume global groups
        )
        batched = runner.run()
        for a, b in zip(sequential, batched):
            assert_identical(a, b)
        fleet_passes = runner.num_gp_fleet_extends + runner.num_gp_fleet_full_fits
        if batch_gp_fits:
            assert fleet_passes > 0
            assert runner.num_gp_fleet_members >= 2 * fleet_passes
        else:
            assert fleet_passes == 0
            assert runner.num_gp_fleet_members == 0
        if batch_scoring and batch_gp_fits:
            assert runner.num_gp_fleet_predicts > 0
        if not batch_scoring:
            assert runner.num_gp_fleet_predicts == 0

    def test_mixed_rf_and_gp_fleet_campaigns(self):
        """RF and GP campaigns in one runner each fuse with their own kind."""
        space = make_space()

        def searches():
            return [
                make_search(0, space),
                make_gp_search(1, space, num_workers=6, n_initial_points=5),
                make_search(2, space),
                make_gp_search(3, space, num_workers=6, n_initial_points=5),
            ]

        sequential = [s.run(max_time=500.0, max_evaluations=18) for s in searches()]
        runner = CampaignRunner(
            [
                CampaignSpec(search=s, max_time=500.0, max_evaluations=18)
                for s in searches()
            ],
            step_shards=1,  # the fleet counters assume global groups
        )
        batched = runner.run()
        for a, b in zip(sequential, batched):
            assert_identical(a, b)
        assert runner.num_fleet_fits > 0
        assert runner.num_gp_fleet_extends + runner.num_gp_fleet_full_fits > 0


@pytest.mark.slow
class TestGPFleetRunnerFullSize:
    def test_eight_gp_campaigns_bit_identical_to_sequential(self):
        """Full-size acceptance: 8 concurrent GP campaigns, bit-identical."""
        space = make_space()

        def make(seed):
            return make_gp_search(
                seed, space, num_workers=8, num_candidates=96, n_initial_points=6
            )

        sequential = [
            make(seed).run(max_time=float("inf"), max_evaluations=90)
            for seed in range(8)
        ]
        runner = CampaignRunner(
            [
                CampaignSpec(
                    search=make(seed), max_time=float("inf"), max_evaluations=90
                )
                for seed in range(8)
            ]
        )
        batched = runner.run()
        assert len(batched) == 8
        for a, b in zip(sequential, batched):
            assert_identical(a, b)
        # At this size every fleet mode must have engaged: batched factor
        # extensions, stacked full refits and fused posterior scoring.
        assert runner.num_gp_fleet_extends > 0
        assert runner.num_gp_fleet_full_fits > 0
        assert runner.num_gp_fleet_predicts > 0
        fleet_passes = runner.num_gp_fleet_extends + runner.num_gp_fleet_full_fits
        assert runner.num_gp_fleet_members >= 2 * fleet_passes


class TestQuarantineAndRunnerJournal:
    """Graceful degradation: one failing campaign must not sink the batch."""

    @staticmethod
    def make_exploding_run(limit):
        """A run function that works ``limit`` times, then always raises."""
        calls = {"n": 0}

        def run(config):
            calls["n"] += 1
            if calls["n"] > limit:
                raise RuntimeError("injected campaign failure")
            return run_function(config)

        return run

    def test_runner_journals_campaigns_per_spec(self, tmp_path):
        from repro.core.journal import CampaignJournal

        space = make_space()
        sequential = [
            make_search(seed, space).run(max_time=600.0, max_evaluations=24)
            for seed in range(3)
        ]
        runner = CampaignRunner(
            [
                CampaignSpec(
                    search=make_search(seed, space),
                    max_time=600.0,
                    max_evaluations=24,
                    journal_dir=tmp_path / f"c{seed}",
                )
                for seed in range(3)
            ]
        )
        batched = runner.run()
        for seed, (a, b) in enumerate(zip(sequential, batched)):
            assert_identical(a, b)
            checkpoint = CampaignJournal.read_checkpoint(tmp_path / f"c{seed}")
            assert checkpoint["finished"] is True
            assert checkpoint["num_rows"] == len(b.history)

    def test_quarantine_isolates_the_failing_campaign(self):
        space = make_space()
        solo = [
            make_search(seed, space).run(max_time=600.0, max_evaluations=24)
            for seed in (0, 2)
        ]
        specs = [
            CampaignSpec(
                search=make_search(0, space), max_time=600.0,
                max_evaluations=24, label="good-0",
            ),
            CampaignSpec(
                search=CBOSearch(
                    space,
                    self.make_exploding_run(12),
                    num_workers=6,
                    surrogate=RandomForestSurrogate(n_estimators=6, seed=1),
                    num_candidates=48,
                    n_initial_points=5,
                    seed=1,
                ),
                max_time=600.0,
                max_evaluations=24,
                label="doomed",
            ),
            CampaignSpec(
                search=make_search(2, space), max_time=600.0,
                max_evaluations=24, label="good-2",
            ),
        ]
        runner = CampaignRunner(specs, on_campaign_error="quarantine")
        results = runner.run()
        assert len(runner.quarantined) == 1
        entry = runner.quarantined[0]
        assert entry.index == 1
        assert entry.label == "doomed"
        assert "injected campaign failure" in str(entry.error)
        # Survivors finish bit-identical to their solo runs: the quarantine
        # must not perturb fleet grouping determinism for healthy campaigns.
        assert_identical(solo[0], results[0])
        assert_identical(solo[1], results[2])
        # The doomed campaign still reports whatever it had completed.
        assert len(results[1].history) < 24

    def test_quarantined_campaign_is_resumable_from_its_journal(self, tmp_path):
        space = make_space()
        doomed = CampaignSpec(
            search=CBOSearch(
                space,
                self.make_exploding_run(12),
                num_workers=6,
                surrogate=RandomForestSurrogate(n_estimators=6, seed=1),
                num_candidates=48,
                n_initial_points=5,
                seed=1,
            ),
            max_time=600.0,
            max_evaluations=24,
            journal_dir=tmp_path / "doomed",
        )
        runner = CampaignRunner(
            [doomed, CampaignSpec(search=make_search(2, space), max_time=600.0, max_evaluations=24)],
            on_campaign_error="quarantine",
        )
        runner.run()
        assert [q.index for q in runner.quarantined] == [0]
        # Resume with a repaired run function (same seed/surrogate/space):
        # the journal restores the completed evaluations and the campaign
        # runs to its budget.
        repaired = CBOSearch(
            space,
            run_function,
            num_workers=6,
            surrogate=RandomForestSurrogate(n_estimators=6, seed=1),
            num_candidates=48,
            n_initial_points=5,
            seed=1,
        )
        execution = repaired.resume(tmp_path / "doomed")
        restored = len(execution.history)
        assert restored > 0
        while execution.advance():
            pass
        result = execution.result()
        assert result.num_evaluations >= max(restored, 24 - 6)
        assert math.isfinite(result.best_runtime)

    def test_raise_mode_propagates_the_error(self):
        space = make_space()
        specs = [
            CampaignSpec(
                search=CBOSearch(
                    space,
                    self.make_exploding_run(8),
                    num_workers=6,
                    surrogate=RandomForestSurrogate(n_estimators=6, seed=1),
                    num_candidates=48,
                    n_initial_points=5,
                    seed=1,
                ),
                max_time=600.0,
                max_evaluations=24,
            ),
        ]
        with pytest.raises(RuntimeError, match="injected campaign failure"):
            CampaignRunner(specs).run()

    def test_on_campaign_error_is_validated(self):
        space = make_space()
        specs = [CampaignSpec(search=make_search(0, space), max_time=100.0)]
        with pytest.raises(ValueError, match="on_campaign_error"):
            CampaignRunner(specs, on_campaign_error="ignore")
