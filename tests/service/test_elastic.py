"""Elastic-fleet bit-identity: joining/leaving must not perturb anyone.

The elasticity contract of :class:`~repro.service.ElasticCampaignRunner`:
whatever the join schedule (arrival ticks), leave pattern (budgets, hence
finish times) and quarantine events, every campaign's
:class:`~repro.core.search.SearchHistory` is bitwise equal to the same
search run solo through ``CBOSearch.run``.  Hypothesis draws the schedules;
the full-size case is marked ``slow``.

Admission control (``max_inflight``, ``max_inflight_per_tenant``) is pinned
deterministically: FIFO order, per-tenant overtaking, and no starvation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from fixtures import (
    assert_results_identical as assert_identical,
    make_gp_search,
    make_refresh_search,
    make_service_search,
    make_service_space,
    service_run_function,
)
from repro.core.search import CBOSearch
from repro.core.surrogate import RandomForestSurrogate
from repro.service import CampaignSpec, ElasticCampaignRunner

# One fixed budget per campaign kind: mixed kinds make mixed fleet groups,
# mixed budgets make staggered leaves.
KINDS = {
    "rf": (make_service_search, 600.0, 18),
    "gp": (make_gp_search, 400.0, 12),
    "refresh": (make_refresh_search, 700.0, 24),
}

#: Solo baselines keyed by (kind, seed) — Hypothesis redraws the same small
#: seed set across examples, so the sequential runs are computed once.
_SOLO_CACHE = {}


def solo_result(kind, seed):
    key = (kind, seed)
    if key not in _SOLO_CACHE:
        factory, max_time, max_evaluations = KINDS[kind]
        _SOLO_CACHE[key] = factory(seed, make_service_space()).run(
            max_time=max_time, max_evaluations=max_evaluations
        )
    return _SOLO_CACHE[key]


def make_spec(kind, seed, space, doomed=False):
    factory, max_time, max_evaluations = KINDS[kind]
    if doomed:
        search = make_doomed_search(seed, space)
    else:
        search = factory(seed, space)
    return CampaignSpec(
        search=search,
        max_time=max_time,
        max_evaluations=max_evaluations,
        label=f"{kind}-{seed}",
    )


def make_doomed_search(seed, space, limit=9):
    """An RF campaign whose run function dies after ``limit`` evaluations."""
    calls = {"n": 0}

    def run(config):
        calls["n"] += 1
        if calls["n"] > limit:
            raise RuntimeError("injected elastic failure")
        return service_run_function(config)

    return CBOSearch(
        space,
        run,
        num_workers=6,
        surrogate=RandomForestSurrogate(n_estimators=6, seed=seed),
        num_candidates=48,
        n_initial_points=5,
        seed=seed,
    )


schedules = st.lists(
    st.tuples(
        st.sampled_from(sorted(KINDS)),   # campaign kind
        st.integers(min_value=0, max_value=5),  # arrival tick
        st.booleans(),                     # quarantined mid-flight?
    ),
    min_size=2,
    max_size=4,
)


class TestElasticBitIdentity:
    @settings(max_examples=10, deadline=None)
    @given(schedule=schedules)
    def test_any_join_leave_quarantine_schedule_is_bit_identical(self, schedule):
        space = make_service_space()
        runner = ElasticCampaignRunner(on_campaign_error="quarantine")
        for seed, (kind, arrival, doomed) in enumerate(schedule):
            index = runner.admit(
                make_spec(kind, seed, space, doomed=doomed),
                arrival_tick=arrival,
            )
            assert index == seed
        results = runner.run_until_complete()
        assert len(results) == len(schedule)
        quarantined = {q.index for q in runner.quarantined}
        for seed, (kind, _, doomed) in enumerate(schedule):
            if doomed:
                # The injected failure fires after the initial batch, so the
                # campaign is quarantined mid-flight with a partial history.
                assert seed in quarantined
                assert len(results[seed].history) < KINDS[kind][2]
            else:
                assert seed not in quarantined
                assert_identical(solo_result(kind, seed), results[seed])

    def test_mid_flight_join_reforms_fleet_groups(self):
        """A same-kind campaign joining later still fuses with the cohort."""
        space = make_service_space()
        # step_shards=1: the fusion counters below assume global groups.
        runner = ElasticCampaignRunner(step_shards=1)
        runner.admit(make_spec("rf", 0, space))
        runner.admit(make_spec("rf", 1, space))
        runner.admit(make_spec("rf", 2, space), arrival_tick=4)
        results = runner.run_until_complete()
        for seed in range(3):
            assert_identical(solo_result("rf", seed), results[seed])
        # The late joiner fused with the incumbents once admitted.
        assert runner.num_fleet_fits > 0
        assert runner.num_fleet_fitted_surrogates > 2 * 2

    def test_admission_while_ticking(self):
        """admit() between tick() calls — the registry's driving pattern."""
        space = make_service_space()
        runner = ElasticCampaignRunner()
        runner.admit(make_spec("rf", 0, space))
        for _ in range(6):
            runner.tick()
        runner.admit(make_spec("rf", 1, space))
        results = runner.run_until_complete()
        assert_identical(solo_result("rf", 0), results[0])
        assert_identical(solo_result("rf", 1), results[1])

    @pytest.mark.slow
    @settings(max_examples=5, deadline=None)
    @given(
        schedule=st.lists(
            st.tuples(
                st.sampled_from(sorted(KINDS)),
                st.integers(min_value=0, max_value=8),
                st.booleans(),
            ),
            min_size=5,
            max_size=7,
        ),
        max_inflight=st.integers(min_value=2, max_value=4),
    )
    def test_full_size_schedules_with_admission_control(
        self, schedule, max_inflight
    ):
        space = make_service_space()
        runner = ElasticCampaignRunner(
            max_inflight=max_inflight, on_campaign_error="quarantine"
        )
        for seed, (kind, arrival, doomed) in enumerate(schedule):
            runner.admit(
                make_spec(kind, seed, space, doomed=doomed),
                arrival_tick=arrival,
            )
        results = runner.run_until_complete()
        quarantined = {q.index for q in runner.quarantined}
        for seed, (kind, _, doomed) in enumerate(schedule):
            if doomed:
                assert seed in quarantined
            else:
                assert_identical(solo_result(kind, seed), results[seed])


class TestAdmissionControl:
    def test_max_inflight_serialises_and_preserves_identity(self):
        space = make_service_space()
        runner = ElasticCampaignRunner(max_inflight=1)
        for seed in range(3):
            runner.admit(make_spec("rf", seed, space))
        results = runner.run_until_complete()
        assert runner.admitted_order == [0, 1, 2]
        for seed in range(3):
            assert_identical(solo_result("rf", seed), results[seed])
        # Serialised campaigns never share a tick, so nothing fuses.
        assert runner.num_fleet_fits == 0

    def test_num_inflight_respects_the_cap(self):
        space = make_service_space()
        runner = ElasticCampaignRunner(max_inflight=2)
        for seed in range(4):
            runner.admit(make_spec("rf", seed, space))
        peak = 0
        while runner._active or runner._admission_queue:
            runner.tick()
            peak = max(peak, runner.num_inflight)
        assert peak == 2

    def test_per_tenant_cap_lets_other_tenants_overtake(self):
        space = make_service_space()
        runner = ElasticCampaignRunner(max_inflight_per_tenant=1)
        runner.admit(make_spec("rf", 0, space), tenant="alice")
        runner.admit(make_spec("rf", 1, space), tenant="alice")
        runner.admit(make_spec("rf", 2, space), tenant="bob")
        runner.tick()
        # Alice's second campaign is held back by her tenant bound; Bob's
        # passes it in the queue (per-tenant fairness at admission).
        assert runner.admitted_order == [0, 2]
        assert runner.num_waiting == 1
        results = runner.run_until_complete()
        assert runner.admitted_order == [0, 2, 1]
        for seed in range(3):
            assert_identical(solo_result("rf", seed), results[seed])

    def test_global_block_preserves_fifo(self):
        space = make_service_space()
        runner = ElasticCampaignRunner(max_inflight=1)
        runner.admit(make_spec("rf", 0, space), tenant="alice")
        runner.admit(make_spec("rf", 1, space), tenant="alice")
        runner.admit(make_spec("rf", 2, space), tenant="bob")
        runner.tick()
        # The global limit blocks everyone equally — bob must not overtake,
        # or a queue of alices could starve her indefinitely.
        assert runner.admitted_order == [0]
        results = runner.run_until_complete()
        assert runner.admitted_order == [0, 1, 2]
        assert all(r is not None for r in results)

    def test_quarantined_departure_frees_an_admission_slot(self):
        space = make_service_space()
        runner = ElasticCampaignRunner(
            max_inflight=1, on_campaign_error="quarantine"
        )
        runner.admit(make_spec("rf", 0, space, doomed=True))
        runner.admit(make_spec("rf", 1, space))
        results = runner.run_until_complete()
        assert [q.index for q in runner.quarantined] == [0]
        assert_identical(solo_result("rf", 1), results[1])

    def test_validation(self):
        with pytest.raises(ValueError, match="max_inflight"):
            ElasticCampaignRunner(max_inflight=0)
        with pytest.raises(ValueError, match="max_inflight_per_tenant"):
            ElasticCampaignRunner(max_inflight_per_tenant=0)
        runner = ElasticCampaignRunner()
        with pytest.raises(RuntimeError, match="admit"):
            runner._begin()
