"""Burst regression: 50 short-lived campaigns under admission control.

The service-scale smoke the elastic runner must absorb: a burst of many
small tenant-labelled campaigns arriving in waves against a shared worker
pool.  Pinned here: every campaign is eventually admitted exactly once and
runs to completion (no starvation), the in-flight cap holds at every tick,
admission stays FIFO within each tenant, and the pool's per-tenant slot
caps (``tenant_slots``) bound each tenant's concurrent evaluations.
"""

import itertools

import pytest

from fixtures import make_service_space, service_run_function
from repro.core.search import CBOSearch
from repro.core.surrogate import RandomForestSurrogate
from repro.service import (
    CampaignSpec,
    ElasticCampaignRunner,
    SharedWorkerPool,
)

NUM_CAMPAIGNS = 50
MAX_INFLIGHT = 8
TENANTS = ("alice", "bob", "carol")


def make_burst_spec(index, space, pool=None, max_time=400.0):
    """A deliberately tiny campaign — burst tests care about churn, not BO.

    Pool-backed specs need a roomy ``max_time``: the shared pool's virtual
    clock is global, so late arrivals burn horizon while earlier waves hold
    the workers.
    """
    tenant = TENANTS[index % len(TENANTS)]
    factory = None if pool is None else pool.evaluator_factory(tenant=tenant)
    search = CBOSearch(
        space,
        service_run_function,
        num_workers=4,
        surrogate=RandomForestSurrogate(n_estimators=4, seed=index),
        num_candidates=16,
        n_initial_points=3,
        seed=index,
        evaluator_factory=factory,
    )
    return CampaignSpec(
        search=search,
        max_time=max_time,
        max_evaluations=8,
        label=f"burst-{index}",
        tenant=tenant,
    )


def run_burst(runner, specs, arrival_of):
    for index, spec in enumerate(specs):
        runner.admit(spec, arrival_tick=arrival_of(index))
    peak_inflight = 0
    while runner._active or runner._admission_queue:
        runner.tick()
        peak_inflight = max(peak_inflight, runner.num_inflight)
    return runner.results(), peak_inflight


class TestBurstAdmission:
    def test_fifty_campaign_burst_completes_without_starvation(self):
        space = make_service_space()
        runner = ElasticCampaignRunner(max_inflight=MAX_INFLIGHT)
        specs = [make_burst_spec(i, space) for i in range(NUM_CAMPAIGNS)]
        # Five waves of ten, two ticks apart.
        results, peak = run_burst(runner, specs, arrival_of=lambda i: 2 * (i // 10))

        # No starvation: every campaign admitted exactly once and finished.
        assert sorted(runner.admitted_order) == list(range(NUM_CAMPAIGNS))
        assert len(results) == NUM_CAMPAIGNS
        assert all(r is not None for r in results)
        assert all(len(r.history) == 8 for r in results)
        assert runner.num_waiting == 0
        assert runner.num_inflight == 0

        # The cap held at every tick and was actually exercised by the burst.
        assert peak <= MAX_INFLIGHT
        assert peak == MAX_INFLIGHT

    def test_admission_is_fifo_within_each_tenant(self):
        space = make_service_space()
        runner = ElasticCampaignRunner(
            max_inflight=MAX_INFLIGHT, max_inflight_per_tenant=2
        )
        specs = [make_burst_spec(i, space) for i in range(24)]
        results, peak = run_burst(runner, specs, arrival_of=lambda i: 0)

        assert all(r is not None for r in results)
        assert peak <= MAX_INFLIGHT
        for tenant in TENANTS:
            indices = [
                i for i in runner.admitted_order if specs[i].tenant == tenant
            ]
            # A tenant's own campaigns never overtake each other.
            assert indices == sorted(indices)

    def test_per_tenant_inflight_cap_bounds_each_tenants_share(self):
        space = make_service_space()
        runner = ElasticCampaignRunner(
            max_inflight=6, max_inflight_per_tenant=2
        )
        specs = [make_burst_spec(i, space) for i in range(18)]
        for index, spec in enumerate(specs):
            runner.admit(spec, arrival_tick=0)
        while runner._active or runner._admission_queue:
            runner.tick()
            per_tenant = {t: 0 for t in TENANTS}
            for execution in runner._active:
                index = runner._index_of[id(execution)]
                per_tenant[specs[index].tenant] += 1
            assert all(count <= 2 for count in per_tenant.values())
        assert sorted(runner.admitted_order) == list(range(18))


class TestTenantSlotShares:
    def test_pool_slot_caps_bound_concurrent_evaluations(self):
        space = make_service_space()
        pool = SharedWorkerPool(
            num_workers=12, tenant_slots={t: 4 for t in TENANTS}
        )
        runner = ElasticCampaignRunner(max_inflight=MAX_INFLIGHT)
        specs = [
            make_burst_spec(i, space, pool=pool, max_time=100_000.0)
            for i in range(NUM_CAMPAIGNS)
        ]
        results, peak = run_burst(runner, specs, arrival_of=lambda i: i // 10)

        assert all(r is not None for r in results)
        # The stop budget is a threshold: batched collects on the shared
        # pool may land a few extra completions past the 8th.
        assert all(len(r.history) >= 8 for r in results)
        assert peak <= MAX_INFLIGHT
        # The pool enforced each tenant's slot share throughout the burst —
        # including for the over-submitted asks that finished campaigns
        # abandon in flight, which still occupy (capped) slots at the end.
        assert pool.tenant_peak_running
        for tenant, peak_running in pool.tenant_peak_running.items():
            assert peak_running <= 4, (tenant, peak_running)
        assert all(pool.tenant_running(t) <= 4 for t in TENANTS)

    def test_uncapped_tenants_share_the_whole_pool(self):
        space = make_service_space()
        pool = SharedWorkerPool(num_workers=6, tenant_slots={"alice": 2})
        runner = ElasticCampaignRunner()
        specs = [
            make_burst_spec(i, space, pool=pool, max_time=100_000.0)
            for i in range(6)
        ]
        results, _ = run_burst(runner, specs, arrival_of=lambda i: 0)
        assert all(r is not None for r in results)
        assert pool.tenant_peak_running["alice"] <= 2
        # bob and carol have no cap: free to exceed alice's bound.
        uncapped_peak = max(
            pool.tenant_peak_running.get("bob", 0),
            pool.tenant_peak_running.get("carol", 0),
        )
        assert uncapped_peak >= 1
