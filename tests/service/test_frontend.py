"""Frontend protocol tests: registry semantics, StudyClient, HTTP round-trips.

The registry/client layer must keep two promises at once: the *protocol*
one (create-or-attach by name, idempotent suggest, strict suggest→report
alternation, typed errors mapped onto HTTP codes) and the *numerical* one —
driving a study through the ask/tell surface, in-process or over the wire,
is bit-identical to ``CBOSearch.run``.  The HTTP cases run against a live
:class:`~repro.service.StudyFrontend` thread on a loopback port.
"""

import json
import urllib.error
import urllib.request

import pytest

from fixtures import (
    assert_results_identical,
    make_service_search,
    service_run_function,
)
from repro.service import (
    CampaignRegistry,
    ElasticCampaignRunner,
    HTTPStudyClient,
    ProtocolError,
    RegistryError,
    StudyClient,
    StudyConflictError,
    StudyFrontend,
    UnknownStudyError,
    UnknownTemplateError,
)

TEMPLATES = {"service": lambda seed=0, **params: make_service_search(seed, **params)}
BUDGET = dict(max_time=600.0, max_evaluations=12)


def make_registry(**kwargs):
    return CampaignRegistry(TEMPLATES, **kwargs)


def solo_result(seed=0):
    return make_service_search(seed).run(**BUDGET)


@pytest.fixture()
def frontend():
    with StudyFrontend(make_registry()) as server:
        yield server


def raw_post(url, body: bytes, content_type="application/json"):
    """POST raw bytes, returning (code, payload) without raising."""
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": content_type}, method="POST"
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


class TestRegistrySemantics:
    def test_create_then_attach_by_name(self):
        registry = make_registry()
        record, created = registry.create_study("tune-1", seed=3, **BUDGET)
        assert created and not record.attached
        again, created_again = registry.create_study("tune-1")
        assert again is record
        assert not created_again

    def test_if_exists_raise_demands_a_fresh_name(self):
        registry = make_registry()
        registry.create_study("tune-1")
        with pytest.raises(StudyConflictError):
            registry.create_study("tune-1", if_exists="raise")

    def test_invalid_names_and_modes_are_rejected(self):
        registry = make_registry()
        for bad in ("", "no spaces", "no/slash", "x" * 129):
            with pytest.raises(RegistryError):
                registry.create_study(bad)
        with pytest.raises(RegistryError, match="mode"):
            registry.create_study("ok", mode="psychic")
        with pytest.raises(RegistryError, match="if_exists"):
            registry.create_study("ok", if_exists="explode")

    def test_unknown_template_is_typed(self):
        registry = make_registry()
        with pytest.raises(UnknownTemplateError):
            registry.create_study("tune-1", template="nope")
        two = CampaignRegistry({"a": TEMPLATES["service"], "b": TEMPLATES["service"]})
        with pytest.raises(UnknownTemplateError, match="required"):
            two.create_study("tune-1")  # ambiguous default

    def test_suggest_is_idempotent_until_reported(self):
        registry = make_registry()
        registry.create_study("tune-1", **BUDGET)
        first = registry.suggest("tune-1")
        second = registry.suggest("tune-1")
        assert first == second
        registry.report("tune-1", [50.0] * len(first))
        assert registry.suggest("tune-1") != first

    def test_report_protocol_violations(self):
        registry = make_registry()
        registry.create_study("tune-1", **BUDGET)
        batch = registry.suggest("tune-1")
        with pytest.raises(ProtocolError, match="runtimes"):
            registry.report("tune-1", [50.0] * (len(batch) + 1))
        registry.report("tune-1", [50.0] * len(batch))
        # Between report and the next suggest nothing is outstanding.
        with pytest.raises(ProtocolError, match="no suggested batch"):
            registry.report("tune-1", [50.0] * len(batch))

    def test_unknown_study_everywhere(self):
        registry = make_registry()
        for call in (
            registry.suggest,
            registry.status,
            registry.heartbeat,
            registry.result,
            lambda name: registry.report(name, [1.0]),
        ):
            with pytest.raises(UnknownStudyError):
                call("ghost")

    def test_stale_studies_uses_the_injected_clock(self):
        now = {"t": 0.0}
        registry = make_registry(clock=lambda: now["t"])
        registry.create_study("old", **BUDGET)
        now["t"] = 100.0
        registry.create_study("young", **BUDGET)
        assert registry.stale_studies(max_age=50.0) == ["old"]
        registry.heartbeat("old")
        assert registry.stale_studies(max_age=50.0) == []


class TestStudyClient:
    def test_run_is_bit_identical_to_solo(self):
        registry = make_registry()
        client = StudyClient(registry, "tune-1", seed=3, **BUDGET)
        assert client.created and not client.attached
        status = client.run(service_run_function)
        assert status["finished"]
        assert_results_identical(solo_result(3), client.result())

    def test_journal_attach_resumes_bit_identically(self, tmp_path):
        first = make_registry(root=tmp_path)
        client = StudyClient(first, "tune-1", seed=3, **BUDGET)
        for _ in range(3):
            batch = client.suggest()
            client.report([service_run_function(c) for c in batch])
        # A second process: fresh registry over the same journal root.
        second = make_registry(root=tmp_path)
        resumed = StudyClient(second, "tune-1", seed=3, **BUDGET)
        assert not resumed.created
        assert resumed.attached
        resumed.run(service_run_function)
        assert_results_identical(solo_result(3), resumed.result())

    def test_managed_studies_reject_ask_tell_verbs(self):
        registry = make_registry()
        registry.create_study("svc", mode="managed", **BUDGET)
        with pytest.raises(ProtocolError, match="managed"):
            registry.suggest("svc")
        with pytest.raises(ProtocolError, match="managed"):
            registry.report("svc", [1.0])
        assert registry.status("svc")["mode"] == "managed"


class TestBatchedAskService:
    """The registry/frontend protocol must survive fleet-ask grouping.

    Managed studies admitted by the registry run through the elastic
    runner's batched ask; ask/tell studies re-derive suggestions after a
    crash.  Neither protocol promise may depend on ``batch_asks``.
    """

    def test_stale_studies_over_a_batched_managed_cohort(self):
        now = {"t": 0.0}
        # step_shards=1: the ask-fleet counter below assumes global groups.
        runner = ElasticCampaignRunner(batch_asks=True, step_shards=1)
        registry = make_registry(runner=runner, clock=lambda: now["t"])
        registry.create_study("a", mode="managed", **BUDGET)
        registry.create_study("b", mode="managed", seed=1, **BUDGET)
        for _ in range(4):
            runner.tick()
        # Service-side ticking is not client liveness: both studies go
        # stale despite the runner making progress on their campaigns.
        now["t"] = 100.0
        assert registry.stale_studies(max_age=50.0) == ["a", "b"]
        registry.heartbeat("a")
        assert registry.stale_studies(max_age=50.0) == ["b"]
        runner.run_until_complete()
        # Equal template spaces are built per study, so grouping had to
        # unify separately-constructed (equal, non-identical) spaces.
        assert runner.num_ask_fleet_passes > 0
        assert registry.status("a")["finished"]
        assert registry.status("b")["finished"]

    def test_suggest_after_crash_rederives_the_same_batch(self, tmp_path):
        first = make_registry(root=tmp_path)
        client = StudyClient(first, "tune-1", seed=3, **BUDGET)
        for _ in range(2):
            batch = client.suggest()
            client.report([service_run_function(c) for c in batch])
        pending = client.suggest()
        # Crash before the report: a fresh registry over the same journal
        # root must re-derive the identical outstanding batch.
        second = make_registry(root=tmp_path)
        resumed = StudyClient(second, "tune-1", seed=3, **BUDGET)
        assert resumed.attached
        assert resumed.suggest() == pending
        status = resumed.run(service_run_function)
        assert status["finished"]
        assert_results_identical(solo_result(3), resumed.result())

    def test_http_suggest_after_crash_rederives(self, tmp_path):
        with StudyFrontend(make_registry(root=tmp_path)) as server:
            client = HTTPStudyClient(server.address, "tune-1", seed=3, **BUDGET)
            batch = client.suggest()
            client.report([service_run_function(c) for c in batch])
            pending = client.suggest()
        with StudyFrontend(make_registry(root=tmp_path)) as server:
            client = HTTPStudyClient(server.address, "tune-1", seed=3, **BUDGET)
            assert client.attached
            assert client.suggest() == pending
            status = client.run(service_run_function)
            assert status["finished"]
            assert_results_identical(
                solo_result(3), server.registry.result("tune-1")
            )


class TestHTTPFrontend:
    def test_create_is_201_then_attach_is_200(self, frontend):
        code, body = raw_post(
            frontend.address + "/studies",
            json.dumps({"name": "tune-1", "max_evaluations": 12}).encode(),
        )
        assert code == 201
        assert body["created"] and not body["attached"]
        code, body = raw_post(
            frontend.address + "/studies",
            json.dumps({"name": "tune-1"}).encode(),
        )
        assert code == 200
        assert not body["created"]

    def test_run_over_http_is_bit_identical(self, frontend):
        client = HTTPStudyClient(
            frontend.address, "tune-1", seed=3, **BUDGET
        )
        assert client.created
        status = client.run(service_run_function)
        assert status["finished"]
        assert status["num_evaluations"] == BUDGET["max_evaluations"]
        result = frontend.registry.result("tune-1")
        assert_results_identical(solo_result(3), result)

    def test_unknown_study_is_404(self, frontend):
        code, body = raw_post(frontend.address + "/studies/ghost/suggest", b"{}")
        assert code == 404
        assert "ghost" in body["error"]
        with pytest.raises(UnknownStudyError):
            HTTPStudyClient(frontend.address, "ghost", create=False).status()

    def test_unknown_routes_and_verbs_are_404(self, frontend):
        code, _ = raw_post(frontend.address + "/nope", b"{}")
        assert code == 404
        code, _ = raw_post(frontend.address + "/studies/x/y/z", b"{}")
        assert code == 404
        HTTPStudyClient(frontend.address, "tune-1", **BUDGET)
        code, body = raw_post(frontend.address + "/studies/tune-1/dance", b"{}")
        assert code == 404
        assert "verb" in body["error"]

    def test_malformed_payloads_are_400(self, frontend):
        url = frontend.address + "/studies"
        code, body = raw_post(url, b"{not json")
        assert code == 400
        assert "malformed" in body["error"]
        code, body = raw_post(url, b"[1, 2, 3]")  # JSON, but not an object
        assert code == 400
        code, body = raw_post(url, b"{}")  # missing the study name
        assert code == 400
        assert "name" in body["error"]

    def test_report_payload_must_carry_runtimes_list(self, frontend):
        HTTPStudyClient(frontend.address, "tune-1", **BUDGET)
        url = frontend.address + "/studies/tune-1/report"
        code, body = raw_post(url, json.dumps({"runtimes": 3.5}).encode())
        assert code == 400
        assert "runtimes" in body["error"]

    def test_protocol_violations_are_409(self, frontend):
        client = HTTPStudyClient(frontend.address, "tune-1", **BUDGET)
        batch = client.suggest()
        with pytest.raises(ProtocolError):
            client.report([50.0] * (len(batch) + 1))  # wrong batch size
        client.report([50.0] * len(batch))
        with pytest.raises(ProtocolError):
            client.report([50.0] * len(batch))  # nothing outstanding now

    def test_status_listing_and_heartbeat(self, frontend):
        HTTPStudyClient(frontend.address, "a", **BUDGET)
        client_b = HTTPStudyClient(frontend.address, "b", seed=1, **BUDGET)
        with urllib.request.urlopen(frontend.address + "/studies") as response:
            listing = json.loads(response.read().decode("utf-8"))["studies"]
        assert [s["name"] for s in listing] == ["a", "b"]
        status = client_b.heartbeat()
        assert status["name"] == "b"
        assert status["seed"] == 1
        assert not status["finished"]
