"""Registry over stored journals: stored_study_names, peek, evict.

A long-lived registry accumulates journaled studies on disk; only some are
live in memory at any moment.  These tests pin the stored view: names of
journaled-but-not-live studies are enumerable, ``peek`` reports them through
the memory-mapped reader without constructing a search, ``evict`` drops an
idle study's in-memory state while keeping it resumable bit-identically, and
``evict_stale`` sweeps every idle journaled study at once.
"""

import pytest

from fixtures import make_service_search
from repro.service import CampaignRegistry, UnknownStudyError

TEMPLATES = {"service": lambda seed=0, **params: make_service_search(seed, **params)}
BUDGET = dict(max_time=600.0, max_evaluations=12)


def make_registry(**kwargs):
    return CampaignRegistry(TEMPLATES, **kwargs)


def drive(registry, name, rounds=2):
    """Run a few suggest/report rounds against a study."""
    for _ in range(rounds):
        batch = registry.suggest(name)
        if batch is None:
            break
        registry.report(name, [25.0 + i for i in range(len(batch))])


class TestStoredStudyNames:
    def test_empty_without_root(self):
        assert make_registry().stored_study_names() == []

    def test_lists_journaled_studies_even_after_restart(self, tmp_path):
        first = make_registry(root=tmp_path)
        first.create_study("tune-a", **BUDGET)
        first.create_study("tune-b", **BUDGET)
        drive(first, "tune-a")
        drive(first, "tune-b")
        # A second registry process sees the stored studies without creating
        # any of them.
        second = make_registry(root=tmp_path)
        assert second.stored_study_names() == ["tune-a", "tune-b"]


class TestPeek:
    def test_live_study_peeks_as_status(self, tmp_path):
        registry = make_registry(root=tmp_path)
        registry.create_study("tune-1", **BUDGET)
        drive(registry, "tune-1")
        peeked = registry.peek("tune-1")
        assert peeked["live"] is True
        assert peeked["name"] == "tune-1"
        assert peeked["num_evaluations"] > 0

    def test_stored_study_peeks_off_the_journal(self, tmp_path):
        first = make_registry(root=tmp_path)
        first.create_study("tune-1", **BUDGET)
        drive(first, "tune-1")
        expected = first.status("tune-1")["num_evaluations"]
        second = make_registry(root=tmp_path)
        peeked = second.peek("tune-1")
        assert peeked["live"] is False
        assert peeked["started"] is False
        assert peeked["name"] == "tune-1"
        assert peeked["num_evaluations"] == expected
        assert peeked["best_runtime"] is not None

    def test_unknown_study_raises(self, tmp_path):
        registry = make_registry(root=tmp_path)
        with pytest.raises(UnknownStudyError):
            registry.peek("nope")


class TestEvict:
    def test_evict_then_reattach_is_bit_identical(self, tmp_path):
        # Baseline: one uninterrupted study.
        baseline = make_registry(root=tmp_path / "a")
        baseline.create_study("tune-1", **BUDGET)
        for _ in range(4):
            drive(baseline, "tune-1", rounds=1)
        # Same schedule, evicted from memory halfway through.
        registry = make_registry(root=tmp_path / "b")
        registry.create_study("tune-1", **BUDGET)
        for _ in range(2):
            drive(registry, "tune-1", rounds=1)
        assert registry.evict("tune-1") is True
        assert "tune-1" not in [s["name"] for s in registry.statuses()]
        assert registry.stored_study_names() == ["tune-1"]
        record, created = registry.create_study("tune-1", **BUDGET)
        assert created is False and record.attached
        for _ in range(2):
            drive(registry, "tune-1", rounds=1)
        a = baseline.status("tune-1")
        b = registry.status("tune-1")
        assert a["num_evaluations"] == b["num_evaluations"]
        assert a["best_runtime"] == b["best_runtime"]

    def test_evict_without_journal_refuses(self):
        registry = make_registry()  # no root, nothing on disk
        registry.create_study("tune-1", **BUDGET)
        assert registry.evict("tune-1") is False
        assert registry.status("tune-1")["name"] == "tune-1"

    def test_evict_stale_sweeps_idle_studies(self, tmp_path):
        now = {"t": 0.0}
        registry = make_registry(root=tmp_path, clock=lambda: now["t"])
        registry.create_study("old-1", **BUDGET)
        registry.create_study("old-2", **BUDGET)
        drive(registry, "old-1")
        drive(registry, "old-2")
        now["t"] = 1000.0
        registry.create_study("fresh", **BUDGET)
        evicted = registry.evict_stale(max_age=500.0)
        assert sorted(evicted) == ["old-1", "old-2"]
        live = [s["name"] for s in registry.statuses()]
        assert live == ["fresh"]
        # The evicted studies are still on disk and peekable.
        assert registry.peek("old-1")["live"] is False
