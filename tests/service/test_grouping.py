"""Unit tests for the pure per-tick grouping rule shared by all fleet paths.

:func:`repro.service.grouping.plan_tick_groups` is the single implementation
behind the runner's RF-fit, GP-fit, VAE-refresh and candidate-scoring
grouping (legacy batch path and elastic path alike), so its contract is
pinned here once: partition completeness, first-appearance ordering, member
order preservation, the ``min_fused`` threshold and the distinct-identity
requirement.
"""

import pytest
from hypothesis import given, strategies as st

from repro.service.grouping import TickGroup, plan_tick_groups


class TestPlanTickGroups:
    def test_empty_input_yields_no_groups(self):
        assert plan_tick_groups([], key_of=lambda x: x) == []

    def test_partitions_by_key_in_first_appearance_order(self):
        items = [("a", 1), ("b", 2), ("a", 3), ("c", 4), ("b", 5)]
        groups = plan_tick_groups(items, key_of=lambda item: item[0])
        assert [g.key for g in groups] == ["a", "b", "c"]
        assert [g.members for g in groups] == [
            [("a", 1), ("a", 3)],
            [("b", 2), ("b", 5)],
            [("c", 4)],
        ]

    def test_every_item_lands_in_exactly_one_group(self):
        items = list(range(17))
        groups = plan_tick_groups(items, key_of=lambda n: n % 3)
        flattened = [m for g in groups for m in g.members]
        assert sorted(flattened) == items
        assert len(flattened) == len(items)

    def test_singletons_are_not_fused(self):
        groups = plan_tick_groups([1, 2, 3], key_of=lambda n: n)
        assert all(not g.fused for g in groups)
        assert all(len(g.members) == 1 for g in groups)

    def test_min_fused_threshold(self):
        items = ["x"] * 3 + ["y"] * 2
        by_three = plan_tick_groups(items, key_of=lambda s: s, min_fused=3)
        assert [g.fused for g in by_three] == [True, False]
        by_two = plan_tick_groups(items, key_of=lambda s: s, min_fused=2)
        assert [g.fused for g in by_two] == [True, True]

    def test_duplicate_identities_block_fusion(self):
        shared = object()
        other = object()
        items = [("k", shared), ("k", shared), ("k", other)]
        groups = plan_tick_groups(
            items,
            key_of=lambda item: item[0],
            identity_of=lambda item: id(item[1]),
        )
        assert len(groups) == 1
        assert not groups[0].fused
        # Without the identity check the same group fuses.
        unchecked = plan_tick_groups(items, key_of=lambda item: item[0])
        assert unchecked[0].fused

    def test_distinct_identities_fuse(self):
        items = [("k", object()) for _ in range(4)]
        groups = plan_tick_groups(
            items,
            key_of=lambda item: item[0],
            identity_of=lambda item: id(item[1]),
        )
        assert groups == [TickGroup(key="k", members=items, fused=True)]

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=5), max_size=40),
        min_fused=st.integers(min_value=1, max_value=4),
    )
    def test_properties_hold_for_any_key_sequence(self, keys, min_fused):
        items = list(enumerate(keys))
        groups = plan_tick_groups(
            items, key_of=lambda item: item[1], min_fused=min_fused
        )
        # Partition: every item exactly once, member order = arrival order.
        flattened = [m for g in groups for m in g.members]
        assert sorted(flattened) == items
        for group in groups:
            assert group.members == [i for i in items if i[1] == group.key]
            assert group.fused == (len(group.members) >= min_fused)
        # Keys are unique and in first-appearance order.
        seen = []
        for _, key in items:
            if key not in seen:
                seen.append(key)
        assert [g.key for g in groups] == seen
