"""Unit tests for the pure per-tick grouping rule shared by all fleet paths.

:func:`repro.service.grouping.plan_tick_groups` is the single implementation
behind the runner's RF-fit, GP-fit, VAE-refresh and candidate-scoring
grouping (legacy batch path and elastic path alike), so its contract is
pinned here once: partition completeness, first-appearance ordering, member
order preservation, the ``min_fused`` threshold and the distinct-identity
requirement.
"""

import pytest
from hypothesis import given, strategies as st

from repro.service.grouping import TickGroup, plan_step_shards, plan_tick_groups


class TestPlanTickGroups:
    def test_empty_input_yields_no_groups(self):
        assert plan_tick_groups([], key_of=lambda x: x) == []

    def test_partitions_by_key_in_first_appearance_order(self):
        items = [("a", 1), ("b", 2), ("a", 3), ("c", 4), ("b", 5)]
        groups = plan_tick_groups(items, key_of=lambda item: item[0])
        assert [g.key for g in groups] == ["a", "b", "c"]
        assert [g.members for g in groups] == [
            [("a", 1), ("a", 3)],
            [("b", 2), ("b", 5)],
            [("c", 4)],
        ]

    def test_every_item_lands_in_exactly_one_group(self):
        items = list(range(17))
        groups = plan_tick_groups(items, key_of=lambda n: n % 3)
        flattened = [m for g in groups for m in g.members]
        assert sorted(flattened) == items
        assert len(flattened) == len(items)

    def test_singletons_are_not_fused(self):
        groups = plan_tick_groups([1, 2, 3], key_of=lambda n: n)
        assert all(not g.fused for g in groups)
        assert all(len(g.members) == 1 for g in groups)

    def test_min_fused_threshold(self):
        items = ["x"] * 3 + ["y"] * 2
        by_three = plan_tick_groups(items, key_of=lambda s: s, min_fused=3)
        assert [g.fused for g in by_three] == [True, False]
        by_two = plan_tick_groups(items, key_of=lambda s: s, min_fused=2)
        assert [g.fused for g in by_two] == [True, True]

    def test_duplicate_identities_block_fusion(self):
        shared = object()
        other = object()
        items = [("k", shared), ("k", shared), ("k", other)]
        groups = plan_tick_groups(
            items,
            key_of=lambda item: item[0],
            identity_of=lambda item: id(item[1]),
        )
        assert len(groups) == 1
        assert not groups[0].fused
        # Without the identity check the same group fuses.
        unchecked = plan_tick_groups(items, key_of=lambda item: item[0])
        assert unchecked[0].fused

    def test_distinct_identities_fuse(self):
        items = [("k", object()) for _ in range(4)]
        groups = plan_tick_groups(
            items,
            key_of=lambda item: item[0],
            identity_of=lambda item: id(item[1]),
        )
        assert groups == [TickGroup(key="k", members=items, fused=True)]

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=5), max_size=40),
        min_fused=st.integers(min_value=1, max_value=4),
    )
    def test_properties_hold_for_any_key_sequence(self, keys, min_fused):
        items = list(enumerate(keys))
        groups = plan_tick_groups(
            items, key_of=lambda item: item[1], min_fused=min_fused
        )
        # Partition: every item exactly once, member order = arrival order.
        flattened = [m for g in groups for m in g.members]
        assert sorted(flattened) == items
        for group in groups:
            assert group.members == [i for i in items if i[1] == group.key]
            assert group.fused == (len(group.members) >= min_fused)
        # Keys are unique and in first-appearance order.
        seen = []
        for _, key in items:
            if key not in seen:
                seen.append(key)
        assert [g.key for g in groups] == seen


class TestPlanStepShards:
    """The parallel runner's shard plan: pure, balanced, affinity-aware."""

    def test_empty_input_yields_no_shards(self):
        assert plan_step_shards([], 4) == []

    def test_invalid_shard_count_raises(self):
        with pytest.raises(ValueError):
            plan_step_shards([1, 2], 0)

    def test_one_shard_is_the_whole_sequence(self):
        items = list(range(7))
        assert plan_step_shards(items, 1) == [items]

    def test_contiguous_balanced_slices(self):
        items = list(range(10))
        shards = plan_step_shards(items, 4)
        assert shards == [[0, 1, 2], [3, 4], [5, 6, 7], [8, 9]]

    def test_more_shards_than_items_degenerates_to_singletons(self):
        items = ["a", "b", "c"]
        assert plan_step_shards(items, 8) == [["a"], ["b"], ["c"]]

    def test_affinity_pins_items_to_first_members_shard(self):
        # Items 0 and 9 share a token: 9 must join 0's shard even though
        # the contiguous deal would place it last.
        tokens = {0: "pool", 9: "pool"}
        shards = plan_step_shards(
            list(range(10)), 4, affinity_of=lambda i: tokens.get(i)
        )
        joined = next(s for s in shards if 0 in s)
        assert 9 in joined
        flattened = [i for s in shards for i in s]
        assert sorted(flattened) == list(range(10))

    def test_plan_ignores_everything_but_order_and_count(self):
        # Same items, same count → same plan, call after call (purity: this
        # is half of the parallel runner's bit-identity contract).
        items = ["w", "x", "y", "z"] * 3
        assert plan_step_shards(items, 3) == plan_step_shards(items, 3)

    @given(
        n=st.integers(min_value=0, max_value=40),
        k=st.integers(min_value=1, max_value=8),
    )
    def test_partition_properties_hold(self, n, k):
        items = list(range(n))
        shards = plan_step_shards(items, k)
        # Partition: every item exactly once, order preserved (contiguous
        # slices concatenate back to the input).
        assert [i for s in shards for i in s] == items
        assert all(s for s in shards)
        assert len(shards) == min(k, n)
        # Balance: shard sizes differ by at most one.
        if shards:
            sizes = [len(s) for s in shards]
            assert max(sizes) - min(sizes) <= 1

    @given(
        n=st.integers(min_value=1, max_value=30),
        k=st.integers(min_value=1, max_value=6),
        tokens=st.lists(
            st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
            min_size=30,
            max_size=30,
        ),
    )
    def test_affinity_groups_always_coreside(self, n, k, tokens):
        items = list(range(n))
        shards = plan_step_shards(items, k, affinity_of=lambda i: tokens[i])
        assert sorted(i for s in shards for i in s) == items
        for token in {t for t in tokens[:n] if t is not None}:
            holding = [
                idx
                for idx, shard in enumerate(shards)
                if any(tokens[i] == token for i in shard)
            ]
            assert len(holding) == 1
