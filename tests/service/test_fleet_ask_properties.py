"""Fleet-ask bit-identity: batched cross-campaign proposals change nothing.

The acceptance property of the fleet ask (`prepare_ask_fleet` plus the
runner's ``_begin_asks_fleet`` grouping): for any space, campaign count,
surrogate mix and elastic join/leave/quarantine schedule, running with
``batch_asks=True`` is **bitwise identical** — candidate sheets, dedup
decisions, final histories and each optimizer's RNG state — to the
``batch_asks=False`` escape hatch and to sequential solo runs.  Hypothesis
draws the spaces and schedules; the dedup edge cases (cross-campaign
candidate collisions, cardinality-exhausted spaces, fleets of one) are
pinned deterministically.
"""

import zlib

from hypothesis import given, settings, strategies as st

from fixtures import (
    assert_results_identical as assert_identical,
    make_gp_search,
    make_refresh_search,
    make_service_search,
    make_service_space,
    service_run_function,
)
from repro.core.optimizer import BayesianOptimizer, prepare_ask_fleet
from repro.core.search import CBOSearch
from repro.core.space import (
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
    RealParameter,
    SearchSpace,
)
from repro.core.surrogate import RandomForestSurrogate
from repro.service import CampaignRunner, CampaignSpec, ElasticCampaignRunner

# Mirrors tests/service/test_elastic.py: one fixed budget per campaign kind
# so mixed cohorts produce mixed fleet groups and staggered leaves.
KINDS = {
    "rf": (make_service_search, 600.0, 18),
    "gp": (make_gp_search, 400.0, 12),
    "refresh": (make_refresh_search, 700.0, 24),
}

_SOLO_CACHE = {}


def solo_result(kind, seed):
    key = (kind, seed)
    if key not in _SOLO_CACHE:
        factory, max_time, max_evaluations = KINDS[kind]
        _SOLO_CACHE[key] = factory(seed, make_service_space()).run(
            max_time=max_time, max_evaluations=max_evaluations
        )
    return _SOLO_CACHE[key]


def make_spec(kind, seed, space):
    factory, max_time, max_evaluations = KINDS[kind]
    return CampaignSpec(
        search=factory(seed, space),
        max_time=max_time,
        max_evaluations=max_evaluations,
        label=f"{kind}-{seed}",
    )


def rng_state(search):
    return search.optimizer.rng.bit_generator.state


# --------------------------------------------------------------- random spaces
# A pool of parameter factories; Hypothesis draws subsets to build spaces, so
# the identity property is exercised over integer/real/log/categorical/ordinal
# mixes rather than the one fixture space.
PARAM_FACTORIES = (
    lambda: IntegerParameter("batch", 1, 256, log=True),
    lambda: RealParameter("rate", 0.1, 10.0, log=True),
    lambda: RealParameter("frac", -1.0, 1.0),
    lambda: CategoricalParameter("pool", ("fifo", "prio", "wait")),
    lambda: OrdinalParameter("pes", (1, 2, 4, 8)),
    lambda: CategoricalParameter.boolean("busy"),
)

spaces = st.lists(
    st.integers(min_value=0, max_value=len(PARAM_FACTORIES) - 1),
    min_size=2,
    max_size=4,
    unique=True,
).map(lambda idx: SearchSpace([PARAM_FACTORIES[i]() for i in sorted(idx)]))


def generic_run_function(config):
    """Deterministic pseudo-runtime over configs of any drawn space."""
    digest = zlib.crc32(repr(sorted(config.items())).encode())
    return 30.0 + (digest % 10_000) / 250.0


def make_generic_search(seed, space):
    return CBOSearch(
        space,
        generic_run_function,
        num_workers=4,
        surrogate=RandomForestSurrogate(n_estimators=5, seed=seed),
        num_candidates=24,
        n_initial_points=4,
        seed=seed,
    )


schedules = st.lists(
    st.tuples(
        st.sampled_from(sorted(KINDS)),  # campaign kind
        st.integers(min_value=0, max_value=5),  # arrival tick
    ),
    min_size=2,
    max_size=4,
)


class TestFleetAskProperties:
    @settings(max_examples=8, deadline=None)
    @given(space=spaces, n_campaigns=st.integers(min_value=2, max_value=4))
    def test_random_spaces_batched_equals_unbatched(self, space, n_campaigns):
        """Any drawn space: batched asks match the escape hatch bit for bit."""
        budget = dict(max_time=400.0, max_evaluations=12)
        specs_batched = [
            CampaignSpec(search=make_generic_search(seed, space), **budget)
            for seed in range(n_campaigns)
        ]
        specs_solo = [
            CampaignSpec(search=make_generic_search(seed, space), **budget)
            for seed in range(n_campaigns)
        ]
        # step_shards=1: the ask-fleet counters below assume global groups.
        batched_runner = CampaignRunner(specs_batched, batch_asks=True, step_shards=1)
        solo_runner = CampaignRunner(specs_solo, batch_asks=False, step_shards=1)
        batched = batched_runner.run()
        solo = solo_runner.run()
        for a, b in zip(solo, batched):
            assert_identical(a, b)
        # The RNG streams drained identically: same draws, same order.
        for spec_a, spec_b in zip(specs_solo, specs_batched):
            assert rng_state(spec_a.search) == rng_state(spec_b.search)
        # Same-space same-encoding campaigns actually fused...
        assert batched_runner.num_ask_fleet_passes > 0
        assert batched_runner.num_ask_fleet_members >= (
            2 * batched_runner.num_ask_fleet_passes
        )
        # ...and the escape hatch never touched the fleet path.
        assert solo_runner.num_ask_fleet_passes == 0

    @settings(max_examples=8, deadline=None)
    @given(schedule=schedules)
    def test_elastic_schedules_batched_is_bit_identical(self, schedule):
        """Join/leave schedules over mixed RF/GP/refresh cohorts."""
        space = make_service_space()
        specs = {}
        results = {}
        runners = {}
        for batch_asks in (True, False):
            runner = ElasticCampaignRunner(batch_asks=batch_asks)
            specs[batch_asks] = []
            for seed, (kind, arrival) in enumerate(schedule):
                spec = make_spec(kind, seed, space)
                specs[batch_asks].append(spec)
                runner.admit(spec, arrival_tick=arrival)
            results[batch_asks] = runner.run_until_complete()
            runners[batch_asks] = runner
        for seed, (kind, _) in enumerate(schedule):
            assert_identical(solo_result(kind, seed), results[True][seed])
            assert_identical(results[False][seed], results[True][seed])
        for spec_solo, spec_batched in zip(specs[False], specs[True]):
            assert rng_state(spec_solo.search) == rng_state(spec_batched.search)
        assert runners[False].num_ask_fleet_passes == 0

    @settings(max_examples=6, deadline=None)
    @given(schedule=schedules, doom_mask=st.integers(min_value=1, max_value=7))
    def test_quarantine_under_batched_ask(self, schedule, doom_mask):
        """Quarantined members leave their fleet group without perturbing it."""
        space = make_service_space()
        doomed_of = {
            seed: bool(doom_mask & (1 << seed)) for seed in range(len(schedule))
        }
        runner = ElasticCampaignRunner(
            on_campaign_error="quarantine", batch_asks=True
        )
        for seed, (kind, arrival) in enumerate(schedule):
            if doomed_of[seed]:
                spec = CampaignSpec(
                    search=make_doomed_search(seed, space),
                    max_time=600.0,
                    max_evaluations=18,
                )
            else:
                spec = make_spec(kind, seed, space)
            runner.admit(spec, arrival_tick=arrival)
        results = runner.run_until_complete()
        quarantined = {q.index for q in runner.quarantined}
        for seed, (kind, _) in enumerate(schedule):
            if doomed_of[seed]:
                assert seed in quarantined
            else:
                assert seed not in quarantined
                assert_identical(solo_result(kind, seed), results[seed])


def make_doomed_search(seed, space, limit=9):
    """An RF campaign whose run function dies after ``limit`` evaluations."""
    calls = {"n": 0}

    def run(config):
        calls["n"] += 1
        if calls["n"] > limit:
            raise RuntimeError("injected fleet-ask failure")
        return service_run_function(config)

    return CBOSearch(
        space,
        run,
        num_workers=6,
        surrogate=RandomForestSurrogate(n_estimators=6, seed=seed),
        num_candidates=48,
        n_initial_points=5,
        seed=seed,
    )


# ------------------------------------------------------------ dedup edge cases
TINY_SPACE_PARAMS = (
    CategoricalParameter("pool", ("fifo", "prio", "wait")),
    CategoricalParameter.boolean("busy"),
)  # 6 distinct configurations in total


def make_tiny_optimizer(seed=0, num_candidates=16):
    return BayesianOptimizer(
        SearchSpace(list(TINY_SPACE_PARAMS)),
        surrogate=RandomForestSurrogate(n_estimators=4, seed=seed),
        num_candidates=num_candidates,
        n_initial_points=2,
        seed=seed,
    )


def assert_prepared_equal(a, b):
    """Two ``PreparedAsk``\\ s must match bit for bit, dedup decisions included."""
    assert a.n == b.n
    assert a.proposals == b.proposals
    assert a.wants_scores == b.wants_scores
    assert a.fresh_configs == b.fresh_configs
    if a.fresh is None:
        assert b.fresh is None
    else:
        assert a.fresh.to_configurations() == b.fresh.to_configurations()
        assert a.encoded.tobytes() == b.encoded.tobytes()
        assert a.unit.tobytes() == b.unit.tobytes()


class TestFusedDedupEdgeCases:
    def evaluated(self, n, exclude=()):
        """The first ``n`` distinct tiny-space configs not in ``exclude``."""
        configs = [
            {"pool": pool, "busy": busy}
            for pool in ("fifo", "prio", "wait")
            for busy in (False, True)
            if {"pool": pool, "busy": busy} not in exclude
        ]
        return configs[:n]

    def objectives(self, configs):
        return [10.0 + i for i, _ in enumerate(configs)]

    def test_cross_campaign_collisions_stay_member_local(self):
        """Equal-seed members draw identical candidate sheets, but each
        member's dedup must consult only its *own* evaluated keys."""
        histories = [self.evaluated(4), self.evaluated(2)]
        solo, fleet = [], []
        for members in (solo, fleet):
            for history in histories:
                # Same optimizer seed for every member: the stacked sheet
                # holds byte-identical rows for both, the collision case.
                opt = make_tiny_optimizer(seed=0)
                opt.tell(history, self.objectives(history))
                members.append(opt)
        prepared_solo = [opt.prepare_ask(2) for opt in solo]
        prepared_fleet = prepare_ask_fleet([(opt, 2) for opt in fleet])
        for a, b in zip(prepared_solo, prepared_fleet):
            assert_prepared_equal(a, b)
        for a, b in zip(solo, fleet):
            assert a.rng.bit_generator.state == b.rng.bit_generator.state
        # The dedup actually engaged, and member-locally: the 4-evaluation
        # member dropped more of the (identical) sheet than the 2-evaluation
        # member did.
        kept = [len(p.fresh.to_configurations()) for p in prepared_fleet]
        assert kept[0] < kept[1]

    def test_cardinality_exhausted_space_short_circuits(self):
        """Members that exhaust their 6-config space fall into the
        ``_sample_unique`` short-circuit; the fleet path must reproduce it."""
        history = self.evaluated(6)  # every config evaluated, ask for 3
        solo, fleet = [], []
        for members in (solo, fleet):
            for seed in (0, 1):
                opt = make_tiny_optimizer(seed=seed)
                opt.tell(history, self.objectives(history))
                members.append(opt)
        prepared_solo = [opt.prepare_ask(3) for opt in solo]
        prepared_fleet = prepare_ask_fleet([(opt, 3) for opt in fleet])
        for a, b in zip(prepared_solo, prepared_fleet):
            assert_prepared_equal(a, b)
            # The shortfall path ran: the model-phase pool could not cover
            # the request, so proposals were topped up via _sample_unique.
            assert b.fresh_configs is not None
            assert len(b.fresh_configs) == 3
        for a, b in zip(solo, fleet):
            assert a.rng.bit_generator.state == b.rng.bit_generator.state

    def test_init_phase_members_bypass_the_stacked_sheet(self):
        """Members still initialising never join the fused candidate draw."""
        solo, fleet = [], []
        for members in (solo, fleet):
            for seed in (3, 4):
                members.append(make_tiny_optimizer(seed=seed))
        prepared_solo = [opt.prepare_ask(2) for opt in solo]
        prepared_fleet = prepare_ask_fleet([(opt, 2) for opt in fleet])
        for a, b in zip(prepared_solo, prepared_fleet):
            assert_prepared_equal(a, b)
            assert b.proposals is not None
        for a, b in zip(solo, fleet):
            assert a.rng.bit_generator.state == b.rng.bit_generator.state

    def test_fleet_of_one_degenerates_to_solo(self):
        """A single campaign with ``batch_asks=True`` never fuses."""
        space = make_service_space()
        runner = CampaignRunner(
            [make_spec("rf", 0, space)], batch_asks=True
        )
        results = runner.run()
        assert_identical(solo_result("rf", 0), results[0])
        assert runner.num_ask_fleet_passes == 0
        assert runner.num_ask_fleet_members == 0

    def test_mixed_spaces_group_apart(self):
        """Campaigns over different spaces never share a stacked sheet."""
        space_a = make_service_space()
        space_b = SearchSpace(
            [
                IntegerParameter("batch", 1, 256, log=True),
                RealParameter("rate", 0.1, 10.0, log=True),
            ]
        )
        budget = dict(max_time=400.0, max_evaluations=12)
        specs = [
            CampaignSpec(search=make_service_search(0, space_a), **budget),
            CampaignSpec(search=make_service_search(1, space_a), **budget),
            CampaignSpec(search=make_generic_search(2, space_b), **budget),
        ]
        solo = [
            make_service_search(0, make_service_space()).run(**budget),
            make_service_search(1, make_service_space()).run(**budget),
            make_generic_search(
                2,
                SearchSpace(
                    [
                        IntegerParameter("batch", 1, 256, log=True),
                        RealParameter("rate", 0.1, 10.0, log=True),
                    ]
                ),
            ).run(**budget),
        ]
        # step_shards=1: the ask-fleet counters below assume global groups.
        runner = CampaignRunner(specs, batch_asks=True, step_shards=1)
        batched = runner.run()
        for a, b in zip(solo, batched):
            assert_identical(a, b)
        # Only the two space-A campaigns can fuse; the space-B singleton
        # always takes the solo fallback.
        assert runner.num_ask_fleet_passes > 0
        assert runner.num_ask_fleet_members == 2 * runner.num_ask_fleet_passes
