"""Parallel tick stepping: the bit-identity contract under stress.

The multi-core runner's acceptance property: for any ``step_workers``/
``step_shards`` (threads), and for the whole-campaign process backend, every
campaign's results, RNG stream and journal bytes are **bitwise identical**
to the sequential runner — worker count may only change wall-clock time.
The shard plan is a pure function of the active-set order and shard count,
and shard results reduce in shard order, so nothing observable depends on
thread timing.

The suites here drive that contract through mixed RF/GP/refresh cohorts,
injected faults under quarantine, shared-pool affinity, a Hypothesis sweep
over shard counts, and the process backend's journal-reconstructed results.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fixtures import (
    assert_results_identical,
    make_gp_search,
    make_refresh_search,
    make_service_search,
    make_service_space,
    service_run_function,
)
from repro.core.surrogate import RandomForestSurrogate
from repro.core.search import CBOSearch
from repro.service.evaluator import SharedWorkerPool
from repro.service.runner import (
    CampaignRunner,
    CampaignSpec,
    ElasticCampaignRunner,
)

BUDGET = dict(max_time=700.0, max_evaluations=26)


def make_mixed_specs(n=6, space=None, budget=BUDGET, **spec_kwargs):
    """An n-campaign cohort cycling through the RF/GP/refresh families."""
    space = space if space is not None else make_service_space()
    factories = (make_service_search, make_gp_search, make_refresh_search)
    return [
        CampaignSpec(
            search=factories[i % 3](seed=100 + i, space=space),
            label=f"c{i}",
            **budget,
            **spec_kwargs,
        )
        for i in range(n)
    ]


def rng_state(spec):
    return spec.search.optimizer.rng.bit_generator.state


def journal_bytes(directory):
    """Every journal file's raw bytes, keyed by name (order-independent)."""
    return {
        path.name: path.read_bytes() for path in sorted(directory.iterdir())
    }


class TestThreadBackendBitIdentity:
    @pytest.mark.parametrize("step_workers", [2, 4])
    def test_mixed_cohort_matches_serial(self, step_workers):
        serial_specs = make_mixed_specs()
        serial = CampaignRunner(serial_specs, step_workers=1).run()
        parallel_specs = make_mixed_specs()
        parallel = CampaignRunner(
            parallel_specs, step_workers=step_workers
        ).run()
        for a, b in zip(serial, parallel):
            assert_results_identical(a, b)
        # The RNG streams drained identically: same draws, same order.
        for a, b in zip(serial_specs, parallel_specs):
            assert rng_state(a) == rng_state(b)

    def test_journals_are_byte_identical(self, tmp_path):
        serial = CampaignRunner(
            make_mixed_specs(n=3),
            step_workers=1,
        ).run()
        specs = make_mixed_specs(n=3)
        for i, spec in enumerate(specs):
            spec.journal_dir = tmp_path / f"c{i}"
        parallel = CampaignRunner(specs, step_workers=4).run()
        for a, b in zip(serial, parallel):
            assert_results_identical(a, b)
        reference = CampaignRunner(
            make_mixed_specs(n=3), step_workers=1
        )
        for i, spec in enumerate(reference.specs):
            spec.journal_dir = tmp_path / f"ref{i}"
        reference.run()
        for i in range(3):
            assert journal_bytes(tmp_path / f"c{i}") == journal_bytes(
                tmp_path / f"ref{i}"
            )

    def test_shards_fewer_than_workers_and_vice_versa(self):
        serial = CampaignRunner(make_mixed_specs(), step_workers=1).run()
        # More shards than workers (queued shards) and more workers than
        # shards (idle workers) are both just schedules of the same plan.
        for workers, shards in [(2, 5), (4, 2), (3, 1)]:
            parallel = CampaignRunner(
                make_mixed_specs(), step_workers=workers, step_shards=shards
            ).run()
            for a, b in zip(serial, parallel):
                assert_results_identical(a, b)

    def test_shared_pool_campaigns_are_pinned_together(self):
        # Campaigns sharing one SharedWorkerPool compete for workers on one
        # clock; the shard plan must keep them in one shard so their event
        # interleaving replays in arrival order.  Identity target: the same
        # shared-pool cohort run serially.
        def shared_specs():
            pool = SharedWorkerPool(num_workers=8)
            specs = [
                CampaignSpec(
                    search=make_service_search(
                        seed=10 + i,
                        evaluator_factory=pool.evaluator_factory(),
                    ),
                    label=f"s{i}",
                    **BUDGET,
                )
                for i in range(4)
            ]
            # Two private-pool campaigns interleaved: only the shared four
            # carry affinity.
            specs.insert(1, CampaignSpec(search=make_service_search(seed=50), **BUDGET))
            specs.append(CampaignSpec(search=make_gp_search(seed=51), **BUDGET))
            return specs

        # Constructed fresh per run: pools and searches are stateful.
        serial = CampaignRunner(shared_specs(), step_workers=1).run()
        parallel = CampaignRunner(
            shared_specs(), step_workers=4, step_shards=4
        ).run()
        for a, b in zip(serial, parallel):
            assert_results_identical(a, b)

    def test_injected_faults_quarantine_identically(self):
        def explode_after(limit):
            calls = {"n": 0}

            def run(config):
                calls["n"] += 1
                if calls["n"] > limit:
                    raise RuntimeError("injected campaign failure")
                return service_run_function(config)

            return run

        def specs():
            out = make_mixed_specs(n=5)
            doomed = CBOSearch(
                make_service_space(),
                explode_after(12),
                num_workers=6,
                surrogate=RandomForestSurrogate(n_estimators=6, seed=1),
                num_candidates=48,
                n_initial_points=5,
                seed=1,
            )
            out[2] = CampaignSpec(search=doomed, label="doomed", **BUDGET)
            return out

        serial_runner = CampaignRunner(
            specs(), step_workers=1, on_campaign_error="quarantine"
        )
        serial = serial_runner.run()
        parallel_runner = CampaignRunner(
            specs(), step_workers=4, on_campaign_error="quarantine"
        )
        parallel = parallel_runner.run()
        assert [q.index for q in serial_runner.quarantined] == [2]
        assert [q.index for q in parallel_runner.quarantined] == [2]
        assert (
            serial_runner.quarantined[0].phase
            == parallel_runner.quarantined[0].phase
        )
        for index, (a, b) in enumerate(zip(serial, parallel)):
            if index == 2:
                # The partial result of the quarantined campaign must agree
                # too: it failed at the same virtual moment in both runs.
                assert len(a.history) == len(b.history)
                continue
            assert_results_identical(a, b)

    @settings(max_examples=8, deadline=None)
    @given(
        step_shards=st.integers(min_value=1, max_value=7),
        n=st.integers(min_value=2, max_value=5),
    )
    def test_any_shard_count_is_bit_identical(self, step_shards, n):
        budget = dict(max_time=500.0, max_evaluations=14)
        serial = CampaignRunner(
            make_mixed_specs(n=n, budget=budget), step_workers=1
        ).run()
        parallel = CampaignRunner(
            make_mixed_specs(n=n, budget=budget),
            step_workers=2,
            step_shards=step_shards,
        ).run()
        for a, b in zip(serial, parallel):
            assert_results_identical(a, b)


class TestElasticParallelStep:
    def test_elastic_parallel_matches_serial(self):
        def run_with(step_workers):
            runner = ElasticCampaignRunner(step_workers=step_workers)
            for spec in make_mixed_specs():
                runner.admit(spec)
            return runner.run_until_complete()

        for a, b in zip(run_with(1), run_with(4)):
            assert_results_identical(a, b)

    def test_elastic_rejects_process_backend(self):
        with pytest.raises(ValueError, match="thread"):
            ElasticCampaignRunner(step_backend="process")


class TestProcessBackend:
    def test_process_shards_match_serial(self, tmp_path):
        serial = CampaignRunner(make_mixed_specs(n=4), step_workers=1).run()
        specs = make_mixed_specs(n=4)
        for i, spec in enumerate(specs):
            spec.journal_dir = tmp_path / f"c{i}"
        runner = CampaignRunner(specs, step_workers=2, step_backend="process")
        results = runner.run()
        for a, b in zip(serial, results):
            assert_results_identical(a, b)
        # results() serves the same process-run outcome after the fact.
        for a, b in zip(results, runner.results()):
            assert_results_identical(a, b)
        assert runner.num_ticks > 0

    def test_process_backend_requires_journals(self):
        runner = CampaignRunner(
            make_mixed_specs(n=2), step_workers=2, step_backend="process"
        )
        with pytest.raises(ValueError, match="journal"):
            runner.run()

    def test_single_worker_process_backend_runs_inline(self, tmp_path):
        # step_workers=1 short-circuits to the in-process path even with the
        # process backend selected — no fork for a serial run.
        serial = CampaignRunner(make_mixed_specs(n=2), step_workers=1).run()
        inline = CampaignRunner(
            make_mixed_specs(n=2), step_workers=1, step_backend="process"
        ).run()
        for a, b in zip(serial, inline):
            assert_results_identical(a, b)


class TestScoringErrorContext:
    """Regression: shard ``predict`` failures used to surface bare.

    A candidate-scoring crash inside ``score_executor.map`` lost which
    shard (and which campaign) died; the runner's quarantine path now
    receives a :class:`~repro.core.optimizer.CandidateScoringError` that
    carries the shard context, and records it against the owning campaign.
    """

    def test_runner_quarantines_scoring_failure_with_context(self):
        from repro.core.optimizer import CandidateScoringError

        class ExplodingSurrogate(RandomForestSurrogate):
            def predict(self, X):
                if self.fitted and X.shape[0] < 48:
                    raise FloatingPointError("singular score sheet")
                return super().predict(X)

        doomed = CBOSearch(
            make_service_space(),
            service_run_function,
            num_workers=6,
            surrogate=ExplodingSurrogate(n_estimators=6, seed=1),
            num_candidates=48,
            n_initial_points=5,
            score_shards=4,  # shards are 48/4 = 12 rows → explode
            seed=1,
        )
        specs = [
            CampaignSpec(search=make_service_search(seed=0), label="good", **BUDGET),
            CampaignSpec(search=doomed, label="doomed", **BUDGET),
        ]
        runner = CampaignRunner(
            specs, on_campaign_error="quarantine", batch_candidate_scoring=False
        )
        results = runner.run()
        assert [q.label for q in runner.quarantined] == ["doomed"]
        record = runner.quarantined[0]
        assert record.phase == "ask"
        assert isinstance(record.error, CandidateScoringError)
        assert record.error.num_shards == 4
        assert 0 <= record.error.shard_index < 4
        assert 0 < record.error.rows < 48
        assert record.error.surrogate == "ExplodingSurrogate"
        assert "shard" in str(record.error)
        # The healthy campaign is untouched.
        assert results[0] is not None
        assert math.isfinite(results[0].best_objective)
