"""Regression: ``SharedWorkerPool`` scheduling state raced under threads.

Before the pool lock, parallel tick shards stepping two clients of one pool
corrupted the scheduler: ``submit`` could double-start one idle worker (two
threads both saw it idle), ``process_until`` could pop the retry heap
concurrently, and ``wait_any``'s advance-then-collect could interleave with
another client's clock advance so completions were collected at the wrong
virtual time.  The pool now serialises every scheduling/clock/queue entry
point behind one re-entrant lock — virtual time, not thread arrival order,
still decides which events fire.

The runner itself never exercises this (same-pool campaigns are pinned to
one shard by :func:`~repro.service.grouping.plan_step_shards`), so these
tests hammer the pool directly from raw threads: the invariants are
*conservation* ones (nothing lost, nothing duplicated, consistent final
state), which must hold under any interleaving.
"""

import math
import threading

import numpy as np

from fixtures import make_service_space, service_run_function
from repro.service.evaluator import ServiceEvaluator, SharedWorkerPool


def drain(evaluator, outstanding):
    """Collect until this client got all of its ``outstanding`` results."""
    collected = []
    while len(collected) < outstanding:
        _, done = evaluator.wait_any(float("inf"))
        collected.extend(done)
        if not done and evaluator.num_pending == 0 and evaluator.num_queued == 0:
            break
    return collected


class TestPoolThreadSafety:
    def test_threaded_submit_wait_any_hammer_conserves_work(self):
        space = make_service_space()
        rng = np.random.default_rng(7)
        pool = SharedWorkerPool(num_workers=6)
        clients = [
            ServiceEvaluator(service_run_function, pool=pool) for _ in range(4)
        ]
        rounds, batch = 12, 3
        plans = [
            [space.sample(batch, rng) for _ in range(rounds)]
            for _ in range(len(clients))
        ]
        results = [[] for _ in clients]
        errors = []
        barrier = threading.Barrier(len(clients))

        def hammer(index):
            try:
                evaluator = clients[index]
                barrier.wait()
                for configs in plans[index]:
                    accepted = evaluator.submit(configs)
                    assert accepted == batch  # the service queues, never drops
                    results[index].extend(drain(evaluator, batch))
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(len(clients))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        for index, evaluator in enumerate(clients):
            # Conservation per client: every submission came back exactly
            # once, to its owner, with the run function's exact measurement.
            assert evaluator.num_submitted == rounds * batch
            assert evaluator.num_collected == rounds * batch
            assert len(results[index]) == rounds * batch
            expected = sorted(
                service_run_function(c)
                for configs in plans[index]
                for c in configs
            )
            assert sorted(r.runtime for r in results[index]) == expected
            for completed in results[index]:
                assert completed.completed >= completed.submitted
        # The pool wound down clean: no orphaned work, no stuck queue.
        assert pool.num_pending == 0
        assert pool.num_queued == 0
        assert pool.num_idle == pool.num_workers

    def test_threaded_clients_with_queueing_pressure(self):
        # 2 workers, 3 clients, batches far beyond capacity: every submit
        # path goes through the queue, and the drain loop runs under
        # contention.  Nothing may be lost or double-delivered.
        space = make_service_space()
        rng = np.random.default_rng(11)
        pool = SharedWorkerPool(num_workers=2)
        clients = [
            ServiceEvaluator(service_run_function, pool=pool) for _ in range(3)
        ]
        batches = [space.sample(10, rng) for _ in clients]
        counts = []
        errors = []
        barrier = threading.Barrier(len(clients))

        def hammer(index):
            try:
                barrier.wait()
                clients[index].submit(batches[index])
                counts.append(len(drain(clients[index], 10)))
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(len(clients))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert counts == [10, 10, 10]
        assert pool.num_pending == 0
        assert pool.num_queued == 0
        # The shared clock is a single coherent timeline.
        assert math.isfinite(pool.now) and pool.now > 0.0
