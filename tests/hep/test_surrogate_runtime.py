"""Unit tests for the learned run-time surrogate (Fig. 5 methodology)."""

import math

import numpy as np
import pytest

from repro.core.space import IntegerParameter, RealParameter, SearchSpace
from repro.hep.surrogate_runtime import SurrogateRuntime


def toy_space():
    return SearchSpace([RealParameter("x", 0.0, 1.0), IntegerParameter("k", 1, 32)])


def toy_runtime(config):
    return 20.0 + 200.0 * (config["x"] - 0.5) ** 2 + 0.5 * config["k"]


def make_training_data(n=300, seed=0):
    space = toy_space()
    rng = np.random.default_rng(seed)
    configs = space.sample(n, rng)
    runtimes = [toy_runtime(c) for c in configs]
    return space, configs, runtimes


class TestFromData:
    def test_predictions_track_the_true_runtime(self):
        space, configs, runtimes = make_training_data()
        surrogate = SurrogateRuntime.from_data(space, configs, runtimes, noise=0.0, seed=0)
        test_configs = space.sample(100, np.random.default_rng(1))
        predicted = surrogate.predict(test_configs)
        actual = np.array([toy_runtime(c) for c in test_configs])
        correlation = np.corrcoef(predicted, actual)[0, 1]
        assert correlation > 0.8

    def test_call_interface_counts_and_adds_noise(self):
        space, configs, runtimes = make_training_data()
        surrogate = SurrogateRuntime.from_data(space, configs, runtimes, noise=0.05, seed=0)
        config = configs[0]
        values = [surrogate(config) for _ in range(5)]
        assert surrogate.num_calls == 5
        assert len(set(values)) > 1  # noise makes repeated calls differ
        assert all(v > 0 for v in values)

    def test_failures_in_training_data_are_handled(self):
        space, configs, runtimes = make_training_data()
        runtimes = list(runtimes)
        runtimes[0] = float("nan")
        runtimes[1] = float("inf")
        surrogate = SurrogateRuntime.from_data(space, configs, runtimes, seed=0)
        assert np.all(np.isfinite(surrogate.predict(configs[:10])))

    def test_predictions_near_the_ceiling_return_nan(self):
        space = toy_space()
        configs = space.sample(50, np.random.default_rng(0))
        # Every training point is at the failure ceiling -> every call fails.
        surrogate = SurrogateRuntime.from_data(
            space, configs, [float("nan")] * len(configs), failure_runtime=600.0, noise=0.0, seed=0
        )
        assert math.isnan(surrogate(configs[0]))

    def test_validation_errors(self):
        space, configs, runtimes = make_training_data(20)
        with pytest.raises(ValueError):
            SurrogateRuntime.from_data(space, configs, runtimes[:-1])
        with pytest.raises(ValueError):
            SurrogateRuntime.from_data(space, [], [])
