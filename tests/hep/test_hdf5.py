"""Tests for the synthetic HDF5 file population."""

import pytest

from repro.hep.hdf5 import FileInfo, SyntheticEventFiles


class TestFileInfo:
    def test_total_bytes(self):
        info = FileInfo("f.h5", num_events=100, product_bytes_per_event=1000)
        assert info.total_bytes == 100_000

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            FileInfo("f.h5", 0, 100)
        with pytest.raises(ValueError):
            FileInfo("f.h5", 100, 0)


class TestSyntheticEventFiles:
    def test_population_is_deterministic_for_a_seed(self):
        a = SyntheticEventFiles(50, seed=3)
        b = SyntheticEventFiles(50, seed=3)
        assert [f.num_events for f in a] == [f.num_events for f in b]
        assert [f.name for f in a] == [f.name for f in b]

    def test_different_seeds_differ(self):
        a = SyntheticEventFiles(50, seed=1)
        b = SyntheticEventFiles(50, seed=2)
        assert [f.num_events for f in a] != [f.num_events for f in b]

    def test_file_counts_and_heterogeneity(self):
        files = SyntheticEventFiles(200, seed=0)
        assert len(files) == 200
        counts = [f.num_events for f in files]
        assert max(counts) > 1.5 * min(counts)  # skewed sizes, as intended

    def test_total_volume_roughly_matches_paper_scale(self):
        # 200 files should total on the order of 26.5 GiB (within a factor ~2).
        files = SyntheticEventFiles(200, seed=0)
        gib = files.total_bytes / 2**30
        assert 13.0 < gib < 55.0

    def test_mean_events_close_to_requested(self):
        files = SyntheticEventFiles(300, seed=0, mean_events_per_file=5000)
        mean = files.total_events / len(files)
        assert 0.8 * 5000 < mean < 1.2 * 5000

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            SyntheticEventFiles(0)
        with pytest.raises(ValueError):
            SyntheticEventFiles(10, mean_events_per_file=0)
        with pytest.raises(ValueError):
            SyntheticEventFiles(10, sigma=-1.0)

    def test_indexing_and_iteration(self):
        files = SyntheticEventFiles(10, seed=0)
        assert files[0].name.endswith("00000.h5")
        assert len(list(iter(files))) == 10
