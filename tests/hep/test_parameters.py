"""Tests for the Fig. 1 parameter space and the experimental setups."""

import numpy as np
import pytest

from repro.core.space import CategoricalParameter, IntegerParameter, OrdinalParameter
from repro.hep.parameters import (
    ALL_PARAMETERS,
    DEFAULT_CONFIGURATION,
    SETUPS,
    TRANSFER_CHAIN,
    WorkflowSetup,
    build_space,
    complete_configuration,
    get_setup,
)


class TestParameterDefinitions:
    def test_exactly_twenty_parameters(self):
        assert len(ALL_PARAMETERS) == 20

    def test_batch_sizes_are_log_uniform_integers(self):
        for name in ("loader_batch_size", "pep_ibatch_size", "pep_obatch_size"):
            param = ALL_PARAMETERS[name]
            assert isinstance(param, IntegerParameter)
            assert param.log

    def test_fig1_ranges(self):
        assert ALL_PARAMETERS["loader_batch_size"].low == 1
        assert ALL_PARAMETERS["loader_batch_size"].high == 2048
        assert ALL_PARAMETERS["hepnos_num_rpc_threads"].low == 0
        assert ALL_PARAMETERS["hepnos_num_rpc_threads"].high == 63
        assert ALL_PARAMETERS["hepnos_num_event_databases"].high == 16
        assert ALL_PARAMETERS["pep_num_threads"].high == 31
        assert ALL_PARAMETERS["pep_ibatch_size"].low == 8
        assert ALL_PARAMETERS["pep_ibatch_size"].high == 1024

    def test_pes_per_node_values(self):
        for name in ("loader_pes_per_node", "hepnos_pes_per_node", "pep_pes_per_node"):
            param = ALL_PARAMETERS[name]
            assert isinstance(param, OrdinalParameter)
            assert param.values == (1, 2, 4, 8, 16, 32)

    def test_pool_type_categories(self):
        param = ALL_PARAMETERS["hepnos_pool_type"]
        assert isinstance(param, CategoricalParameter)
        assert set(param.categories) == {"fifo", "fifo_wait", "prio_wait"}

    def test_default_configuration_is_complete_and_valid(self):
        assert set(DEFAULT_CONFIGURATION) == set(ALL_PARAMETERS)
        space = build_space(list(ALL_PARAMETERS))
        space.validate(DEFAULT_CONFIGURATION)


class TestSetups:
    def test_five_setups_with_paper_names(self):
        assert set(SETUPS) == {
            "4n-1s-11p",
            "4n-2s-16p",
            "4n-2s-20p",
            "8n-2s-20p",
            "16n-2s-20p",
        }

    def test_parameter_counts_match_names(self):
        for name, setup in SETUPS.items():
            declared = int(name.split("-")[2].rstrip("p"))
            assert setup.num_parameters == declared

    def test_node_and_step_counts_match_names(self):
        for name, setup in SETUPS.items():
            nodes = int(name.split("-")[0].rstrip("n"))
            steps = int(name.split("-")[1].rstrip("s"))
            assert setup.num_nodes == nodes
            assert setup.num_steps == steps

    def test_weak_scaling_file_counts(self):
        assert get_setup("4n-2s-20p").num_files == 50
        assert get_setup("8n-2s-20p").num_files == 100
        assert get_setup("16n-2s-20p").num_files == 200

    def test_restricted_spaces_are_subsets_of_the_full_space(self):
        full = set(get_setup("4n-2s-20p").parameter_names)
        p16 = set(get_setup("4n-2s-16p").parameter_names)
        p11 = set(get_setup("4n-1s-11p").parameter_names)
        assert p11 < p16 < full

    def test_extended_parameters_only_in_20p(self):
        p16 = set(get_setup("4n-2s-16p").parameter_names)
        for extended in ("hepnos_pool_type", "hepnos_pes_per_node", "pep_use_preloading", "pep_use_rdma"):
            assert extended not in p16

    def test_space_cardinality_is_astronomical_for_20p(self):
        # The paper quotes ~1.5e23 distinct configurations for the 20-parameter space.
        space = get_setup("4n-2s-20p").space()
        assert space.cardinality > 1e20

    def test_transfer_chain_follows_setup_order(self):
        sources = [s for s, _ in TRANSFER_CHAIN]
        targets = [t for _, t in TRANSFER_CHAIN]
        assert sources == ["4n-1s-11p", "4n-2s-16p", "4n-2s-20p", "8n-2s-20p"]
        assert targets == ["4n-2s-16p", "4n-2s-20p", "8n-2s-20p", "16n-2s-20p"]

    def test_get_setup_unknown_name(self):
        with pytest.raises(KeyError):
            get_setup("2n-1s-5p")

    def test_setup_space_samples_validate(self):
        space = get_setup("4n-2s-20p").space()
        rng = np.random.default_rng(0)
        for config in space.sample(20, rng):
            space.validate(config)


class TestCompleteConfiguration:
    def test_fills_missing_parameters_with_defaults(self):
        partial = {"loader_batch_size": 7, "busy_spin": True}
        full = complete_configuration(partial)
        assert full["loader_batch_size"] == 7
        assert full["busy_spin"] is True
        assert full["pep_num_threads"] == DEFAULT_CONFIGURATION["pep_num_threads"]
        assert set(full) == set(ALL_PARAMETERS)

    def test_rejects_unknown_parameters(self):
        with pytest.raises(KeyError):
            complete_configuration({"unknown_knob": 1})

    def test_build_space_rejects_unknown_names(self):
        with pytest.raises(KeyError):
            build_space(["loader_batch_size", "nonexistent"])
