"""Integration tests for the end-to-end HEP workflow simulator."""

import math

import numpy as np
import pytest

from repro.hep.costs import WorkflowCostModel
from repro.hep.parameters import DEFAULT_CONFIGURATION, get_setup
from repro.hep.workflow import HEPWorkflow, HEPWorkflowProblem


@pytest.fixture(scope="module")
def problem_16p():
    return HEPWorkflowProblem.from_setup("4n-2s-16p", seed=1, noise=0.0)


class TestHEPWorkflow:
    def test_default_configuration_completes_both_steps(self, problem_16p):
        result = problem_16p.workflow.run(DEFAULT_CONFIGURATION)
        assert not result.failed
        assert result.loader_time > 0
        assert result.pep_time > 0
        assert result.runtime == pytest.approx(result.loader_time + result.pep_time)
        assert result.events_stored == result.events_processed > 0

    def test_single_step_setup_skips_pep(self):
        workflow = HEPWorkflow("4n-1s-11p", seed=1, noise=0.0)
        result = workflow.run(DEFAULT_CONFIGURATION)
        assert result.pep_time == 0.0
        assert result.events_processed == 0
        assert result.runtime == pytest.approx(result.loader_time)

    def test_deterministic_without_noise(self, problem_16p):
        r1 = problem_16p.workflow.run(DEFAULT_CONFIGURATION)
        r2 = problem_16p.workflow.run(DEFAULT_CONFIGURATION)
        assert r1.runtime == pytest.approx(r2.runtime)

    def test_noise_perturbs_runtime(self):
        workflow = HEPWorkflow("4n-1s-11p", seed=1, noise=0.05)
        rng = np.random.default_rng(0)
        r1 = workflow.run(DEFAULT_CONFIGURATION, rng=rng)
        r2 = workflow.run(DEFAULT_CONFIGURATION, rng=rng)
        assert r1.runtime != pytest.approx(r2.runtime)
        assert abs(r1.runtime - r2.runtime) < 0.5 * r1.runtime

    def test_partial_configuration_is_completed_with_defaults(self, problem_16p):
        result = problem_16p.workflow.run({"loader_batch_size": 256})
        assert not result.failed

    def test_pathological_configuration_times_out(self):
        costs = WorkflowCostModel(step_time_limit=30.0)
        workflow = HEPWorkflow("4n-2s-16p", seed=1, costs=costs, noise=0.0)
        bad = dict(DEFAULT_CONFIGURATION)
        bad.update(
            loader_pes_per_node=1,
            loader_batch_size=1,
            hepnos_num_rpc_threads=0,
            hepnos_num_event_databases=1,
            hepnos_num_product_databases=1,
            hepnos_num_providers=1,
            pep_pes_per_node=1,
            pep_num_threads=1,
        )
        result = workflow.run(bad)
        assert result.timed_out
        assert math.isnan(result.runtime)

    def test_more_databases_help_under_load(self, problem_16p):
        few = dict(DEFAULT_CONFIGURATION)
        few.update(hepnos_num_event_databases=1, hepnos_num_product_databases=1,
                   hepnos_num_providers=1, hepnos_num_rpc_threads=1, loader_batch_size=16)
        many = dict(few)
        many.update(hepnos_num_event_databases=8, hepnos_num_product_databases=8,
                    hepnos_num_providers=8, hepnos_num_rpc_threads=16)
        slow = problem_16p.workflow.run(few)
        fast = problem_16p.workflow.run(many)
        assert fast.runtime < slow.runtime

    def test_batching_helps_the_loader(self, problem_16p):
        small = dict(DEFAULT_CONFIGURATION, loader_batch_size=1)
        large = dict(DEFAULT_CONFIGURATION, loader_batch_size=1024)
        assert (
            problem_16p.workflow.run(large).loader_time
            < problem_16p.workflow.run(small).loader_time
        )

    def test_preloading_helps_pep(self):
        problem = HEPWorkflowProblem.from_setup("4n-2s-20p", seed=1, noise=0.0)
        on = dict(DEFAULT_CONFIGURATION, pep_use_preloading=True)
        off = dict(DEFAULT_CONFIGURATION, pep_use_preloading=False)
        assert problem.workflow.run(on).pep_time < problem.workflow.run(off).pep_time

    def test_oversubscription_hurts(self, problem_16p):
        sane = dict(DEFAULT_CONFIGURATION, pep_pes_per_node=8, pep_num_threads=7)
        crazy = dict(DEFAULT_CONFIGURATION, pep_pes_per_node=32, pep_num_threads=31)
        assert (
            problem_16p.workflow.run(sane).pep_time
            < problem_16p.workflow.run(crazy).pep_time
        )

    def test_weak_scaling_keeps_runtime_same_order(self):
        r4 = HEPWorkflow("4n-2s-20p", seed=1, noise=0.0).run(DEFAULT_CONFIGURATION)
        r16 = HEPWorkflow("16n-2s-20p", seed=1, noise=0.0).run(DEFAULT_CONFIGURATION)
        assert not r4.failed and not r16.failed
        assert r16.runtime < 5 * r4.runtime


class TestHEPWorkflowProblem:
    def test_space_matches_setup(self, problem_16p):
        assert len(problem_16p.space) == 16
        assert problem_16p.setup.name == "4n-2s-16p"

    def test_evaluate_counts_calls(self):
        problem = HEPWorkflowProblem.from_setup("4n-1s-11p", seed=1, noise=0.0)
        before = problem.num_evaluations
        problem.evaluate(DEFAULT_CONFIGURATION)
        assert problem.num_evaluations == before + 1

    def test_objective_is_negative_log_runtime(self):
        problem = HEPWorkflowProblem.from_setup("4n-1s-11p", seed=1, noise=0.0)
        runtime = problem.evaluate(DEFAULT_CONFIGURATION)
        objective = problem.objective(DEFAULT_CONFIGURATION)
        assert objective == pytest.approx(-math.log(runtime), rel=0.05)
