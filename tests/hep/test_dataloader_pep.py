"""Unit tests for the data-loader and PEP step simulators."""

import pytest

from repro.sim import Environment
from repro.mochi.bedrock import ServiceConfig
from repro.platform import THETA, NodeAllocation
from repro.hepnos.service import HEPnOSService
from repro.hep.costs import DEFAULT_COSTS
from repro.hep.dataloader import DataLoaderConfig, DataLoaderRun
from repro.hep.hdf5 import SyntheticEventFiles
from repro.hep.parameters import DEFAULT_CONFIGURATION, complete_configuration
from repro.hep.pep import PEPConfig, PEPRun


def deploy(num_nodes=4, num_files=10, **hepnos_kwargs):
    env = Environment()
    allocation = NodeAllocation.create(env, THETA, num_nodes)
    config = ServiceConfig.from_tuning_parameters(
        num_event_dbs=hepnos_kwargs.get("events", 4),
        num_product_dbs=hepnos_kwargs.get("products", 4),
        num_providers=hepnos_kwargs.get("providers", 4),
        num_rpc_threads=hepnos_kwargs.get("rpc_threads", 4),
    )
    service = HEPnOSService(env, allocation.hepnos_nodes, config)
    files = list(SyntheticEventFiles(num_files, seed=7, mean_events_per_file=2000))
    return env, allocation, service, files


class TestDataLoaderConfig:
    def test_from_configuration_extracts_loader_fields(self):
        config = DataLoaderConfig.from_configuration(complete_configuration({}))
        assert config.pes_per_node == DEFAULT_CONFIGURATION["loader_pes_per_node"]
        assert config.batch_size == DEFAULT_CONFIGURATION["loader_batch_size"]

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            DataLoaderConfig(pes_per_node=0)
        with pytest.raises(ValueError):
            DataLoaderConfig(batch_size=0)
        with pytest.raises(ValueError):
            DataLoaderConfig(async_threads=0)


class TestDataLoaderRun:
    def test_all_files_are_loaded_exactly_once(self):
        env, allocation, service, files = deploy()
        loader = DataLoaderRun(
            env, allocation.app_nodes, service, files, DataLoaderConfig(pes_per_node=4)
        )
        env.process(loader.run())
        env.run()
        assert loader.stats.files_loaded == len(files)
        assert loader.stats.events_stored == sum(f.num_events for f in files)
        # Every file leaves exactly one block record in the event databases.
        total_blocks = sum(
            sum(1 for k in db.keys() if k.startswith(b"BLOCK|"))
            for _, db in service.event_databases
        )
        assert total_blocks == len(files)

    def test_async_loading_is_not_slower_than_synchronous(self):
        def run_loader(use_async):
            env, allocation, service, files = deploy()
            loader = DataLoaderRun(
                env,
                allocation.app_nodes,
                service,
                files,
                DataLoaderConfig(pes_per_node=2, use_async=use_async, async_threads=4),
            )
            env.process(loader.run())
            env.run()
            return loader.stats.elapsed

        assert run_loader(True) <= run_loader(False) * 1.05

    def test_more_processes_speed_up_loading(self):
        def run_loader(pes):
            env, allocation, service, files = deploy(num_files=12)
            loader = DataLoaderRun(
                env, allocation.app_nodes, service, files,
                DataLoaderConfig(pes_per_node=pes),
            )
            env.process(loader.run())
            env.run()
            return loader.stats.elapsed

        assert run_loader(8) < run_loader(1)

    def test_requires_files_and_nodes(self):
        env, allocation, service, files = deploy()
        with pytest.raises(ValueError):
            DataLoaderRun(env, [], service, files, DataLoaderConfig())
        with pytest.raises(ValueError):
            DataLoaderRun(env, allocation.app_nodes, service, [], DataLoaderConfig())


class TestPEPRun:
    def _load(self, env, allocation, service, files):
        loader = DataLoaderRun(
            env, allocation.app_nodes, service, files, DataLoaderConfig(pes_per_node=4)
        )
        env.process(loader.run())
        env.run()
        for node in allocation.app_nodes:
            node.reset_accounting()
        return loader

    def test_pep_processes_every_stored_event(self):
        env, allocation, service, files = deploy()
        loader = self._load(env, allocation, service, files)
        pep = PEPRun(env, allocation.app_nodes, service, PEPConfig(pes_per_node=4))
        env.process(pep.run())
        env.run()
        assert pep.stats.events_processed == loader.stats.events_stored
        assert pep.stats.blocks_processed == len(files)
        assert pep.stats.elapsed > 0

    def test_remote_blocks_counted_when_fewer_listers_than_consumers(self):
        env, allocation, service, files = deploy(events=1, products=1, providers=1)
        self._load(env, allocation, service, files)
        pep = PEPRun(env, allocation.app_nodes, service, PEPConfig(pes_per_node=4))
        env.process(pep.run())
        env.run()
        # One event database => one lister; the other processes pull remotely.
        assert pep.stats.remote_blocks > 0
        assert pep.stats.exchange_rpcs > 0

    def test_pep_config_validation(self):
        with pytest.raises(ValueError):
            PEPConfig(pes_per_node=0)
        with pytest.raises(ValueError):
            PEPConfig(num_threads=0)
        with pytest.raises(ValueError):
            PEPConfig(input_batch_size=0)

    def test_from_configuration_extracts_pep_fields(self):
        config = PEPConfig.from_configuration(complete_configuration({}))
        assert config.num_threads == DEFAULT_CONFIGURATION["pep_num_threads"]
        assert config.use_preloading == DEFAULT_CONFIGURATION["pep_use_preloading"]
