"""Tests for the platform model (nodes, core accounting, allocations)."""

import pytest

from repro.sim import Environment
from repro.platform import THETA, Node, NodeAllocation, Platform


class TestPlatform:
    def test_theta_defaults(self):
        assert THETA.cores_per_node == 64
        assert THETA.name == "theta"
        assert THETA.network.bandwidth > 0

    def test_invalid_platform_parameters(self):
        with pytest.raises(ValueError):
            Platform(cores_per_node=0)
        with pytest.raises(ValueError):
            Platform(pfs_read_bandwidth=0.0)


class TestNode:
    def test_no_demand_means_no_slowdown(self):
        env = Environment()
        node = Node(env, THETA, "n0")
        assert node.slowdown() == 1.0
        assert node.available_core_fraction() == 1.0

    def test_slowdown_grows_with_oversubscription(self):
        env = Environment()
        node = Node(env, THETA, "n0")
        node.register_workers(64)
        assert node.slowdown() == pytest.approx(1.0)
        node.register_workers(64)
        assert node.slowdown() == pytest.approx(2.0)

    def test_pinned_cores_reduce_available_fraction(self):
        env = Environment()
        node = Node(env, THETA, "n0")
        node.register_pinned(16)
        assert node.available_core_fraction() == pytest.approx(0.75)
        assert node.pinned_cores == 16

    def test_reset_accounting(self):
        env = Environment()
        node = Node(env, THETA, "n0")
        node.register_workers(100)
        node.register_pinned(10)
        node.reset_accounting()
        assert node.core_demand == 0.0
        assert node.slowdown() == 1.0

    def test_negative_registrations_rejected(self):
        env = Environment()
        node = Node(env, THETA, "n0")
        with pytest.raises(ValueError):
            node.register_workers(-1)
        with pytest.raises(ValueError):
            node.register_pinned(-0.5)

    def test_each_node_has_its_own_nic(self):
        env = Environment()
        a = Node(env, THETA, "a")
        b = Node(env, THETA, "b")
        assert a.nic is not b.nic
        assert a.nic.node_name == "a"


class TestNodeAllocation:
    @pytest.mark.parametrize(
        "num_nodes,expected_hepnos,expected_app",
        [(4, 1, 3), (8, 2, 6), (16, 4, 12)],
    )
    def test_paper_splits(self, num_nodes, expected_hepnos, expected_app):
        env = Environment()
        allocation = NodeAllocation.create(env, THETA, num_nodes)
        assert len(allocation.hepnos_nodes) == expected_hepnos
        assert len(allocation.app_nodes) == expected_app
        assert allocation.num_nodes == num_nodes

    def test_too_few_nodes_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            NodeAllocation.create(env, THETA, 1)

    def test_node_names_are_unique(self):
        env = Environment()
        allocation = NodeAllocation.create(env, THETA, 8)
        names = [n.name for n in allocation.hepnos_nodes + allocation.app_nodes]
        assert len(set(names)) == len(names)
