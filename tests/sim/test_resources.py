"""Unit tests for simulation resources (Resource, PriorityResource, Store, Container)."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource, SimulationError, Store


class TestResource:
    def test_capacity_must_be_positive(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_exclusive_access_serialises_users(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def user(env, res, name, hold):
            with res.request() as req:
                yield req
                log.append(("start", name, env.now))
                yield env.timeout(hold)
            log.append(("end", name, env.now))

        env.process(user(env, res, "a", 2.0))
        env.process(user(env, res, "b", 1.0))
        env.run()
        assert log == [
            ("start", "a", 0.0),
            ("end", "a", 2.0),
            ("start", "b", 2.0),
            ("end", "b", 3.0),
        ]

    def test_capacity_two_allows_two_concurrent_users(self):
        env = Environment()
        res = Resource(env, capacity=2)
        starts = []

        def user(env, res, name):
            with res.request() as req:
                yield req
                starts.append((name, env.now))
                yield env.timeout(1.0)

        for name in ["a", "b", "c"]:
            env.process(user(env, res, name))
        env.run()
        assert starts == [("a", 0.0), ("b", 0.0), ("c", 1.0)]

    def test_count_and_queue_length(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder(env, res):
            with res.request() as req:
                yield req
                yield env.timeout(5.0)

        def waiter(env, res):
            with res.request() as req:
                yield req

        env.process(holder(env, res))
        env.process(waiter(env, res))
        env.run(until=1.0)
        assert res.count == 1
        assert res.queue_length == 1

    def test_release_unowned_request_raises(self):
        env = Environment()
        res = Resource(env, capacity=2)

        def proc(env, res):
            req = res.request()
            yield req
            res.release(req)
            res.release(req)  # second release is illegal

        env.process(proc(env, res))
        with pytest.raises(SimulationError):
            env.run()

    def test_utilization_accounts_busy_time(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def user(env, res):
            with res.request() as req:
                yield req
                yield env.timeout(4.0)

        env.process(user(env, res))
        env.run(until=8.0)
        assert res.utilization(horizon=8.0) == pytest.approx(0.5)

    def test_granted_counter(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def user(env, res):
            with res.request() as req:
                yield req
                yield env.timeout(1.0)

        for _ in range(5):
            env.process(user(env, res))
        env.run()
        assert res.granted == 5


class TestPriorityResource:
    def test_lower_priority_value_served_first(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def holder(env, res):
            with res.request() as req:
                yield req
                yield env.timeout(10.0)

        def user(env, res, name, prio, delay):
            yield env.timeout(delay)
            with res.request(priority=prio) as req:
                yield req
                order.append(name)

        env.process(holder(env, res))
        # All three wait behind the holder; arrival order differs from priority.
        env.process(user(env, res, "low", 5, 1.0))
        env.process(user(env, res, "high", 0, 2.0))
        env.process(user(env, res, "mid", 2, 3.0))
        env.run()
        assert order == ["high", "mid", "low"]

    def test_fifo_among_equal_priorities(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def holder(env, res):
            with res.request() as req:
                yield req
                yield env.timeout(5.0)

        def user(env, res, name, delay):
            yield env.timeout(delay)
            with res.request(priority=1) as req:
                yield req
                order.append(name)

        env.process(holder(env, res))
        env.process(user(env, res, "first", 1.0))
        env.process(user(env, res, "second", 2.0))
        env.run()
        assert order == ["first", "second"]


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        received = []

        def producer(env, store):
            yield store.put("item-1")
            yield store.put("item-2")

        def consumer(env, store):
            a = yield store.get()
            b = yield store.get()
            received.extend([a, b])

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert received == ["item-1", "item-2"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        times = []

        def consumer(env, store):
            item = yield store.get()
            times.append((env.now, item))

        def producer(env, store):
            yield env.timeout(3.0)
            yield store.put("late")

        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert times == [(3.0, "late")]

    def test_bounded_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        log = []

        def producer(env, store):
            yield store.put("a")
            log.append(("put-a", env.now))
            yield store.put("b")
            log.append(("put-b", env.now))

        def consumer(env, store):
            yield env.timeout(5.0)
            item = yield store.get()
            log.append(("got", item, env.now))

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert ("put-a", 0.0) in log
        assert ("got", "a", 5.0) in log
        assert ("put-b", 5.0) in log

    def test_filtered_get(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer(env, store):
            for item in [1, 2, 3, 4]:
                yield store.put(item)

        def consumer(env, store):
            item = yield store.get(filter_fn=lambda x: x % 2 == 0)
            got.append(item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert got == [2]
        assert list(store.items) == [1, 3, 4]

    def test_try_get_empty_raises(self):
        env = Environment()
        store = Store(env)
        with pytest.raises(SimulationError):
            store.try_get()

    def test_try_get_returns_fifo(self):
        env = Environment()
        store = Store(env)

        def producer(env, store):
            yield store.put("x")
            yield store.put("y")

        env.process(producer(env, store))
        env.run()
        assert store.try_get() == "x"
        assert store.try_get() == "y"

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_level_tracks_items(self):
        env = Environment()
        store = Store(env)

        def producer(env, store):
            for i in range(3):
                yield store.put(i)

        env.process(producer(env, store))
        env.run()
        assert store.level == 3


class TestContainer:
    def test_put_and_get_adjust_level(self):
        env = Environment()
        tank = Container(env, capacity=100.0, init=10.0)

        def proc(env, tank):
            yield tank.put(40.0)
            yield tank.get(25.0)

        env.process(proc(env, tank))
        env.run()
        assert tank.level == pytest.approx(25.0)

    def test_get_blocks_until_available(self):
        env = Environment()
        tank = Container(env, capacity=100.0, init=0.0)
        times = []

        def consumer(env, tank):
            yield tank.get(10.0)
            times.append(env.now)

        def producer(env, tank):
            yield env.timeout(2.0)
            yield tank.put(10.0)

        env.process(consumer(env, tank))
        env.process(producer(env, tank))
        env.run()
        assert times == [2.0]

    def test_put_blocks_when_overflowing(self):
        env = Environment()
        tank = Container(env, capacity=10.0, init=8.0)
        times = []

        def producer(env, tank):
            yield tank.put(5.0)
            times.append(env.now)

        def consumer(env, tank):
            yield env.timeout(3.0)
            yield tank.get(5.0)

        env.process(producer(env, tank))
        env.process(consumer(env, tank))
        env.run()
        assert times == [3.0]

    def test_invalid_amounts_rejected(self):
        env = Environment()
        tank = Container(env, capacity=10.0)
        with pytest.raises(ValueError):
            tank.put(0.0)
        with pytest.raises(ValueError):
            tank.get(-1.0)

    def test_invalid_init_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            Container(env, capacity=10.0, init=20.0)
