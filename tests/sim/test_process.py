"""Unit tests for generator-backed simulated processes.

``sim/process.py`` was the only simulation module without a dedicated test
file; these tests pin the :class:`~repro.sim.process.Process` contract: the
generator protocol (yield events, resume with their values), processes as
events (waiting on each other, return values), interrupts, failure
propagation and the stale-wake-up guards.
"""

import pytest

from repro.sim.engine import Environment, Interrupt, SimulationError, Timeout


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_process_runs_and_returns_value():
    env = Environment()
    log = []

    def activity():
        log.append(("start", env.now))
        value = yield env.timeout(5.0, value="tick")
        log.append((value, env.now))
        return "done"

    proc = env.process(activity())
    assert proc.is_alive
    env.run()
    assert not proc.is_alive
    assert proc.ok and proc.value == "done"
    assert log == [("start", 0.0), ("tick", 5.0)]


def test_process_is_waitable_event():
    env = Environment()

    def child():
        yield env.timeout(3.0)
        return 42

    def parent():
        result = yield env.process(child())
        return result + 1

    proc = env.process(parent())
    env.run()
    assert proc.value == 43
    assert env.now == 3.0


def test_target_tracks_waited_event():
    env = Environment()
    timeout = env.timeout(2.0)

    def activity():
        yield timeout

    proc = env.process(activity())
    assert proc.target is None  # not started until the first step
    env.step()  # init event: the generator runs to its first yield
    assert proc.target is timeout
    env.run()
    assert proc.target is None


def test_yielding_non_event_fails_the_process():
    env = Environment()

    def activity():
        yield 17

    proc = env.process(activity())
    with pytest.raises(SimulationError):
        env.run()
    assert proc.triggered and not proc.ok


def test_exception_in_process_escalates():
    env = Environment()

    def activity():
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    proc = env.process(activity())
    with pytest.raises(RuntimeError, match="boom"):
        env.run()
    assert not proc.ok


def test_failed_event_is_thrown_into_process():
    env = Environment()
    caught = []

    def activity():
        event = env.event()
        env.process(failer(event))
        try:
            yield event
        except ValueError as exc:
            caught.append(str(exc))
        return "recovered"

    def failer(event):
        yield env.timeout(1.0)
        event.fail(ValueError("bad value"))

    proc = env.process(activity())
    env.run()
    assert caught == ["bad value"]
    assert proc.value == "recovered"


def test_interrupt_delivers_cause_and_process_can_finish():
    env = Environment()
    seen = []

    def activity():
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            seen.append((interrupt.cause, env.now))
        return "stopped"

    proc = env.process(activity())

    def interrupter():
        yield env.timeout(4.0)
        proc.interrupt(cause="deadline")

    env.process(interrupter())
    env.run()
    assert seen == [("deadline", 4.0)]
    assert proc.value == "stopped"
    # The original 100 s timeout still fires, but must not resume the
    # finished process (stale wake-up guard).
    assert env.now >= 4.0


def test_interrupting_finished_process_raises():
    env = Environment()

    def activity():
        yield env.timeout(1.0)

    proc = env.process(activity())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_stale_wakeup_from_abandoned_event_is_ignored():
    env = Environment()

    def activity():
        try:
            yield env.timeout(10.0)
        except Interrupt:
            pass
        # Wait on a fresh event after the interrupt; the abandoned 10 s
        # timeout must not resume us when it fires.
        value = yield env.timeout(20.0, value="second")
        return value

    proc = env.process(activity())

    def interrupter():
        yield env.timeout(1.0)
        proc.interrupt()

    env.process(interrupter())
    env.run()
    assert proc.value == "second"
    assert env.now == 21.0


def test_already_processed_event_resumes_synchronously():
    env = Environment()
    fired = env.timeout(1.0, value="early")

    def activity():
        yield env.timeout(5.0)
        # ``fired`` fired at t=1 and was fully processed; yielding it must
        # resume immediately instead of deadlocking.
        value = yield fired
        return value

    proc = env.process(activity())
    env.run()
    assert proc.value == "early"
    assert env.now == 5.0


def test_processes_interleave_deterministically():
    env = Environment()
    log = []

    def worker(name, delay):
        for _ in range(3):
            yield env.timeout(delay)
            log.append((name, env.now))

    env.process(worker("a", 2.0))
    env.process(worker("b", 3.0))
    env.run()
    # At the t=6 tie, b's timeout was scheduled earlier (at t=3, vs t=4 for
    # a's third) and therefore fires first: equal times break by schedule
    # order.
    assert log == [
        ("a", 2.0),
        ("b", 3.0),
        ("a", 4.0),
        ("b", 6.0),
        ("a", 6.0),
        ("b", 9.0),
    ]
