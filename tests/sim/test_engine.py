"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import Environment, Event, Interrupt, SimulationError, Timeout


class TestEnvironmentBasics:
    def test_initial_time_defaults_to_zero(self):
        env = Environment()
        assert env.now == 0.0

    def test_initial_time_can_be_set(self):
        env = Environment(initial_time=42.5)
        assert env.now == 42.5

    def test_run_empty_environment_is_noop(self):
        env = Environment()
        env.run()
        assert env.now == 0.0

    def test_run_until_advances_clock_even_without_events(self):
        env = Environment()
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_in_the_past_raises(self):
        env = Environment(initial_time=5.0)
        with pytest.raises(ValueError):
            env.run(until=1.0)

    def test_step_without_events_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.step()

    def test_peek_reports_next_event_time(self):
        env = Environment()
        env.timeout(3.0)
        assert env.peek() == 3.0

    def test_peek_is_inf_when_empty(self):
        env = Environment()
        assert env.peek() == float("inf")


class TestTimeout:
    def test_timeout_advances_clock(self):
        env = Environment()
        env.timeout(5.0)
        env.run()
        assert env.now == 5.0

    def test_timeout_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_timeout_carries_value(self):
        env = Environment()
        received = []

        def proc(env):
            value = yield env.timeout(1.0, value="payload")
            received.append(value)

        env.process(proc(env))
        env.run()
        assert received == ["payload"]

    def test_timeouts_fire_in_time_order(self):
        env = Environment()
        order = []

        def proc(env, name, delay):
            yield env.timeout(delay)
            order.append(name)

        env.process(proc(env, "late", 10))
        env.process(proc(env, "early", 1))
        env.process(proc(env, "mid", 5))
        env.run()
        assert order == ["early", "mid", "late"]

    def test_equal_time_events_fire_in_fifo_order(self):
        env = Environment()
        order = []

        def proc(env, name):
            yield env.timeout(1.0)
            order.append(name)

        for name in "abcd":
            env.process(proc(env, name))
        env.run()
        assert order == list("abcd")


class TestEvent:
    def test_succeed_fires_with_value(self):
        env = Environment()
        ev = env.event()
        results = []

        def proc(env, ev):
            value = yield ev
            results.append(value)

        env.process(proc(env, ev))
        ev.succeed(123)
        env.run()
        assert results == [123]

    def test_succeed_twice_raises(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_fail_propagates_into_waiting_process(self):
        env = Environment()
        ev = env.event()
        caught = []

        def proc(env, ev):
            try:
                yield ev
            except ValueError as exc:
                caught.append(str(exc))

        env.process(proc(env, ev))
        ev.fail(ValueError("boom"))
        env.run()
        assert caught == ["boom"]

    def test_unhandled_failed_event_escalates(self):
        env = Environment()
        ev = env.event()
        ev.fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()

    def test_value_before_firing_raises(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_callback_on_processed_event_runs_immediately(self):
        env = Environment()
        ev = env.event()
        ev.succeed(7)
        env.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]


class TestConditions:
    def test_all_of_waits_for_every_event(self):
        env = Environment()
        done_at = []

        def proc(env):
            t1 = env.timeout(1.0, value="a")
            t2 = env.timeout(3.0, value="b")
            result = yield env.all_of([t1, t2])
            done_at.append(env.now)
            assert set(result.values()) == {"a", "b"}

        env.process(proc(env))
        env.run()
        assert done_at == [3.0]

    def test_any_of_fires_at_first_event(self):
        env = Environment()
        done_at = []

        def proc(env):
            t1 = env.timeout(1.0, value="a")
            t2 = env.timeout(3.0, value="b")
            result = yield env.any_of([t1, t2])
            done_at.append(env.now)
            assert list(result.values()) == ["a"]

        env.process(proc(env))
        env.run()
        assert done_at == [1.0]

    def test_and_or_operators(self):
        env = Environment()
        times = []

        def proc(env):
            yield env.timeout(1.0) & env.timeout(2.0)
            times.append(env.now)
            yield env.timeout(1.0) | env.timeout(5.0)
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [2.0, 3.0]

    def test_empty_all_of_fires_immediately(self):
        env = Environment()
        cond = env.all_of([])
        env.run()
        assert cond.processed


class TestProcess:
    def test_process_return_value_is_event_value(self):
        env = Environment()
        results = []

        def child(env):
            yield env.timeout(2.0)
            return 99

        def parent(env):
            value = yield env.process(child(env))
            results.append((env.now, value))

        env.process(parent(env))
        env.run()
        assert results == [(2.0, 99)]

    def test_process_requires_generator(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_yield_non_event_fails_process(self):
        env = Environment()

        def proc(env):
            yield 42

        p = env.process(proc(env))
        with pytest.raises(SimulationError):
            env.run()
        assert p.triggered

    def test_exception_in_process_escalates_when_unwaited(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)
            raise KeyError("oops")

        env.process(proc(env))
        with pytest.raises(KeyError):
            env.run()

    def test_exception_in_child_caught_by_parent(self):
        env = Environment()
        caught = []

        def child(env):
            yield env.timeout(1.0)
            raise KeyError("child failed")

        def parent(env):
            try:
                yield env.process(child(env))
            except KeyError:
                caught.append(env.now)

        env.process(parent(env))
        env.run()
        assert caught == [1.0]

    def test_interrupt_delivers_cause(self):
        env = Environment()
        observed = []

        def victim(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                observed.append((env.now, interrupt.cause))

        def attacker(env, victim_proc):
            yield env.timeout(2.0)
            victim_proc.interrupt(cause="stop now")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert observed == [(2.0, "stop now")]

    def test_interrupt_finished_process_raises(self):
        env = Environment()

        def quick(env):
            yield env.timeout(0.0)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_is_alive_transitions(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_run_until_stops_mid_simulation(self):
        env = Environment()
        log = []

        def proc(env):
            for _ in range(10):
                yield env.timeout(1.0)
                log.append(env.now)

        env.process(proc(env))
        env.run(until=4.5)
        assert env.now == 4.5
        assert log == [1.0, 2.0, 3.0, 4.0]
        env.run(until=10.5)
        assert log == [float(i) for i in range(1, 11)]

    def test_many_processes_complete(self):
        env = Environment()
        finished = []

        def proc(env, i):
            yield env.timeout(i * 0.1)
            finished.append(i)

        for i in range(200):
            env.process(proc(env, i))
        env.run()
        assert len(finished) == 200
        assert finished == sorted(finished)
