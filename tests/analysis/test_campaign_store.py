"""Journal-format campaign persistence and the :class:`CampaignStore` catalog.

Covers the memory-mapped analysis path end to end: ``save_campaign(...,
format="journal")`` round trips, format auto-detection in
``load_campaign``/``load_histories`` (manifest entries, manifest-less journal
directories, a bare journal), journal-vs-live and journal-vs-CSV identity,
and the store's scan/peek/grouped aggregation over a root of stored
campaigns.
"""

import math

import numpy as np
import pytest

from repro.analysis import CampaignStore
from repro.analysis.campaign import (
    CampaignResult,
    result_from_history,
    run_repeated_search,
)
from repro.analysis.csvio import load_campaign, load_histories, save_campaign
from repro.analysis.figures import fig3_table, fig3_table_from_store
from repro.core.history import Evaluation, SearchHistory
from repro.core.journal import (
    _READER_CACHE,
    CampaignJournal,
    clear_journal_cache,
    set_journal_cache_limit,
)
from repro.core.space import IntegerParameter, RealParameter, SearchSpace


def toy_space():
    return SearchSpace([RealParameter("x", 0.0, 1.0), IntegerParameter("k", 1, 16)])


def toy_runtime(config):
    return 10.0 + 50.0 * (config["x"] - 0.4) ** 2 + abs(config["k"] - 6)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_journal_cache()
    yield
    clear_journal_cache()


@pytest.fixture(scope="module")
def campaign():
    return run_repeated_search(
        toy_space(),
        toy_runtime,
        label="RF",
        setup="toy",
        repetitions=2,
        max_time=300.0,
        num_workers=4,
        seed=0,
    )


def quantized_campaign(label="Q", setup="toy", repetitions=2, seed=0):
    """A synthetic campaign whose metadata survives the CSV %.6f format.

    Journal files store exact float64; CSV rounds metadata to 6 decimals.
    Quantised values make the two formats bit-comparable.
    """
    rng = np.random.default_rng(seed)
    space = toy_space()
    campaign = CampaignResult(
        label=label, setup=setup, max_time=300.0, num_workers=4
    )
    for _ in range(repetitions):
        history = SearchHistory(space)
        for i, config in enumerate(space.sample(20, rng)):
            runtime = round(float(rng.uniform(10.0, 60.0)), 6)
            submitted = round(float(i) * 0.5, 6)
            history.append(
                Evaluation(
                    configuration=config,
                    objective=-runtime,
                    runtime=runtime,
                    submitted=submitted,
                    completed=round(submitted + runtime, 6),
                    worker=i % 4,
                    eval_id=i,
                )
            )
        campaign.results.append(
            result_from_history(history, max_time=300.0, num_workers=4)
        )
    return campaign


def assert_history_rows_equal(a, b):
    assert len(a) == len(b)
    for ev_a, ev_b in zip(a, b):
        assert ev_a.configuration == ev_b.configuration
        assert ev_a.submitted == ev_b.submitted
        assert ev_a.completed == ev_b.completed
        assert (ev_a.runtime == ev_b.runtime) or (
            math.isnan(ev_a.runtime) and math.isnan(ev_b.runtime)
        )
        assert (ev_a.objective == ev_b.objective) or (
            math.isnan(ev_a.objective) and math.isnan(ev_b.objective)
        )


class TestJournalFormat:
    def test_save_writes_journal_subdirs(self, campaign, tmp_path):
        directory = save_campaign(campaign, tmp_path / "c", format="journal")
        assert (directory / "campaign.json").exists()
        journals = [d for d in directory.iterdir() if d.is_dir()]
        assert len(journals) == 2
        assert all(CampaignJournal.exists(d) for d in journals)

    def test_unknown_format_rejected(self, campaign, tmp_path):
        with pytest.raises(ValueError, match="unknown campaign format"):
            save_campaign(campaign, tmp_path / "c", format="parquet")

    def test_journal_round_trip_is_exact(self, campaign, tmp_path):
        """Journal loads are bit-identical to the live in-memory campaign
        (no 6-decimal quantisation, unlike CSV)."""
        directory = save_campaign(campaign, tmp_path / "c", format="journal")
        loaded = load_campaign(directory, toy_space())
        assert loaded.label == campaign.label
        assert loaded.setup == campaign.setup
        assert len(loaded.results) == len(campaign.results)
        for original, reloaded in zip(campaign.results, loaded.results):
            assert_history_rows_equal(original.history, reloaded.history)
            assert reloaded.busy_intervals == [
                (float(s), float(e)) for s, e in original.busy_intervals
            ]
            assert reloaded.worker_utilization == pytest.approx(
                original.worker_utilization
            )

    def test_journal_matches_csv_for_quantized_data(self, tmp_path):
        campaign = quantized_campaign()
        save_campaign(campaign, tmp_path / "csv", format="csv")
        save_campaign(campaign, tmp_path / "journal", format="journal")
        space = toy_space()
        from_csv = load_histories(tmp_path / "csv", space)
        from_journal = load_histories(tmp_path / "journal", space)
        assert len(from_csv) == len(from_journal) == 2
        for a, b in zip(from_csv, from_journal):
            assert_history_rows_equal(a, b)
        table_csv = fig3_table(
            {"toy": {"Q": load_campaign(tmp_path / "csv", space)}},
            sample_times=(30.0, 150.0, 300.0),
        )
        table_journal = fig3_table(
            {"toy": {"Q": load_campaign(tmp_path / "journal", space)}},
            sample_times=(30.0, 150.0, 300.0),
        )
        assert table_csv == table_journal

    def test_loaded_histories_are_read_only_views(self, campaign, tmp_path):
        directory = save_campaign(campaign, tmp_path / "c", format="journal")
        histories = load_histories(directory, toy_space())
        assert all(h.read_only for h in histories)
        thawed = histories[0].copy()
        assert not thawed.read_only


class TestAutoDetection:
    def test_bare_journal_directory(self, campaign, tmp_path):
        directory = save_campaign(campaign, tmp_path / "c", format="journal")
        journal_dir = next(d for d in sorted(directory.iterdir()) if d.is_dir())
        histories = load_histories(journal_dir, toy_space())
        assert len(histories) == 1
        loaded = load_campaign(journal_dir, toy_space())
        assert len(loaded.results) == 1
        # Campaign fields come from the journal meta.
        assert loaded.label == campaign.label
        assert loaded.max_time == campaign.max_time

    def test_manifest_less_directory_of_journals(self, campaign, tmp_path):
        directory = save_campaign(campaign, tmp_path / "c", format="journal")
        (directory / "campaign.json").unlink()
        histories = load_histories(directory, toy_space())
        assert len(histories) == 2
        loaded = load_campaign(directory, toy_space())
        assert len(loaded.results) == 2
        assert loaded.label == campaign.label

    def test_empty_directory_still_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_histories(tmp_path, toy_space())
        with pytest.raises(FileNotFoundError):
            load_campaign(tmp_path, toy_space())


def populate_store_root(root, num_setups=2, num_variants=2, reps=2):
    """A registry-style root: one journal directory per stored campaign."""
    rng = np.random.default_rng(42)
    space = toy_space()
    names = []
    for s in range(num_setups):
        for v in range(num_variants):
            for r in range(reps):
                history = SearchHistory(space)
                for i, config in enumerate(space.sample(12, rng)):
                    runtime = float(rng.uniform(10.0, 60.0))
                    history.append(
                        Evaluation(
                            configuration=config,
                            objective=-runtime,
                            runtime=runtime,
                            submitted=float(i),
                            completed=float(i) + runtime,
                            worker=i % 4,
                            eval_id=i,
                        )
                    )
                name = f"s{s}-v{v}-r{r}"
                journal = CampaignJournal.create(root / name, space, fsync=False)
                try:
                    journal.write_meta(
                        {
                            "label": f"variant{v}",
                            "setup": f"setup{s}",
                            "max_time": 300.0,
                            "num_workers": 4,
                        }
                    )
                    journal.append_rows(history)
                    journal.checkpoint({"finished": True})
                finally:
                    journal.close()
                names.append(name)
    return sorted(names)


class TestCampaignStore:
    def test_scan_and_catalog_protocol(self, tmp_path):
        names = populate_store_root(tmp_path)
        (tmp_path / "not-a-journal").mkdir()
        (tmp_path / "stray.txt").write_text("x")
        store = CampaignStore(tmp_path, toy_space())
        assert store.names() == names
        assert len(store) == len(names)
        assert names[0] in store
        assert "nope" not in store
        with pytest.raises(KeyError):
            store.directory("nope")

    def test_rescan_picks_up_new_campaigns(self, tmp_path):
        populate_store_root(tmp_path, num_setups=1, num_variants=1, reps=1)
        store = CampaignStore(tmp_path, toy_space())
        before = len(store)
        populate_store_root(tmp_path, num_setups=1, num_variants=2, reps=1)
        assert len(store) == before  # scan is cached
        assert len(store.rescan()) >= 2

    def test_missing_root_reads_empty(self, tmp_path):
        store = CampaignStore(tmp_path / "nowhere", toy_space())
        assert store.names() == []
        assert len(store) == 0

    def test_histories_and_peek(self, tmp_path):
        names = populate_store_root(tmp_path)
        store = CampaignStore(tmp_path, toy_space())
        histories = store.histories()
        assert len(histories) == len(names)
        assert all(h.read_only for h in histories)
        peeked = store.peek(names[0])
        assert peeked["num_evaluations"] == 12
        assert peeked["finished"] is True
        summary = store.summary()
        assert [row["name"] for row in summary] == names

    def test_grouped_matches_meta_fields(self, tmp_path):
        populate_store_root(tmp_path, num_setups=2, num_variants=2, reps=3)
        store = CampaignStore(tmp_path, toy_space())
        grouped = store.grouped()
        assert sorted(grouped) == ["setup0", "setup1"]
        for setup, labels in grouped.items():
            assert sorted(labels) == ["variant0", "variant1"]
            for label, campaign in labels.items():
                assert campaign.setup == setup
                assert campaign.label == label
                assert len(campaign.results) == 3
                assert campaign.max_time == 300.0
                assert campaign.num_workers == 4

    def test_fig3_table_from_store(self, tmp_path):
        populate_store_root(tmp_path)
        store = CampaignStore(tmp_path, toy_space())
        table = fig3_table_from_store(store, sample_times=(60.0, 300.0))
        assert "setup0" in table and "variant1" in table
        assert table == fig3_table(store.grouped(), sample_times=(60.0, 300.0))

    def test_campaign_result_requires_names(self, tmp_path):
        populate_store_root(tmp_path)
        store = CampaignStore(tmp_path, toy_space())
        with pytest.raises(ValueError, match="at least one"):
            store.campaign_result([])

    def test_sweep_respects_cache_bound(self, tmp_path):
        names = populate_store_root(tmp_path, num_setups=3, num_variants=2, reps=2)
        assert len(names) == 12
        previous = set_journal_cache_limit(4)
        try:
            store = CampaignStore(tmp_path, toy_space())
            store.histories()
            assert len(_READER_CACHE) <= 4
        finally:
            set_journal_cache_limit(previous)
