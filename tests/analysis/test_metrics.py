"""Tests for the effectiveness metrics of §IV-A1."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.history import SearchHistory
from repro.core.space import IntegerParameter, SearchSpace
from repro.analysis.metrics import (
    best_runtime,
    mean_best_runtime,
    num_evaluations,
    search_speedup,
    time_to_reach,
    utilization_timeline,
)


def space():
    return SearchSpace([IntegerParameter("x", 0, 100)])


def history_from(runtimes_and_times):
    history = SearchHistory(space())
    for i, (runtime, completed) in enumerate(runtimes_and_times):
        history.record({"x": i % 101}, runtime, submitted=completed - 1.0, completed=completed)
    return history


class TestBasicMetrics:
    def test_best_and_count(self):
        history = history_from([(50.0, 10.0), (30.0, 20.0), (40.0, 30.0)])
        assert best_runtime(history) == pytest.approx(30.0)
        assert num_evaluations(history) == 3

    def test_time_to_reach(self):
        history = history_from([(50.0, 10.0), (30.0, 20.0), (10.0, 40.0)])
        assert time_to_reach(history, 35.0) == pytest.approx(20.0)
        assert time_to_reach(history, 5.0) == float("inf")


class TestMeanBest:
    def test_constant_incumbent(self):
        history = history_from([(42.0, 10.0)])
        assert mean_best_runtime(history, 100.0) == pytest.approx(42.0)

    def test_piecewise_average(self):
        # Incumbent: 100 from t=10, 50 from t=50; horizon 100.
        history = history_from([(100.0, 10.0), (50.0, 50.0)])
        # Backward extension: value 100 on [0,50), 50 on [50,100] -> mean 75.
        assert mean_best_runtime(history, 100.0) == pytest.approx(75.0)

    def test_empty_history_is_nan(self):
        assert math.isnan(mean_best_runtime(SearchHistory(space()), 100.0))

    def test_mean_best_at_least_best(self):
        history = history_from([(90.0, 5.0), (60.0, 30.0), (20.0, 80.0)])
        assert mean_best_runtime(history, 100.0) >= best_runtime(history)

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            mean_best_runtime(history_from([(1.0, 1.0)]), 0.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=500.0),
                st.floats(min_value=0.1, max_value=3600.0),
            ),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_mean_best_between_best_and_first(self, pairs):
        pairs = sorted(pairs, key=lambda p: p[1])
        history = history_from(pairs)
        value = mean_best_runtime(history, 3600.0)
        assert best_runtime(history) - 1e-9 <= value
        first_incumbent = history.incumbent_trajectory()[0][1]
        assert value <= first_incumbent + 1e-9


class TestSearchSpeedup:
    def test_faster_method_has_higher_speedup(self):
        fast = history_from([(20.0, 100.0)])
        slow = history_from([(20.0, 1800.0)])
        budget = 3600.0
        assert search_speedup(fast, 25.0, budget) > search_speedup(slow, 25.0, budget)

    def test_speedup_value(self):
        history = history_from([(20.0, 90.0)])
        assert search_speedup(history, 25.0, 3600.0) == pytest.approx(40.0)

    def test_never_reaching_target_gives_one(self):
        history = history_from([(50.0, 100.0)])
        assert search_speedup(history, 25.0, 3600.0) == 1.0

    def test_nan_baseline_gives_nan(self):
        history = history_from([(50.0, 100.0)])
        assert math.isnan(search_speedup(history, float("nan"), 3600.0))


class TestUtilizationTimeline:
    def test_fully_busy_worker(self):
        timeline = utilization_timeline([(0.0, 100.0)], num_workers=1, max_time=100.0, window=25.0)
        assert len(timeline) == 4
        assert all(u == pytest.approx(1.0) for _, u in timeline)

    def test_half_busy_two_workers(self):
        intervals = [(0.0, 50.0)]
        timeline = utilization_timeline(intervals, num_workers=2, max_time=100.0, window=50.0)
        assert timeline[0][1] == pytest.approx(0.5)
        assert timeline[1][1] == pytest.approx(0.0)

    def test_interval_spanning_windows(self):
        timeline = utilization_timeline([(10.0, 30.0)], num_workers=1, max_time=40.0, window=20.0)
        assert timeline[0][1] == pytest.approx(0.5)
        assert timeline[1][1] == pytest.approx(0.5)

    def test_utilization_never_exceeds_one(self):
        rng = np.random.default_rng(0)
        intervals = [(float(s), float(s + rng.uniform(1, 30))) for s in rng.uniform(0, 500, 200)]
        timeline = utilization_timeline(intervals, num_workers=16, max_time=600.0, window=60.0)
        assert all(0.0 <= u <= 1.0 + 1e-9 for _, u in timeline)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            utilization_timeline([], num_workers=0, max_time=10.0)
        with pytest.raises(ValueError):
            utilization_timeline([], num_workers=1, max_time=10.0, window=0.0)
