"""Tests for the campaign runner and the figure-series assembly."""

import numpy as np
import pytest

from repro.core.space import CategoricalParameter, RealParameter, SearchSpace
from repro.analysis.campaign import (
    AggregatedMetrics,
    CampaignResult,
    aggregate_trajectories,
    run_repeated_search,
    run_transfer_chain,
)
from repro.analysis.figures import (
    fig3_series,
    fig3_table,
    fig4_rows,
    fig4_table,
    fig5_rows,
    fig5_table,
    format_table,
)


def toy_space():
    return SearchSpace(
        [RealParameter("x", 0.0, 1.0), CategoricalParameter.boolean("flag")]
    )


def toy_runtime(config):
    return 15.0 + 120.0 * (config["x"] - 0.5) ** 2 + (0.0 if config["flag"] else 8.0)


BUDGET = 600.0


@pytest.fixture(scope="module")
def small_campaign():
    return run_repeated_search(
        toy_space(),
        toy_runtime,
        label="RF",
        setup="toy",
        repetitions=2,
        max_time=BUDGET,
        num_workers=4,
        seed=0,
    )


@pytest.fixture(scope="module")
def random_campaign():
    return run_repeated_search(
        toy_space(),
        toy_runtime,
        label="RAND",
        setup="toy",
        surrogate="RAND",
        random_sampling=True,
        repetitions=2,
        max_time=BUDGET,
        num_workers=4,
        seed=0,
    )


class TestAggregatedMetrics:
    def test_from_values_basic(self):
        agg = AggregatedMetrics.from_values([1.0, 3.0, 2.0])
        assert agg.mean == pytest.approx(2.0)
        assert agg.min == 1.0 and agg.max == 3.0

    def test_nan_values_ignored(self):
        agg = AggregatedMetrics.from_values([float("nan"), 4.0])
        assert agg.mean == pytest.approx(4.0)

    def test_all_nan_gives_nan(self):
        agg = AggregatedMetrics.from_values([float("nan")])
        assert np.isnan(agg.mean)


class TestCampaignResult:
    def test_contains_requested_repetitions(self, small_campaign):
        assert len(small_campaign.results) == 2
        assert small_campaign.label == "RF"

    def test_metric_aggregates_are_finite(self, small_campaign):
        assert np.isfinite(small_campaign.best().mean)
        assert np.isfinite(small_campaign.mean_best().mean)
        assert small_campaign.evaluations().mean > 4
        assert 0.0 < small_campaign.utilization().mean <= 1.0

    def test_mean_best_not_smaller_than_best(self, small_campaign):
        assert small_campaign.mean_best().mean >= small_campaign.best().mean - 1e-9

    def test_speedup_over_random_is_at_least_one(self, small_campaign, random_campaign):
        speedup = small_campaign.speedup_over(random_campaign)
        assert speedup.mean >= 1.0

    def test_trajectory_grid_and_monotonicity(self, small_campaign):
        traj = small_campaign.trajectory(num_points=30)
        assert traj["time"].shape == (30,)
        finite = traj["mean"][np.isfinite(traj["mean"])]
        assert np.all(np.diff(finite) <= 1e-9)

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            run_repeated_search(toy_space(), toy_runtime, label="x", repetitions=0)


class TestAggregateTrajectories:
    def test_min_max_envelope_contains_mean(self, small_campaign):
        traj = aggregate_trajectories(small_campaign.results, BUDGET, num_points=20)
        mask = np.isfinite(traj["mean"])
        assert np.all(traj["min"][mask] <= traj["mean"][mask] + 1e-9)
        assert np.all(traj["mean"][mask] <= traj["max"][mask] + 1e-9)


class TestTransferChain:
    def test_chain_runs_and_links_sources(self):
        problems = [
            ("stage-a", toy_space(), toy_runtime),
            ("stage-b", toy_space(), toy_runtime),
        ]
        chain = run_transfer_chain(
            problems, repetitions=1, max_time=400.0, num_workers=4, vae_epochs=20, seed=0
        )
        assert set(chain) == {"stage-a", "stage-b"}
        assert "tl" not in chain["stage-a"]
        assert "tl" in chain["stage-b"]
        assert chain["stage-b"]["tl"].results[0].num_evaluations > 0


class TestFigures:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", AggregatedMetrics(1, 0, 2)]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_fig4_rows_and_table(self, small_campaign, random_campaign):
        campaigns = {"toy": {"RAND": random_campaign, "RF": small_campaign}}
        rows = fig4_rows(campaigns)
        assert len(rows) == 2
        rf_row = next(r for r in rows if r["method"] == "RF")
        assert rf_row["speedup"].mean >= 1.0
        text = fig4_table(campaigns)
        assert "RF" in text and "RAND" in text and "speedup" in text

    def test_fig5_rows_and_table(self, small_campaign, random_campaign):
        campaigns = {"toy": {"RAND": random_campaign, "DH1W": small_campaign}}
        rows = fig5_rows(campaigns)
        assert {r["method"] for r in rows} == {"RAND", "DH1W"}
        assert "DH1W" in fig5_table(campaigns)

    def test_fig3_series_and_table(self, small_campaign):
        chain = {"toy": {"no_tl": small_campaign}}
        series = fig3_series(chain, num_points=10)
        assert series["toy"]["no_tl"]["time"].shape == (10,)
        text = fig3_table(chain, sample_times=(100.0, 400.0))
        assert "toy" in text and "best@100s" in text


class TestFig3TableRegression:
    def test_fig3_table_matches_per_time_best_runtime_reference(self, small_campaign):
        """The one-call ``incumbent_at`` rewrite must not change the table.

        The reference below is the previous implementation: one
        ``best_runtime_at`` history scan per (repetition, sample time).
        """
        from repro.analysis.figures import AggregatedMetrics, format_table

        chain = {"toy": {"no_tl": small_campaign}}
        sample_times = (150.0, 300.0, BUDGET, 2 * BUDGET)

        headers = ["setup", "variant"] + [f"best@{int(t)}s" for t in sample_times]
        rows = []
        for setup, entry in chain.items():
            for variant, campaign in entry.items():
                row = [setup, variant]
                for t in sample_times:
                    values = [
                        r.history.best_runtime_at(min(t, campaign.max_time))
                        for r in campaign.results
                    ]
                    row.append(AggregatedMetrics.from_values(values))
                rows.append(row)
        reference = format_table(headers, rows)

        assert fig3_table(chain, sample_times=sample_times) == reference


class TestCampaignIncumbentAt:
    def test_matches_per_row_best_runtime_reference(self, small_campaign):
        """The one-call-per-repetition resolution must match the former
        per-(repetition, time) ``best_runtime_at`` scans exactly — including
        times beyond the budget (clipped) and before the first success
        (``inf``)."""
        sample_times = (0.0, 150.0, 300.0, BUDGET, 2 * BUDGET)
        matrix = small_campaign.incumbent_at(sample_times)
        assert matrix.shape == (len(small_campaign.results), len(sample_times))
        for i, result in enumerate(small_campaign.results):
            for j, t in enumerate(sample_times):
                reference = result.history.best_runtime_at(
                    min(t, small_campaign.max_time)
                )
                assert matrix[i, j] == reference or (
                    np.isinf(matrix[i, j]) and np.isinf(reference)
                )


class TestBatchedRepeatedSearch:
    def test_batched_runner_repetitions_match_sequential(self):
        kwargs = dict(
            label="RF",
            setup="toy",
            repetitions=3,
            max_time=400.0,
            num_workers=4,
            seed=7,
        )
        sequential = run_repeated_search(toy_space(), toy_runtime, **kwargs)
        batched = run_repeated_search(
            toy_space(), toy_runtime, runner="batched", **kwargs
        )
        assert len(batched.results) == 3
        for a, b in zip(sequential.results, batched.results):
            assert [e.configuration for e in a.history] == [
                e.configuration for e in b.history
            ]
            assert a.busy_intervals == b.busy_intervals
            assert a.worker_utilization == b.worker_utilization

    def test_unknown_runner_rejected(self):
        with pytest.raises(ValueError):
            run_repeated_search(
                toy_space(), toy_runtime, label="RF", repetitions=1, runner="threads"
            )
