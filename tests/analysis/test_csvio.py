"""Tests for campaign-level CSV persistence (save/load round trips, cache)."""

import numpy as np
import pytest

from repro.core.history import SearchHistory
from repro.core.space import IntegerParameter, RealParameter, SearchSpace
from repro.analysis.campaign import run_repeated_search
from repro.analysis import csvio
from repro.analysis.csvio import (
    clear_history_cache,
    load_campaign,
    load_histories,
    save_campaign,
)


def toy_space():
    return SearchSpace([RealParameter("x", 0.0, 1.0), IntegerParameter("k", 1, 16)])


def toy_runtime(config):
    return 10.0 + 50.0 * (config["x"] - 0.4) ** 2 + abs(config["k"] - 6)


@pytest.fixture(scope="module")
def campaign():
    return run_repeated_search(
        toy_space(),
        toy_runtime,
        label="RF",
        setup="toy",
        repetitions=2,
        max_time=300.0,
        num_workers=4,
        seed=0,
    )


class TestSaveLoad:
    def test_save_writes_manifest_and_csvs(self, campaign, tmp_path):
        directory = save_campaign(campaign, tmp_path / "campaign")
        assert (directory / "campaign.json").exists()
        csvs = sorted(directory.glob("*.csv"))
        assert len(csvs) == 2

    def test_round_trip_preserves_metrics(self, campaign, tmp_path):
        directory = save_campaign(campaign, tmp_path / "campaign")
        loaded = load_campaign(directory, toy_space())
        assert loaded.label == campaign.label
        assert loaded.setup == campaign.setup
        assert len(loaded.results) == len(campaign.results)
        assert loaded.best().mean == pytest.approx(campaign.best().mean)
        assert loaded.evaluations().mean == pytest.approx(campaign.evaluations().mean)
        assert loaded.mean_best().mean == pytest.approx(campaign.mean_best().mean, rel=1e-6)
        assert loaded.utilization().mean == pytest.approx(campaign.utilization().mean)

    def test_load_histories_returns_per_repetition_histories(self, campaign, tmp_path):
        directory = save_campaign(campaign, tmp_path / "campaign")
        histories = load_histories(directory, toy_space())
        assert len(histories) == 2
        for original, loaded in zip(campaign.results, histories):
            assert len(loaded) == len(original.history)

    def test_loading_a_non_campaign_directory_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_campaign(tmp_path, toy_space())

    def test_loaded_histories_feed_transfer_learning(self, campaign, tmp_path):
        from repro.core.transfer import fit_transfer_prior

        directory = save_campaign(campaign, tmp_path / "campaign")
        history = load_histories(directory, toy_space())[0]
        prior = fit_transfer_prior(history, toy_space(), epochs=20, seed=0)
        samples = prior.sample_configurations(10, np.random.default_rng(0))
        assert len(samples) == 10


class TestParsedHistoryCache:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        clear_history_cache()
        yield
        clear_history_cache()

    def test_typed_parse_runs_once_per_file(self, campaign, tmp_path, monkeypatch):
        directory = save_campaign(campaign, tmp_path / "campaign")
        parses = []
        original = SearchHistory.from_csv.__func__

        def counting(cls, source, space, objective=None):
            parses.append(str(source))
            return original(cls, source, space, objective)

        monkeypatch.setattr(SearchHistory, "from_csv", classmethod(counting))
        first = load_histories(directory, toy_space())
        assert len(parses) == len(first)
        # load_campaign reads the very same CSVs: everything is served from
        # the cache, no re-parse.
        loaded = load_campaign(directory, toy_space())
        assert len(parses) == len(first)
        for a, b in zip(first, loaded.results):
            assert a.to_csv() == b.history.to_csv()

    def test_cached_loads_are_independent_copies(self, campaign, tmp_path):
        directory = save_campaign(campaign, tmp_path / "campaign")
        first = load_histories(directory, toy_space())[0]
        first.record({"x": 0.5, "k": 3}, 12.0, 1.0, 2.0)
        second = load_histories(directory, toy_space())[0]
        assert len(second) == len(first) - 1

    def test_rewritten_file_is_reparsed(self, campaign, tmp_path):
        import os

        directory = save_campaign(campaign, tmp_path / "campaign")
        name = sorted(directory.glob("*.csv"))[0]
        before = load_histories(directory, toy_space())[0]
        # Truncate the CSV to the header plus one row and force a new mtime.
        lines = name.read_text().splitlines()
        name.write_text("\n".join(lines[:2]) + "\n")
        os.utime(name, ns=(1, 1))
        after = load_histories(directory, toy_space())[0]
        assert len(after) == 1
        assert len(before) > 1


class TestCacheThreadSafety:
    """Regression: the parse cache raced when parallel tick shards loaded
    campaign CSVs concurrently — double parses corrupted the LRU order and
    an eviction mid-``move_to_end`` raised ``KeyError`` from a reader."""

    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        clear_history_cache()
        previous = csvio.set_history_cache_limit(4)
        yield
        csvio.set_history_cache_limit(previous)
        clear_history_cache()

    def test_threaded_loads_under_eviction_pressure(self, campaign, tmp_path):
        import threading

        directories = [
            save_campaign(campaign, tmp_path / f"campaign{i}") for i in range(3)
        ]
        reference = [
            [h.to_csv() for h in load_histories(d, toy_space())]
            for d in directories
        ]
        errors = []
        barrier = threading.Barrier(6)

        def hammer(worker):
            try:
                barrier.wait()
                for round_ in range(20):
                    index = (worker + round_) % 3
                    histories = load_histories(directories[index], toy_space())
                    assert [h.to_csv() for h in histories] == reference[index]
                    if worker == 0 and round_ % 7 == 6:
                        clear_history_cache()
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(worker,)) for worker in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []


class TestCacheBoundIsLRU:
    """The parsed-history cache is bounded and evicts by recency of *use*."""

    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        clear_history_cache()
        previous = csvio.set_history_cache_limit(256)
        yield
        csvio.set_history_cache_limit(previous)
        clear_history_cache()

    @staticmethod
    def write_csvs(directory, n):
        space = toy_space()
        paths = []
        for i in range(n):
            history = SearchHistory(space)
            history.record({"x": 0.25, "k": 2 + i}, 10.0 + i, 0.0, 1.0)
            path = directory / f"h{i}.csv"
            history.to_csv(path)
            paths.append(path)
        return paths

    def test_cache_never_exceeds_its_bound(self, tmp_path):
        csvio.set_history_cache_limit(3)
        for path in self.write_csvs(tmp_path, 6):
            csvio._load_history_cached(path, toy_space())
        assert len(csvio._HISTORY_CACHE) == 3

    def test_hits_refresh_recency(self, tmp_path, monkeypatch):
        paths = self.write_csvs(tmp_path, 4)
        csvio.set_history_cache_limit(3)
        parses = []
        real = SearchHistory.from_csv.__func__

        def counting(cls, source, space, objective=None):
            parses.append(str(source))
            return real(cls, source, space, objective=objective)

        monkeypatch.setattr(SearchHistory, "from_csv", classmethod(counting))
        csvio._load_history_cached(paths[0], toy_space())
        csvio._load_history_cached(paths[1], toy_space())
        csvio._load_history_cached(paths[2], toy_space())
        # Touch the oldest entry: it becomes most recently used ...
        csvio._load_history_cached(paths[0], toy_space())
        assert len(parses) == 3
        # ... so loading a fourth file evicts paths[1], not paths[0].
        csvio._load_history_cached(paths[3], toy_space())
        csvio._load_history_cached(paths[0], toy_space())  # still cached
        assert len(parses) == 4
        csvio._load_history_cached(paths[1], toy_space())  # evicted: re-parse
        assert len(parses) == 5

    def test_shrinking_the_limit_evicts_immediately(self, tmp_path):
        for path in self.write_csvs(tmp_path, 5):
            csvio._load_history_cached(path, toy_space())
        assert len(csvio._HISTORY_CACHE) == 5
        csvio.set_history_cache_limit(2)
        assert len(csvio._HISTORY_CACHE) == 2

    def test_zero_disables_caching(self, tmp_path):
        csvio.set_history_cache_limit(0)
        (path,) = self.write_csvs(tmp_path, 1)
        csvio._load_history_cached(path, toy_space())
        assert len(csvio._HISTORY_CACHE) == 0

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            csvio.set_history_cache_limit(-1)
