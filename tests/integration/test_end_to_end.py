"""End-to-end integration tests: autotuning the simulated HEP workflow.

These exercise the full stack — parameter space (Fig. 1), the HEPnOS/Mochi
workflow simulator, the asynchronous BO search, VAE-ABO transfer learning, the
learned runtime surrogate and the comparator frameworks — at a reduced scale
(few workers, short virtual budgets) so that the whole module runs in tens of
seconds.
"""

import math

import numpy as np
import pytest

from repro.core import CBOSearch, VAEABOSearch
from repro.core.history import SearchHistory
from repro.hep import HEPWorkflowProblem, SurrogateRuntime
from repro.frameworks import DeepHyperSearch, GPTuneLike, HiPerBOtLike, RandomSearch
from repro.analysis.metrics import mean_best_runtime


@pytest.fixture(scope="module")
def problem_11p():
    return HEPWorkflowProblem.from_setup("4n-1s-11p", seed=3, noise=0.0)


@pytest.fixture(scope="module")
def source_result(problem_11p):
    search = CBOSearch(
        problem_11p.space, problem_11p.evaluate, num_workers=8, surrogate="RF",
        refit_interval=4, seed=0,
    )
    return search.run(max_time=400.0)


class TestWorkflowAutotuning:
    def test_search_on_the_simulated_workflow_beats_its_median(self, problem_11p, source_result):
        runtimes = source_result.history.runtimes()
        finite = runtimes[np.isfinite(runtimes)]
        assert source_result.best_runtime < np.median(finite)
        assert source_result.num_evaluations >= 16

    def test_transfer_to_larger_space_starts_in_good_region(self, source_result):
        problem_16p = HEPWorkflowProblem.from_setup("4n-2s-16p", seed=3, noise=0.0)
        tl_search = VAEABOSearch(
            problem_16p.space,
            problem_16p.evaluate,
            source_history=source_result.history,
            num_workers=8,
            surrogate="RF",
            vae_epochs=60,
            refit_interval=4,
            seed=1,
        )
        cold_search = CBOSearch(
            problem_16p.space, problem_16p.evaluate, num_workers=8, surrogate="RF",
            refit_interval=4, seed=1,
        )
        budget = 300.0
        tl = tl_search.run(max_time=budget)
        cold = cold_search.run(max_time=budget)
        # The loader parameters transferred from the 11p run should make the
        # time-averaged incumbent at least as good as the cold search's.
        assert mean_best_runtime(tl, budget) <= mean_best_runtime(cold, budget) * 1.25
        assert tl.num_evaluations > 0 and cold.num_evaluations > 0

    def test_histories_round_trip_through_csv(self, source_result, tmp_path):
        path = tmp_path / "h.csv"
        source_result.history.to_csv(path)
        loaded = SearchHistory.from_csv(path, source_result.history.space)
        assert len(loaded) == len(source_result.history)
        assert loaded.best_runtime() == pytest.approx(source_result.history.best_runtime())


class TestSurrogateRuntimeExperiment:
    """The Fig. 5 methodology: frameworks compared on a learned runtime model."""

    @pytest.fixture(scope="class")
    def surrogate(self, source_result):
        return SurrogateRuntime.from_history(source_result.history, seed=0)

    def test_surrogate_predictions_are_plausible(self, surrogate, problem_11p):
        rng = np.random.default_rng(0)
        configs = problem_11p.space.sample(20, rng)
        predictions = surrogate.predict(configs)
        assert np.all(predictions > 1.0)
        assert np.all(predictions < 1000.0)

    def test_surrogate_correlates_with_simulator(self, surrogate, problem_11p, source_result):
        evals = source_result.history.successful()[:40]
        predicted = surrogate.predict([ev.configuration for ev in evals])
        actual = np.array([ev.runtime for ev in evals])
        correlation = np.corrcoef(np.log(predicted), np.log(actual))[0, 1]
        assert correlation > 0.5

    def test_framework_comparison_runs_on_the_surrogate(self, surrogate, problem_11p):
        space = problem_11p.space
        init = space.sample(5, np.random.default_rng(42))
        budget = 1200.0
        results = {
            "RAND": RandomSearch(space, surrogate, num_workers=1, seed=0).run(
                budget, initial_configurations=init
            ),
            "DH10W": DeepHyperSearch(space, surrogate, num_workers=10, refit_interval=4, seed=0).run(
                budget, initial_configurations=init
            ),
            "GPTUNE": GPTuneLike(space, surrogate, num_sampling=5, seed=0).run(
                budget, initial_configurations=init
            ),
            "HIPERBOT": HiPerBOtLike(space, surrogate, seed=0).run(
                budget, initial_configurations=init
            ),
        }
        for name, result in results.items():
            assert result.num_evaluations > 0, name
            assert math.isfinite(result.best_runtime), name
        # The asynchronous multi-worker search completes the most evaluations.
        assert results["DH10W"].num_evaluations == max(
            r.num_evaluations for r in results.values()
        )
