"""Full-size multi-campaign acceptance: 8 concurrent campaigns, bit-identical.

This is the service layer's acceptance criterion at full size: a
:class:`~repro.service.CampaignRunner` driving 8 concurrent campaigns over
the real 20-parameter HEP space — with fleet surrogate fits, fused candidate
scoring and batched run-function evaluation all on — produces per-campaign
results bit-identical to 8 sequential ``CBOSearch.run`` calls with the same
seeds.  Marked ``slow``: CI runs it full-size, local quick loops can skip it
with ``-m "not slow"`` (a reduced-size version of the same property runs in
``tests/service/test_runner.py``).
"""

import numpy as np
import pytest

from fixtures import assert_results_identical
from repro.core.search import CBOSearch
from repro.core.surrogate import RandomForestSurrogate
from repro.hep import HEPWorkflowProblem
from repro.hep.surrogate_runtime import SurrogateRuntime, SurrogateRuntimeFleet
from repro.service import CampaignRunner, CampaignSpec

NUM_CAMPAIGNS = 8
NUM_WORKERS = 16
MAX_EVALUATIONS = 48
NUM_CANDIDATES = 64


@pytest.fixture(scope="module")
def problem():
    return HEPWorkflowProblem.from_setup("4n-2s-20p", seed=1)


@pytest.fixture(scope="module")
def application_model(problem):
    rng = np.random.default_rng(7)
    configs = problem.space.sample(140, rng)
    runtimes = np.exp(rng.normal(4.5, 0.6, size=len(configs)))
    return SurrogateRuntime.from_data(problem.space, configs, runtimes, seed=7)


def make_runtimes(problem, base):
    return [
        SurrogateRuntime(problem.space, base.forest, noise=0.02, seed=200 + i)
        for i in range(NUM_CAMPAIGNS)
    ]


def make_search(problem, run_function, seed):
    return CBOSearch(
        problem.space,
        run_function,
        num_workers=NUM_WORKERS,
        surrogate=RandomForestSurrogate(n_estimators=8, seed=seed),
        num_candidates=NUM_CANDIDATES,
        n_initial_points=6,
        seed=seed,
    )


@pytest.mark.slow
def test_eight_concurrent_campaigns_bit_identical_to_sequential(problem, application_model):
    sequential = [
        make_search(problem, run_function, seed).run(
            max_time=float("inf"), max_evaluations=MAX_EVALUATIONS
        )
        for seed, run_function in enumerate(make_runtimes(problem, application_model))
    ]

    runtimes = make_runtimes(problem, application_model)
    fleet = SurrogateRuntimeFleet(runtimes)
    specs = [
        CampaignSpec(
            search=make_search(problem, runtimes[seed], seed),
            max_time=float("inf"),
            max_evaluations=MAX_EVALUATIONS,
            label=f"campaign-{seed}",
        )
        for seed in range(NUM_CAMPAIGNS)
    ]
    runner = CampaignRunner(specs, run_batcher=fleet.run_batch)
    batched = runner.run()

    assert len(batched) == NUM_CAMPAIGNS
    assert runner.num_fleet_fits > 0
    for a, b in zip(sequential, batched):
        assert a.num_evaluations == MAX_EVALUATIONS
        assert_results_identical(a, b)
